//! The classic level-wise algorithm of Agrawal et al. (SIGMOD '93).
//!
//! As the paper notes (§II-B), apriori "performs a scan of the
//! transactions to first filter all items that are not frequent and then
//! finds the associated items from the filtered input", trading memory
//! (candidate sets) for speed.

use std::hash::Hash;

use rtdac_types::FxHashMap;

use crate::db::TransactionDb;
use crate::result::FimResult;

/// Configuration and entry point for the apriori miner.
///
/// # Examples
///
/// ```
/// use rtdac_fim::{Apriori, TransactionDb};
///
/// let db = TransactionDb::from_iter([vec![1, 2, 3], vec![1, 2], vec![2, 3]]);
/// let result = Apriori::new(2).mine(&db);
/// assert_eq!(result.support(&[1, 2]), Some(2));
/// assert_eq!(result.support(&[2, 3]), Some(2));
/// assert_eq!(result.support(&[1, 3]), None); // support 1 < 2
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Apriori {
    min_support: u32,
    max_len: Option<usize>,
}

impl Apriori {
    /// Creates a miner with the given absolute minimum support.
    ///
    /// # Panics
    ///
    /// Panics if `min_support == 0` (support 0 is meaningless — every
    /// possible itemset would qualify).
    pub fn new(min_support: u32) -> Self {
        assert!(min_support > 0, "minimum support must be positive");
        Apriori {
            min_support,
            max_len: None,
        }
    }

    /// Limits mining to itemsets of at most `k` items. The paper only
    /// needs pairs (`k = 2`), which makes apriori far cheaper.
    pub fn max_len(mut self, k: usize) -> Self {
        self.max_len = Some(k);
        self
    }

    /// Mines all frequent itemsets from `db`.
    pub fn mine<I: Ord + Hash + Clone>(&self, db: &TransactionDb<I>) -> FimResult<I> {
        let mut out: Vec<(Vec<I>, u32)> = Vec::new();

        // L1: frequent single items.
        let mut current: Vec<Vec<I>> = {
            let supports = db.item_supports();
            let mut frequent: Vec<(I, u32)> = supports
                .into_iter()
                .filter(|(_, s)| *s >= self.min_support)
                .collect();
            frequent.sort();
            for (item, support) in &frequent {
                out.push((vec![item.clone()], *support));
            }
            frequent.into_iter().map(|(i, _)| vec![i]).collect()
        };

        let mut k = 1;
        while !current.is_empty() {
            k += 1;
            if self.max_len.is_some_and(|m| k > m) {
                break;
            }
            let candidates = generate_candidates(&current);
            if candidates.is_empty() {
                break;
            }
            // Count candidate supports in one scan.
            let mut counts: FxHashMap<&Vec<I>, u32> =
                FxHashMap::with_capacity_and_hasher(candidates.len(), Default::default());
            for txn in db.transactions() {
                if txn.len() < k {
                    continue;
                }
                for cand in &candidates {
                    if is_subset(cand, txn) {
                        *counts.entry(cand).or_insert(0) += 1;
                    }
                }
            }
            let mut next: Vec<Vec<I>> = Vec::new();
            for cand in &candidates {
                if let Some(&support) = counts.get(cand) {
                    if support >= self.min_support {
                        out.push((cand.clone(), support));
                        next.push(cand.clone());
                    }
                }
            }
            next.sort();
            current = next;
        }

        FimResult::from_raw(out)
    }
}

/// Joins frequent (k-1)-itemsets sharing a (k-2)-prefix and prunes
/// candidates with an infrequent (k-1)-subset — the apriori property.
fn generate_candidates<I: Ord + Clone>(frequent: &[Vec<I>]) -> Vec<Vec<I>> {
    let mut candidates = Vec::new();
    for (idx, a) in frequent.iter().enumerate() {
        for b in &frequent[idx + 1..] {
            let k = a.len();
            if a[..k - 1] != b[..k - 1] {
                // `frequent` is sorted, so once prefixes diverge no later
                // set shares this prefix either.
                break;
            }
            let mut cand = a.clone();
            cand.push(b[k - 1].clone());
            // Prune: all (k-1)-subsets must be frequent. The two subsets
            // missing a[i] for i < k-1 are the ones not checked by the
            // join itself.
            let all_subsets_frequent = (0..cand.len() - 2).all(|skip| {
                let subset: Vec<I> = cand
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, v)| v.clone())
                    .collect();
                frequent.binary_search(&subset).is_ok()
            });
            if all_subsets_frequent {
                candidates.push(cand);
            }
        }
    }
    candidates
}

/// Both slices sorted: subset test by merge walk.
fn is_subset<I: Ord>(needle: &[I], haystack: &[I]) -> bool {
    let mut it = haystack.iter();
    'outer: for n in needle {
        for h in it.by_ref() {
            match h.cmp(n) {
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
                std::cmp::Ordering::Less => {}
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_merge_walk() {
        assert!(is_subset(&[2, 4], &[1, 2, 3, 4]));
        assert!(!is_subset(&[2, 5], &[1, 2, 3, 4]));
        assert!(is_subset::<u32>(&[], &[1]));
        assert!(!is_subset(&[1], &[]));
    }

    #[test]
    fn textbook_example() {
        // Classic market-basket example.
        let db =
            TransactionDb::from_iter([vec![1, 3, 4], vec![2, 3, 5], vec![1, 2, 3, 5], vec![2, 5]]);
        let r = Apriori::new(2).mine(&db);
        assert_eq!(r.support(&[1]), Some(2));
        assert_eq!(r.support(&[2]), Some(3));
        assert_eq!(r.support(&[3]), Some(3));
        assert_eq!(r.support(&[5]), Some(3));
        assert_eq!(r.support(&[4]), None);
        assert_eq!(r.support(&[1, 3]), Some(2));
        assert_eq!(r.support(&[2, 3]), Some(2));
        assert_eq!(r.support(&[2, 5]), Some(3));
        assert_eq!(r.support(&[3, 5]), Some(2));
        assert_eq!(r.support(&[2, 3, 5]), Some(2));
        assert_eq!(r.support(&[1, 2]), None);
        // Exactly these frequent itemsets and no more.
        assert_eq!(r.len(), 9);
    }

    #[test]
    fn max_len_two_stops_at_pairs() {
        let db = TransactionDb::from_iter([vec![1, 2, 3], vec![1, 2, 3], vec![1, 2, 3]]);
        let r = Apriori::new(2).max_len(2).mine(&db);
        assert_eq!(r.support(&[1, 2]), Some(3));
        assert_eq!(r.support(&[1, 2, 3]), None);
    }

    #[test]
    fn support_above_everything_yields_empty() {
        let db = TransactionDb::from_iter([vec![1, 2], vec![2, 3]]);
        assert!(Apriori::new(5).mine(&db).is_empty());
    }

    #[test]
    fn empty_db_yields_empty() {
        let db: TransactionDb<u32> = TransactionDb::new();
        assert!(Apriori::new(1).mine(&db).is_empty());
    }

    #[test]
    #[should_panic(expected = "support must be positive")]
    fn zero_support_panics() {
        Apriori::new(0);
    }
}
