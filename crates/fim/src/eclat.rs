//! Zaki's eclat (IEEE TKDE 2000): depth-first search over a vertical
//! (item → transaction-id set) representation.
//!
//! As the paper notes (§II-B), eclat trades the candidate memory of
//! apriori for intersection time — so the tidset representation *is* the
//! hot path. [`Eclat::mine`] runs the dense engine: items are recoded to
//! contiguous ids ([`ItemInterner`]) and tidsets become adaptive
//! bitset/sorted-list hybrids ([`TidSet`]) whose intersection is
//! word-wise AND + popcount. The original generic implementation is
//! preserved as [`Eclat::mine_generic`] and serves as the equivalence
//! oracle: both entry points return identical [`FimResult`]s.
//!
//! [`Eclat::tasks`] exposes the first-level equivalence classes (all
//! itemsets sharing a first item) as independent units so a work pool
//! can mine them in parallel; `mine` is exactly `tasks` run serially.

use std::collections::HashMap;
use std::hash::Hash;

use crate::bitset::TidSet;
use crate::db::TransactionDb;
use crate::interner::ItemInterner;
use crate::result::FimResult;

/// Configuration and entry point for the eclat miner.
///
/// # Examples
///
/// ```
/// use rtdac_fim::{Eclat, TransactionDb};
///
/// let db = TransactionDb::from_iter([vec![1, 2, 3], vec![1, 2], vec![2, 3]]);
/// let result = Eclat::new(2).mine(&db);
/// assert_eq!(result.support(&[1, 2]), Some(2));
/// assert_eq!(result, Eclat::new(2).mine_generic(&db));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Eclat {
    min_support: u32,
    max_len: Option<usize>,
}

impl Eclat {
    /// Creates a miner with the given absolute minimum support.
    ///
    /// # Panics
    ///
    /// Panics if `min_support == 0`.
    pub fn new(min_support: u32) -> Self {
        assert!(min_support > 0, "minimum support must be positive");
        Eclat {
            min_support,
            max_len: None,
        }
    }

    /// Limits mining to itemsets of at most `k` items.
    pub fn max_len(mut self, k: usize) -> Self {
        self.max_len = Some(k);
        self
    }

    /// Mines all frequent itemsets from `db` with the dense engine.
    pub fn mine<I: Ord + Hash + Clone>(&self, db: &TransactionDb<I>) -> FimResult<I> {
        let tasks = self.tasks(db);
        let mut out: Vec<(Vec<I>, u32)> = Vec::new();
        for class in 0..tasks.len() {
            out.extend(tasks.run(class));
        }
        FimResult::from_raw(out)
    }

    /// Prepares the dense engine: recodes items, builds the vertical
    /// representation, and returns the first-level equivalence classes
    /// as independently minable tasks (one per frequent item).
    pub fn tasks<I: Ord + Hash + Clone>(&self, db: &TransactionDb<I>) -> EclatTasks<I> {
        let n_txns = db.len();
        let (interner, encoded, supports) = ItemInterner::encode_db(db);
        // Vertical representation over dense ids, each list pre-sized to
        // its known support. Iterating transactions in order appends tids
        // ascending, so every list arrives sorted.
        let mut tidlists: Vec<Vec<u32>> = supports
            .iter()
            .map(|&s| Vec::with_capacity(s as usize))
            .collect();
        for (tid, row) in encoded.rows().enumerate() {
            for &id in row {
                tidlists[id as usize].push(tid as u32);
            }
        }
        // Frequent-item rank ← dense id; ranks stay in ascending item
        // order, so filtered rows remain sorted.
        let mut rank = vec![u32::MAX; supports.len()];
        let mut items: Vec<I> = Vec::new();
        let mut roots: Vec<TidSet> = Vec::new();
        for (id, tids) in tidlists.into_iter().enumerate() {
            if tids.len() as u32 >= self.min_support {
                rank[id] = items.len() as u32;
                items.push(interner.item(id as u32).clone());
                roots.push(TidSet::from_sorted(tids, n_txns));
            }
        }

        // Frequent pairs in one horizontal pass (the `count_pairs`
        // kernel over frequent ranks). Each first-level class then
        // intersects only its *surviving* extensions instead of every
        // later sibling — on realistic data the vast majority of the
        // k·(k-1)/2 candidate pairs never reach `min_support`.
        let pair_exts = if self.max_len == Some(1) {
            vec![Vec::new(); items.len()]
        } else {
            Self::frequent_pair_extensions(&encoded, &rank, items.len(), self.min_support)
        };

        EclatTasks {
            items,
            roots,
            pair_exts,
            n_txns,
            min_support: self.min_support,
            max_len: self.max_len,
        }
    }

    /// Counts the support of every frequent-item pair in one pass over
    /// the encoded rows and returns, per first item, the extensions that
    /// reach `min_support` (ascending, with their supports). Small rank
    /// universes count into a triangular array; larger ones into a map
    /// keyed by the packed rank pair.
    fn frequent_pair_extensions(
        encoded: &crate::interner::EncodedDb,
        rank: &[u32],
        n_ranks: usize,
        min_support: u32,
    ) -> Vec<Vec<(u32, u32)>> {
        const TRIANGULAR_MAX_RANKS: usize = 2048;
        let mut exts: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_ranks];
        let mut row_ranks: Vec<u32> = Vec::new();
        if n_ranks <= TRIANGULAR_MAX_RANKS {
            let mut tri = vec![0u32; n_ranks * n_ranks.saturating_sub(1) / 2];
            for row in encoded.rows() {
                row_ranks.clear();
                row_ranks.extend(row.iter().filter_map(|&id| {
                    let r = rank[id as usize];
                    (r != u32::MAX).then_some(r)
                }));
                for (hi, &j) in row_ranks.iter().enumerate().skip(1) {
                    let base = j as usize * (j as usize - 1) / 2;
                    for &i in &row_ranks[..hi] {
                        tri[base + i as usize] += 1;
                    }
                }
            }
            for j in 1..n_ranks {
                let base = j * (j - 1) / 2;
                for i in 0..j {
                    let c = tri[base + i];
                    if c >= min_support {
                        exts[i].push((j as u32, c));
                    }
                }
            }
        } else {
            let mut packed: rtdac_types::FxHashMap<u64, u32> = rtdac_types::FxHashMap::default();
            for row in encoded.rows() {
                row_ranks.clear();
                row_ranks.extend(row.iter().filter_map(|&id| {
                    let r = rank[id as usize];
                    (r != u32::MAX).then_some(r)
                }));
                for (hi, &j) in row_ranks.iter().enumerate().skip(1) {
                    for &i in &row_ranks[..hi] {
                        *packed.entry(u64::from(i) << 32 | u64::from(j)).or_insert(0) += 1;
                    }
                }
            }
            let mut survivors: Vec<(u64, u32)> = packed
                .into_iter()
                .filter(|&(_, c)| c >= min_support)
                .collect();
            survivors.sort_unstable();
            for (key, c) in survivors {
                exts[(key >> 32) as usize].push((key as u32, c));
            }
        }
        exts
    }

    /// Mines all frequent itemsets with the preserved generic engine
    /// (hash-built tidlists, merge-walk intersection) — the equivalence
    /// oracle for the dense path.
    pub fn mine_generic<I: Ord + Hash + Clone>(&self, db: &TransactionDb<I>) -> FimResult<I> {
        // Build the vertical representation.
        let mut tidsets: HashMap<I, Vec<u32>> = HashMap::new();
        for (tid, txn) in db.transactions().iter().enumerate() {
            for item in txn {
                tidsets.entry(item.clone()).or_default().push(tid as u32);
            }
        }
        let mut roots: Vec<(I, Vec<u32>)> = tidsets
            .into_iter()
            .filter(|(_, tids)| tids.len() as u32 >= self.min_support)
            .collect();
        roots.sort_by(|a, b| a.0.cmp(&b.0));

        let mut out: Vec<(Vec<I>, u32)> = Vec::new();
        let items: Vec<I> = roots.iter().map(|(i, _)| i.clone()).collect();
        let sets: Vec<Vec<u32>> = roots.into_iter().map(|(_, t)| t).collect();
        let mut prefix: Vec<I> = Vec::new();
        self.dfs_generic(&items, &sets, &mut prefix, &mut out);
        FimResult::from_raw(out)
    }

    /// Depth-first extension: `items[i]`/`sets[i]` are the viable
    /// extensions of `prefix`, each with the tidset of `prefix ∪ {item}`.
    fn dfs_generic<I: Ord + Clone>(
        &self,
        items: &[I],
        sets: &[Vec<u32>],
        prefix: &mut Vec<I>,
        out: &mut Vec<(Vec<I>, u32)>,
    ) {
        for i in 0..items.len() {
            prefix.push(items[i].clone());
            out.push((prefix.clone(), sets[i].len() as u32));

            if self.max_len.is_none_or(|m| prefix.len() < m) {
                // Children: intersect with every later sibling.
                let mut child_items = Vec::new();
                let mut child_sets = Vec::new();
                for j in (i + 1)..items.len() {
                    let inter = intersect(&sets[i], &sets[j]);
                    if inter.len() as u32 >= self.min_support {
                        child_items.push(items[j].clone());
                        child_sets.push(inter);
                    }
                }
                if !child_items.is_empty() {
                    self.dfs_generic(&child_items, &child_sets, prefix, out);
                }
            }
            prefix.pop();
        }
    }
}

/// The prepared dense eclat search, decomposed into first-level
/// equivalence classes. Class `i` covers every frequent itemset whose
/// smallest item is the `i`-th frequent item; classes touch disjoint
/// outputs and only read shared state, so they can run on any threads
/// in any order. [`EclatTasks::collect`] merges per-class results back
/// into the canonical [`FimResult`].
pub struct EclatTasks<I> {
    /// Frequent items, ascending — the class roots.
    items: Vec<I>,
    /// Tidset of each root.
    roots: Vec<TidSet>,
    /// Per class, the extensions `(j, support)` whose pair with the root
    /// reached `min_support` (ascending `j`), pre-counted horizontally.
    pair_exts: Vec<Vec<(u32, u32)>>,
    n_txns: usize,
    min_support: u32,
    max_len: Option<usize>,
}

impl<I: Ord + Clone> EclatTasks<I> {
    /// Number of independent first-level classes.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no item met the support threshold.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Mines one first-level class: the root singleton plus every
    /// frequent extension starting at it.
    pub fn run(&self, class: usize) -> Vec<(Vec<I>, u32)> {
        let mut prefix = vec![self.items[class].clone()];
        let mut out = vec![(prefix.clone(), self.roots[class].count())];
        let exts = &self.pair_exts[class];
        if self.max_len.is_none_or(|m| m > 1) && !exts.is_empty() {
            if self.max_len == Some(2) {
                // Pair supports were already counted horizontally; no
                // tidset ever needs to materialize.
                for &(j, support) in exts {
                    prefix.push(self.items[j as usize].clone());
                    out.push((prefix.clone(), support));
                    prefix.pop();
                }
            } else {
                // Materialize tidsets only for the extensions known to
                // survive, then extend depth-first as usual.
                let mut child_items = Vec::with_capacity(exts.len());
                let mut child_sets = Vec::with_capacity(exts.len());
                for &(j, _) in exts {
                    let inter = self.roots[class].intersect(&self.roots[j as usize], self.n_txns);
                    child_items.push(self.items[j as usize].clone());
                    child_sets.push(inter);
                }
                self.dfs(&child_items, &child_sets, &mut prefix, &mut out);
            }
        }
        out
    }

    /// Merges per-class outputs (in any order) into the normalized result.
    pub fn collect(parts: Vec<Vec<(Vec<I>, u32)>>) -> FimResult<I>
    where
        I: Hash,
    {
        FimResult::from_raw(parts.into_iter().flatten().collect())
    }

    /// Depth-first extension over adaptive tidsets; mirrors the generic
    /// engine's recursion exactly, so outputs are identical.
    fn dfs(&self, items: &[I], sets: &[TidSet], prefix: &mut Vec<I>, out: &mut Vec<(Vec<I>, u32)>) {
        for i in 0..items.len() {
            prefix.push(items[i].clone());
            out.push((prefix.clone(), sets[i].count()));

            if self.max_len.is_none_or(|m| prefix.len() < m) {
                let mut child_items = Vec::new();
                let mut child_sets = Vec::new();
                for j in (i + 1)..items.len() {
                    if let Some(inter) =
                        sets[i].intersect_min(&sets[j], self.min_support, self.n_txns)
                    {
                        child_items.push(items[j].clone());
                        child_sets.push(inter);
                    }
                }
                if !child_items.is_empty() {
                    self.dfs(&child_items, &child_sets, prefix, out);
                }
            }
            prefix.pop();
        }
    }
}

/// Intersection of two sorted tid lists (generic engine).
fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_sorted_lists() {
        assert_eq!(intersect(&[1, 3, 5, 7], &[2, 3, 6, 7]), vec![3, 7]);
        assert_eq!(intersect(&[], &[1]), Vec::<u32>::new());
    }

    #[test]
    fn matches_apriori_on_textbook_example() {
        let db =
            TransactionDb::from_iter([vec![1, 3, 4], vec![2, 3, 5], vec![1, 2, 3, 5], vec![2, 5]]);
        let eclat = Eclat::new(2).mine(&db);
        let apriori = crate::Apriori::new(2).mine(&db);
        assert_eq!(eclat, apriori);
        assert_eq!(eclat, Eclat::new(2).mine_generic(&db));
    }

    #[test]
    fn dense_matches_generic_across_supports_and_lengths() {
        let db = TransactionDb::from_iter([
            vec![1, 2, 3, 7],
            vec![2, 3, 5],
            vec![1, 2, 3, 5, 7],
            vec![2, 5, 7],
            vec![1, 3],
            vec![2, 3, 7],
        ]);
        for support in [1, 2, 3, 5] {
            for max_len in [None, Some(1), Some(2), Some(3)] {
                let mut miner = Eclat::new(support);
                if let Some(m) = max_len {
                    miner = miner.max_len(m);
                }
                assert_eq!(
                    miner.mine(&db),
                    miner.mine_generic(&db),
                    "support {support} max_len {max_len:?}"
                );
            }
        }
    }

    #[test]
    fn per_class_outputs_merge_to_the_same_result() {
        let db =
            TransactionDb::from_iter([vec![1, 3, 4], vec![2, 3, 5], vec![1, 2, 3, 5], vec![2, 5]]);
        let miner = Eclat::new(2);
        let tasks = miner.tasks(&db);
        // Collect classes in reverse order: merge must still normalize.
        let parts: Vec<_> = (0..tasks.len()).rev().map(|c| tasks.run(c)).collect();
        assert_eq!(EclatTasks::collect(parts), miner.mine(&db));
    }

    #[test]
    fn max_len_limits_depth() {
        let db = TransactionDb::from_iter([vec![1, 2, 3], vec![1, 2, 3]]);
        let r = Eclat::new(2).max_len(2).mine(&db);
        assert_eq!(r.support(&[1, 2]), Some(2));
        assert_eq!(r.support(&[1, 2, 3]), None);
    }

    #[test]
    fn singleton_transactions_produce_only_singletons() {
        let db = TransactionDb::from_iter([vec![1], vec![1], vec![2]]);
        let r = Eclat::new(1).mine(&db);
        assert_eq!(r.len(), 2);
        assert_eq!(r.support(&[1]), Some(2));
    }

    #[test]
    #[should_panic(expected = "support must be positive")]
    fn zero_support_panics() {
        Eclat::new(0);
    }
}
