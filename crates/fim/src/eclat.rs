//! Zaki's eclat (IEEE TKDE 2000): depth-first search over a vertical
//! (item → transaction-id list) representation.
//!
//! As the paper notes (§II-B), eclat trades the candidate memory of
//! apriori for intersection time — exactly the behaviour its tidset
//! representation produces.

use std::collections::HashMap;
use std::hash::Hash;

use crate::db::TransactionDb;
use crate::result::FimResult;

/// Configuration and entry point for the eclat miner.
///
/// # Examples
///
/// ```
/// use rtdac_fim::{Eclat, TransactionDb};
///
/// let db = TransactionDb::from_iter([vec![1, 2, 3], vec![1, 2], vec![2, 3]]);
/// let result = Eclat::new(2).mine(&db);
/// assert_eq!(result.support(&[1, 2]), Some(2));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Eclat {
    min_support: u32,
    max_len: Option<usize>,
}

impl Eclat {
    /// Creates a miner with the given absolute minimum support.
    ///
    /// # Panics
    ///
    /// Panics if `min_support == 0`.
    pub fn new(min_support: u32) -> Self {
        assert!(min_support > 0, "minimum support must be positive");
        Eclat {
            min_support,
            max_len: None,
        }
    }

    /// Limits mining to itemsets of at most `k` items.
    pub fn max_len(mut self, k: usize) -> Self {
        self.max_len = Some(k);
        self
    }

    /// Mines all frequent itemsets from `db`.
    pub fn mine<I: Ord + Hash + Clone>(&self, db: &TransactionDb<I>) -> FimResult<I> {
        // Build the vertical representation.
        let mut tidsets: HashMap<I, Vec<u32>> = HashMap::new();
        for (tid, txn) in db.transactions().iter().enumerate() {
            for item in txn {
                tidsets.entry(item.clone()).or_default().push(tid as u32);
            }
        }
        let mut roots: Vec<(I, Vec<u32>)> = tidsets
            .into_iter()
            .filter(|(_, tids)| tids.len() as u32 >= self.min_support)
            .collect();
        roots.sort_by(|a, b| a.0.cmp(&b.0));

        let mut out: Vec<(Vec<I>, u32)> = Vec::new();
        let items: Vec<I> = roots.iter().map(|(i, _)| i.clone()).collect();
        let sets: Vec<Vec<u32>> = roots.into_iter().map(|(_, t)| t).collect();
        let mut prefix: Vec<I> = Vec::new();
        self.dfs(&items, &sets, &mut prefix, &mut out);
        FimResult::from_raw(out)
    }

    /// Depth-first extension: `items[i]`/`sets[i]` are the viable
    /// extensions of `prefix`, each with the tidset of `prefix ∪ {item}`.
    fn dfs<I: Ord + Clone>(
        &self,
        items: &[I],
        sets: &[Vec<u32>],
        prefix: &mut Vec<I>,
        out: &mut Vec<(Vec<I>, u32)>,
    ) {
        for i in 0..items.len() {
            prefix.push(items[i].clone());
            out.push((prefix.clone(), sets[i].len() as u32));

            if self.max_len.is_none_or(|m| prefix.len() < m) {
                // Children: intersect with every later sibling.
                let mut child_items = Vec::new();
                let mut child_sets = Vec::new();
                for j in (i + 1)..items.len() {
                    let inter = intersect(&sets[i], &sets[j]);
                    if inter.len() as u32 >= self.min_support {
                        child_items.push(items[j].clone());
                        child_sets.push(inter);
                    }
                }
                if !child_items.is_empty() {
                    self.dfs(&child_items, &child_sets, prefix, out);
                }
            }
            prefix.pop();
        }
    }
}

/// Intersection of two sorted tid lists.
fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_sorted_lists() {
        assert_eq!(intersect(&[1, 3, 5, 7], &[2, 3, 6, 7]), vec![3, 7]);
        assert_eq!(intersect(&[], &[1]), Vec::<u32>::new());
    }

    #[test]
    fn matches_apriori_on_textbook_example() {
        let db =
            TransactionDb::from_iter([vec![1, 3, 4], vec![2, 3, 5], vec![1, 2, 3, 5], vec![2, 5]]);
        let eclat = Eclat::new(2).mine(&db);
        let apriori = crate::Apriori::new(2).mine(&db);
        assert_eq!(eclat, apriori);
    }

    #[test]
    fn max_len_limits_depth() {
        let db = TransactionDb::from_iter([vec![1, 2, 3], vec![1, 2, 3]]);
        let r = Eclat::new(2).max_len(2).mine(&db);
        assert_eq!(r.support(&[1, 2]), Some(2));
        assert_eq!(r.support(&[1, 2, 3]), None);
    }

    #[test]
    fn singleton_transactions_produce_only_singletons() {
        let db = TransactionDb::from_iter([vec![1], vec![1], vec![2]]);
        let r = Eclat::new(1).mine(&db);
        assert_eq!(r.len(), 2);
        assert_eq!(r.support(&[1]), Some(2));
    }

    #[test]
    #[should_panic(expected = "support must be positive")]
    fn zero_support_panics() {
        Eclat::new(0);
    }
}
