use std::hash::Hash;

use rtdac_types::{Extent, FxHashMap, Transaction};

/// A transaction database prepared for mining: each transaction is a
/// sorted, deduplicated set of items.
///
/// The offline baselines all consume this form; building it once and
/// handing it to each algorithm mirrors how the paper feeds the same
/// stored transactions to Borgelt's apriori, eclat and fp-growth.
///
/// # Examples
///
/// ```
/// use rtdac_fim::TransactionDb;
///
/// let db = TransactionDb::from_iter([vec![1, 2, 2, 3], vec![3, 1]]);
/// assert_eq!(db.len(), 2);
/// assert_eq!(db.transactions()[0], vec![1, 2, 3]); // sorted + deduped
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransactionDb<I> {
    transactions: Vec<Vec<I>>,
}

impl<I: Ord + Clone> TransactionDb<I> {
    /// Creates an empty database.
    pub fn new() -> Self {
        TransactionDb {
            transactions: Vec::new(),
        }
    }

    /// Creates an empty database pre-sized for `n` transactions.
    pub fn with_capacity(n: usize) -> Self {
        TransactionDb {
            transactions: Vec::with_capacity(n),
        }
    }

    /// Adds one transaction (sorted and deduplicated on entry; empty
    /// transactions are kept, contributing only to the total count).
    /// Rows are shrunk to their deduplicated length so large traces
    /// don't retain the growth-doubling slack of collection.
    pub fn push<T: IntoIterator<Item = I>>(&mut self, items: T) {
        let iter = items.into_iter();
        let mut txn: Vec<I> = Vec::with_capacity(iter.size_hint().0);
        txn.extend(iter);
        txn.sort();
        txn.dedup();
        txn.shrink_to_fit();
        self.transactions.push(txn);
    }

    /// Number of transactions (the denominator of relative support).
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether the database holds no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// The prepared transactions.
    pub fn transactions(&self) -> &[Vec<I>] {
        &self.transactions
    }
}

impl<I: Ord + Clone + Hash> TransactionDb<I> {
    /// Absolute support of every single item.
    pub fn item_supports(&self) -> FxHashMap<I, u32> {
        let mut counts = FxHashMap::default();
        for txn in &self.transactions {
            for item in txn {
                *counts.entry(item.clone()).or_insert(0) += 1;
            }
        }
        counts
    }
}

impl<I: Ord + Clone, T: IntoIterator<Item = I>> FromIterator<T> for TransactionDb<I> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> Self {
        let iter = iter.into_iter();
        let mut db = TransactionDb::with_capacity(iter.size_hint().0);
        for txn in iter {
            db.push(txn);
        }
        db
    }
}

impl TransactionDb<Extent> {
    /// Builds a database over extents from monitor-produced transactions —
    /// the form the paper's evaluation mines.
    pub fn from_transactions<'a, T>(transactions: T) -> Self
    where
        T: IntoIterator<Item = &'a Transaction>,
    {
        let iter = transactions.into_iter();
        let mut db = TransactionDb::with_capacity(iter.size_hint().0);
        for txn in iter {
            db.push(txn.unique_extents());
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdac_types::Timestamp;

    #[test]
    fn push_sorts_and_dedups() {
        let mut db = TransactionDb::new();
        db.push(vec![3, 1, 2, 1]);
        assert_eq!(db.transactions()[0], vec![1, 2, 3]);
    }

    #[test]
    fn item_supports_counts_presence_not_multiplicity() {
        let db = TransactionDb::from_iter([vec![1, 1, 2], vec![1], vec![2]]);
        let s = db.item_supports();
        assert_eq!(s[&1], 2);
        assert_eq!(s[&2], 2);
    }

    #[test]
    fn from_transactions_uses_unique_extents() {
        let e1 = Extent::new(0, 4).unwrap();
        let e2 = Extent::new(100, 4).unwrap();
        let txn = Transaction::from_extents(Timestamp::ZERO, [e1, e2, e1]);
        let db = TransactionDb::from_transactions([&txn]);
        assert_eq!(db.transactions()[0].len(), 2);
    }

    #[test]
    fn empty_db() {
        let db: TransactionDb<u32> = TransactionDb::new();
        assert!(db.is_empty());
        assert!(db.item_supports().is_empty());
    }

    #[test]
    fn rows_do_not_over_retain_capacity() {
        let mut db = TransactionDb::new();
        // 100 duplicates dedup to one element; the row must not keep the
        // collection-time capacity.
        db.push(std::iter::repeat_n(7u32, 100));
        assert_eq!(db.transactions()[0], vec![7]);
        assert!(
            db.transactions()[0].capacity() <= 8,
            "row retained capacity {}",
            db.transactions()[0].capacity()
        );
    }
}
