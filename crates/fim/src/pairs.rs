//! Exact extent-pair frequency counting — the offline ground truth.
//!
//! "Offline FIM data provides the frequencies of all extent correlations"
//! (§IV-C3); this module is that oracle, equivalent to mining with
//! support 1 and itemset length 2 but computed directly.
//!
//! [`count_pairs`] runs a dense kernel: extents are interned to
//! contiguous ids once, then each transaction's pairs bump either a
//! triangular count array (small universes) or an FxHash map keyed by a
//! packed id pair — no per-pair `ExtentPair` construction or SipHash on
//! the hot path. The original per-pair hashing implementation is
//! preserved as [`count_pairs_generic`] and serves as the equivalence
//! oracle. [`SlidingPairCounts`] maintains the same counts incrementally
//! over a window (add/retire one transaction at a time), so windowed
//! ground truth no longer recounts from scratch.

use std::collections::HashMap;
use std::hash::BuildHasher;

use rtdac_types::{Extent, ExtentPair, FxHashMap, Transaction};

/// Pair-frequency map type used across the offline oracle (FxHash-keyed,
/// matching the online path's hasher).
pub type PairCounts = FxHashMap<ExtentPair, u32>;

/// Universes up to this many distinct extents count into a dense
/// triangular array (≤ ~2 MiB of counters); larger ones use a hash map
/// keyed by packed id pairs.
const TRIANGULAR_MAX_ITEMS: usize = 1024;

/// Counts how many transactions each unique extent pair occurs in.
///
/// # Examples
///
/// ```
/// use rtdac_fim::count_pairs;
/// use rtdac_types::{Extent, Timestamp, Transaction};
///
/// let a = Extent::new(100, 4)?;
/// let b = Extent::new(200, 3)?;
/// let txns = vec![
///     Transaction::from_extents(Timestamp::ZERO, [a, b]),
///     Transaction::from_extents(Timestamp::ZERO, [a, b]),
/// ];
/// let counts = count_pairs(&txns);
/// assert_eq!(counts.len(), 1);
/// assert_eq!(counts.values().next(), Some(&2));
/// # Ok::<(), rtdac_types::ExtentError>(())
/// ```
pub fn count_pairs<'a, T>(transactions: T) -> PairCounts
where
    T: IntoIterator<Item = &'a Transaction>,
{
    // Pass 1: intern extents to dense ids and recode each transaction to
    // a sorted, deduplicated id row. Rows live concatenated in one flat
    // buffer — no per-transaction allocation.
    let mut ids: FxHashMap<Extent, u32> = FxHashMap::default();
    let mut items: Vec<Extent> = Vec::new();
    let mut flat: Vec<u32> = Vec::new();
    let mut offsets: Vec<u32> = vec![0];
    for txn in transactions {
        let start = flat.len();
        for item in txn.items() {
            let id = match ids.get(&item.extent) {
                Some(&id) => id,
                None => {
                    let id = items.len() as u32;
                    ids.insert(item.extent, id);
                    items.push(item.extent);
                    id
                }
            };
            flat.push(id);
        }
        flat[start..].sort_unstable();
        let mut keep = start;
        for r in start..flat.len() {
            if keep == start || flat[r] != flat[keep - 1] {
                flat[keep] = flat[r];
                keep += 1;
            }
        }
        flat.truncate(keep);
        offsets.push(keep as u32);
    }
    let rows = offsets
        .windows(2)
        .map(|w| &flat[w[0] as usize..w[1] as usize]);

    // Pass 2: count id pairs without touching `ExtentPair` or hashing
    // 16-byte keys per occurrence.
    let n = items.len();
    let mut counts = PairCounts::default();
    if n <= TRIANGULAR_MAX_ITEMS {
        let mut tri = vec![0u32; n * n.saturating_sub(1) / 2];
        for row in rows {
            // Rows are sorted ascending, so j > i for every counted pair.
            for (hi, &j) in row.iter().enumerate().skip(1) {
                let base = (j as usize) * (j as usize - 1) / 2;
                for &i in &row[..hi] {
                    tri[base + i as usize] += 1;
                }
            }
        }
        counts.reserve(tri.iter().filter(|&&c| c > 0).count());
        for j in 1..n {
            let base = j * (j - 1) / 2;
            for i in 0..j {
                let c = tri[base + i];
                if c > 0 {
                    counts.insert(pair_of(&items, i as u32, j as u32), c);
                }
            }
        }
    } else {
        let mut packed: FxHashMap<u64, u32> = FxHashMap::default();
        for row in rows {
            for (hi, &j) in row.iter().enumerate().skip(1) {
                for &i in &row[..hi] {
                    *packed.entry(u64::from(i) << 32 | u64::from(j)).or_insert(0) += 1;
                }
            }
        }
        counts.reserve(packed.len());
        for (key, c) in packed {
            counts.insert(pair_of(&items, (key >> 32) as u32, key as u32), c);
        }
    }
    counts
}

/// Rebuilds the canonical `ExtentPair` for two distinct interned ids.
fn pair_of(items: &[Extent], i: u32, j: u32) -> ExtentPair {
    ExtentPair::new(items[i as usize], items[j as usize]).expect("distinct ids, distinct extents")
}

/// Counts pairs with the preserved per-pair hashing implementation — the
/// equivalence oracle for the dense kernel.
pub fn count_pairs_generic<'a, T>(transactions: T) -> PairCounts
where
    T: IntoIterator<Item = &'a Transaction>,
{
    let mut counts = PairCounts::default();
    for txn in transactions {
        for pair in txn.unique_pairs() {
            *counts.entry(pair).or_insert(0) += 1;
        }
    }
    counts
}

/// Incrementally maintained pair counts over a sliding transaction
/// window: [`add`](Self::add) admits the newest transaction,
/// [`retire`](Self::retire) drops the oldest, and
/// [`counts`](Self::counts) is at all times equal to
/// [`count_pairs`] over the live window.
///
/// # Examples
///
/// ```
/// use rtdac_fim::{count_pairs, SlidingPairCounts};
/// use rtdac_types::{Extent, Timestamp, Transaction};
///
/// let e = |s| Extent::new(s, 1).unwrap();
/// let t1 = Transaction::from_extents(Timestamp::ZERO, [e(1), e(2)]);
/// let t2 = Transaction::from_extents(Timestamp::ZERO, [e(1), e(2), e(3)]);
/// let mut window = SlidingPairCounts::new();
/// window.add(&t1);
/// window.add(&t2);
/// window.retire(&t1);
/// assert_eq!(*window.counts(), count_pairs([&t2]));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SlidingPairCounts {
    counts: PairCounts,
}

impl SlidingPairCounts {
    /// An empty window.
    pub fn new() -> Self {
        SlidingPairCounts::default()
    }

    /// Admits one transaction's pairs into the window.
    pub fn add(&mut self, txn: &Transaction) {
        for pair in txn.unique_pairs() {
            *self.counts.entry(pair).or_insert(0) += 1;
        }
    }

    /// Retires one transaction's pairs from the window. Must be a
    /// transaction previously [`add`](Self::add)ed and not yet retired;
    /// pairs whose count reaches zero leave the map entirely (so
    /// `counts()` stays exactly the live window's map).
    pub fn retire(&mut self, txn: &Transaction) {
        for pair in txn.unique_pairs() {
            match self.counts.get_mut(&pair) {
                Some(c) if *c > 1 => *c -= 1,
                Some(_) => {
                    self.counts.remove(&pair);
                }
                None => debug_assert!(false, "retired pair {pair} was never added"),
            }
        }
    }

    /// The live window's pair frequencies.
    pub fn counts(&self) -> &PairCounts {
        &self.counts
    }

    /// Number of distinct pairs currently in the window.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the window holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// Filters a pair-frequency map to pairs meeting `min_support`, sorted by
/// descending frequency (ties by pair order, for determinism). Generic
/// over the hasher so both Fx and std maps flow in.
pub fn frequent_pairs<S: BuildHasher>(
    counts: &HashMap<ExtentPair, u32, S>,
    min_support: u32,
) -> Vec<(ExtentPair, u32)> {
    let mut v: Vec<(ExtentPair, u32)> = counts
        .iter()
        .filter(|(_, &c)| c >= min_support)
        .map(|(&p, &c)| (p, c))
        .collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdac_types::Timestamp;

    fn e(start: u64) -> Extent {
        Extent::new(start, 1).unwrap()
    }

    fn txn(extents: &[Extent]) -> Transaction {
        Transaction::from_extents(Timestamp::ZERO, extents.iter().copied())
    }

    #[test]
    fn counts_across_transactions() {
        let txns = vec![txn(&[e(1), e(2), e(3)]), txn(&[e(1), e(2)]), txn(&[e(3)])];
        let counts = count_pairs(&txns);
        let p12 = ExtentPair::new(e(1), e(2)).unwrap();
        let p13 = ExtentPair::new(e(1), e(3)).unwrap();
        assert_eq!(counts[&p12], 2);
        assert_eq!(counts[&p13], 1);
        assert_eq!(counts.len(), 3);
    }

    #[test]
    fn duplicates_within_transaction_count_once() {
        let txns = vec![txn(&[e(1), e(1), e(2)])];
        let counts = count_pairs(&txns);
        assert_eq!(counts.len(), 1);
        assert_eq!(counts.values().sum::<u32>(), 1);
    }

    #[test]
    fn dense_kernel_matches_generic() {
        // Mixed sizes and repeats, enough extents to exercise interning.
        let mut txns = Vec::new();
        let mut state = 0x2545_f491_4f6c_dd1du64;
        for _ in 0..200 {
            let mut extents = Vec::new();
            for _ in 0..(state % 7) {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                extents.push(e(state % 40 + 1));
            }
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            txns.push(txn(&extents));
        }
        assert_eq!(count_pairs(&txns), count_pairs_generic(&txns));
    }

    #[test]
    fn sliding_window_tracks_scratch_recounts() {
        let mut txns = Vec::new();
        for i in 0..30u64 {
            txns.push(txn(&[e(i % 5 + 1), e(i % 7 + 1), e(i % 3 + 10)]));
        }
        let window = 8;
        let mut sliding = SlidingPairCounts::new();
        for (i, t) in txns.iter().enumerate() {
            sliding.add(t);
            if i + 1 > window {
                sliding.retire(&txns[i - window]);
            }
            let live = &txns[(i + 1).saturating_sub(window)..=i];
            assert_eq!(*sliding.counts(), count_pairs(live), "window ending at {i}");
        }
    }

    #[test]
    fn frequent_pairs_sorted_descending() {
        let txns = vec![
            txn(&[e(1), e(2)]),
            txn(&[e(1), e(2)]),
            txn(&[e(1), e(2)]),
            txn(&[e(3), e(4)]),
            txn(&[e(3), e(4)]),
            txn(&[e(5), e(6)]),
        ];
        let counts = count_pairs(&txns);
        let top = frequent_pairs(&counts, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].1, 3);
        assert_eq!(top[1].1, 2);
    }

    #[test]
    fn agrees_with_eclat_pairs() {
        // The oracle must agree with full FIM restricted to pairs.
        let txns = vec![
            txn(&[e(1), e(2), e(3)]),
            txn(&[e(1), e(2)]),
            txn(&[e(2), e(3)]),
            txn(&[e(1), e(3), e(4)]),
        ];
        let counts = count_pairs(&txns);
        let db = crate::TransactionDb::from_transactions(&txns);
        let mined = crate::Eclat::new(1).max_len(2).mine(&db);
        for (pair, count) in &counts {
            assert_eq!(
                mined.support(&[pair.first(), pair.second()]),
                Some(*count),
                "disagreement on {pair}"
            );
        }
        assert_eq!(mined.of_len(2).count(), counts.len());
    }
}
