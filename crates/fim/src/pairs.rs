//! Exact extent-pair frequency counting — the offline ground truth.
//!
//! "Offline FIM data provides the frequencies of all extent correlations"
//! (§IV-C3); this module is that oracle, equivalent to mining with
//! support 1 and itemset length 2 but computed directly.

use std::collections::HashMap;

use rtdac_types::{ExtentPair, Transaction};

/// Counts how many transactions each unique extent pair occurs in.
///
/// # Examples
///
/// ```
/// use rtdac_fim::count_pairs;
/// use rtdac_types::{Extent, Timestamp, Transaction};
///
/// let a = Extent::new(100, 4)?;
/// let b = Extent::new(200, 3)?;
/// let txns = vec![
///     Transaction::from_extents(Timestamp::ZERO, [a, b]),
///     Transaction::from_extents(Timestamp::ZERO, [a, b]),
/// ];
/// let counts = count_pairs(&txns);
/// assert_eq!(counts.len(), 1);
/// assert_eq!(counts.values().next(), Some(&2));
/// # Ok::<(), rtdac_types::ExtentError>(())
/// ```
pub fn count_pairs<'a, T>(transactions: T) -> HashMap<ExtentPair, u32>
where
    T: IntoIterator<Item = &'a Transaction>,
{
    let mut counts = HashMap::new();
    for txn in transactions {
        for pair in txn.unique_pairs() {
            *counts.entry(pair).or_insert(0) += 1;
        }
    }
    counts
}

/// Filters a pair-frequency map to pairs meeting `min_support`, sorted by
/// descending frequency (ties by pair order, for determinism).
pub fn frequent_pairs(
    counts: &HashMap<ExtentPair, u32>,
    min_support: u32,
) -> Vec<(ExtentPair, u32)> {
    let mut v: Vec<(ExtentPair, u32)> = counts
        .iter()
        .filter(|(_, &c)| c >= min_support)
        .map(|(&p, &c)| (p, c))
        .collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdac_types::{Extent, Timestamp};

    fn e(start: u64) -> Extent {
        Extent::new(start, 1).unwrap()
    }

    fn txn(extents: &[Extent]) -> Transaction {
        Transaction::from_extents(Timestamp::ZERO, extents.iter().copied())
    }

    #[test]
    fn counts_across_transactions() {
        let txns = vec![txn(&[e(1), e(2), e(3)]), txn(&[e(1), e(2)]), txn(&[e(3)])];
        let counts = count_pairs(&txns);
        let p12 = ExtentPair::new(e(1), e(2)).unwrap();
        let p13 = ExtentPair::new(e(1), e(3)).unwrap();
        assert_eq!(counts[&p12], 2);
        assert_eq!(counts[&p13], 1);
        assert_eq!(counts.len(), 3);
    }

    #[test]
    fn duplicates_within_transaction_count_once() {
        let txns = vec![txn(&[e(1), e(1), e(2)])];
        let counts = count_pairs(&txns);
        assert_eq!(counts.len(), 1);
        assert_eq!(counts.values().sum::<u32>(), 1);
    }

    #[test]
    fn frequent_pairs_sorted_descending() {
        let txns = vec![
            txn(&[e(1), e(2)]),
            txn(&[e(1), e(2)]),
            txn(&[e(1), e(2)]),
            txn(&[e(3), e(4)]),
            txn(&[e(3), e(4)]),
            txn(&[e(5), e(6)]),
        ];
        let counts = count_pairs(&txns);
        let top = frequent_pairs(&counts, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].1, 3);
        assert_eq!(top[1].1, 2);
    }

    #[test]
    fn agrees_with_eclat_pairs() {
        // The oracle must agree with full FIM restricted to pairs.
        let txns = vec![
            txn(&[e(1), e(2), e(3)]),
            txn(&[e(1), e(2)]),
            txn(&[e(2), e(3)]),
            txn(&[e(1), e(3), e(4)]),
        ];
        let counts = count_pairs(&txns);
        let db = crate::TransactionDb::from_transactions(&txns);
        let mined = crate::Eclat::new(1).max_len(2).mine(&db);
        for (pair, count) in &counts {
            assert_eq!(
                mined.support(&[pair.first(), pair.second()]),
                Some(*count),
                "disagreement on {pair}"
            );
        }
        assert_eq!(mined.of_len(2).count(), counts.len());
    }
}
