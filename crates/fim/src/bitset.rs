//! Adaptive tidsets for the dense eclat engine.
//!
//! Zaki's eclat intersects transaction-id sets along every DFS edge, so
//! the set representation *is* the algorithm's cost model. Near the root,
//! tidsets are dense and a `Vec<u64>` bitset intersects a word (64 tids)
//! per AND+popcount. Deep in the search they thin out and a bitset would
//! still pay for every word of the universe, so sets below a density
//! threshold fall back to sorted tid lists with merge-walk intersection
//! — the hybrid Borgelt's eclat uses.

/// A set of transaction ids drawn from the universe `0..n_txns`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TidSet {
    /// Bitset form: one bit per transaction, `count` bits set.
    Dense { words: Vec<u64>, count: u32 },
    /// Sorted-list form, for sets below the density threshold.
    Sparse { tids: Vec<u32> },
}

/// Sets holding at least one tid per four bitset words (on average) go
/// dense; below that a sorted list is both smaller and faster to
/// intersect. The word-wise AND is branchless and vectorizes, so it
/// stays ahead of the branchy merge walk well below one tid per word.
fn dense_threshold(n_txns: usize) -> usize {
    (n_txns / 256).max(1)
}

impl TidSet {
    /// Builds the representation the density threshold prescribes from a
    /// sorted, duplicate-free tid list.
    pub fn from_sorted(tids: Vec<u32>, n_txns: usize) -> Self {
        debug_assert!(tids.windows(2).all(|w| w[0] < w[1]), "tids must be sorted");
        if tids.len() >= dense_threshold(n_txns) {
            let mut words = vec![0u64; n_txns.div_ceil(64)];
            for &tid in &tids {
                words[tid as usize / 64] |= 1u64 << (tid % 64);
            }
            TidSet::Dense {
                words,
                count: tids.len() as u32,
            }
        } else {
            TidSet::Sparse { tids }
        }
    }

    /// Number of tids in the set — the itemset's absolute support.
    pub fn count(&self) -> u32 {
        match self {
            TidSet::Dense { count, .. } => *count,
            TidSet::Sparse { tids } => tids.len() as u32,
        }
    }

    /// Intersects two sets, picking the output representation by the
    /// same density threshold.
    pub fn intersect(&self, other: &TidSet, n_txns: usize) -> TidSet {
        match (self, other) {
            (TidSet::Dense { words: a, .. }, TidSet::Dense { words: b, .. }) => {
                let words: Vec<u64> = a.iter().zip(b).map(|(x, y)| x & y).collect();
                let count: u32 = words.iter().map(|w| w.count_ones()).sum();
                if (count as usize) < dense_threshold(n_txns) {
                    TidSet::Sparse {
                        tids: set_bits(&words),
                    }
                } else {
                    TidSet::Dense { words, count }
                }
            }
            (TidSet::Dense { words, .. }, TidSet::Sparse { tids })
            | (TidSet::Sparse { tids }, TidSet::Dense { words, .. }) => TidSet::Sparse {
                tids: tids
                    .iter()
                    .copied()
                    .filter(|&t| words[t as usize / 64] & (1u64 << (t % 64)) != 0)
                    .collect(),
            },
            (TidSet::Sparse { tids: a }, TidSet::Sparse { tids: b }) => {
                let mut out = Vec::with_capacity(a.len().min(b.len()));
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            out.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                TidSet::Sparse { tids: out }
            }
        }
    }

    /// Intersects two sets, returning the result only when it reaches
    /// `min_support` — the eclat DFS filter. For two bitsets the count
    /// comes from a pure AND+popcount pass, so infrequent candidates
    /// (the vast majority of DFS edges) are rejected without allocating
    /// or materializing anything.
    pub fn intersect_min(&self, other: &TidSet, min_support: u32, n_txns: usize) -> Option<TidSet> {
        if let (TidSet::Dense { words: a, .. }, TidSet::Dense { words: b, .. }) = (self, other) {
            let count: u32 = a.iter().zip(b).map(|(x, y)| (x & y).count_ones()).sum();
            if count < min_support {
                return None;
            }
            if (count as usize) >= dense_threshold(n_txns) {
                let words: Vec<u64> = a.iter().zip(b).map(|(x, y)| x & y).collect();
                Some(TidSet::Dense { words, count })
            } else {
                let mut tids = Vec::with_capacity(count as usize);
                for (w, (x, y)) in a.iter().zip(b).enumerate() {
                    let mut bits = x & y;
                    while bits != 0 {
                        tids.push(w as u32 * 64 + bits.trailing_zeros());
                        bits &= bits - 1;
                    }
                }
                Some(TidSet::Sparse { tids })
            }
        } else {
            let set = self.intersect(other, n_txns);
            (set.count() >= min_support).then_some(set)
        }
    }

    /// The tids in ascending order (materialized; test/debug aid).
    pub fn to_sorted(&self) -> Vec<u32> {
        match self {
            TidSet::Dense { words, .. } => set_bits(words),
            TidSet::Sparse { tids } => tids.clone(),
        }
    }
}

/// Positions of the set bits, ascending.
fn set_bits(words: &[u64]) -> Vec<u32> {
    let mut out = Vec::new();
    for (w, &word) in words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let b = bits.trailing_zeros();
            out.push(w as u32 * 64 + b);
            bits &= bits - 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(tids: &[u32], n: usize) -> TidSet {
        TidSet::from_sorted(tids.to_vec(), n)
    }

    #[test]
    fn representation_follows_density() {
        // 4096 txns → threshold 16: 20 tids go dense, 3 stay sparse.
        assert!(matches!(
            set(&(0..20).collect::<Vec<_>>(), 4096),
            TidSet::Dense { .. }
        ));
        assert!(matches!(set(&[1, 2, 3], 4096), TidSet::Sparse { .. }));
        // Tiny universes always qualify as dense (threshold clamps to 1).
        assert!(matches!(set(&[0], 3), TidSet::Dense { .. }));
    }

    #[test]
    fn intersect_min_filters_and_matches_intersect() {
        let n = 4096;
        let a: Vec<u32> = (0..600).step_by(2).collect();
        let b: Vec<u32> = (0..600).step_by(3).collect();
        let (sa, sb) = (set(&a, n), set(&b, n));
        let expect: Vec<u32> = (0..600).step_by(6).collect();
        let hit = sa.intersect_min(&sb, 50, n).expect("100 shared tids");
        assert_eq!(hit.to_sorted(), expect);
        assert_eq!(hit.count(), 100);
        assert!(sa.intersect_min(&sb, 101, n).is_none());
        // Mixed representations route through the plain intersection.
        let sparse = TidSet::Sparse {
            tids: vec![0, 6, 9],
        };
        let hit = sa.intersect_min(&sparse, 2, n).expect("0 and 6 shared");
        assert_eq!(hit.to_sorted(), vec![0, 6]);
        assert!(sa.intersect_min(&sparse, 3, n).is_none());
    }

    #[test]
    fn intersections_agree_across_representations() {
        let n = 300;
        let a: Vec<u32> = (0..200).step_by(2).collect(); // dense
        let b: Vec<u32> = (0..200).step_by(3).collect(); // dense
        let c: Vec<u32> = vec![0, 6, 66, 299]; // forced sparse below
        let c_sparse = TidSet::Sparse { tids: c.clone() };
        let expect_ab: Vec<u32> = (0..200).step_by(6).collect();
        let (sa, sb) = (set(&a, n), set(&b, n));
        assert_eq!(sa.intersect(&sb, n).to_sorted(), expect_ab);
        assert_eq!(sa.intersect(&c_sparse, n).to_sorted(), vec![0, 6, 66]);
        assert_eq!(c_sparse.intersect(&sa, n).to_sorted(), vec![0, 6, 66]);
        let c2 = TidSet::Sparse {
            tids: vec![6, 7, 299],
        };
        assert_eq!(c_sparse.intersect(&c2, n).to_sorted(), vec![6, 299]);
    }

    #[test]
    fn dense_intersection_demotes_to_sparse() {
        let n = 6400; // threshold 100
        let a: Vec<u32> = (0..2000).collect();
        let b: Vec<u32> = (1990..4000).collect();
        let inter = set(&a, n).intersect(&set(&b, n), n);
        assert!(matches!(inter, TidSet::Sparse { .. }));
        assert_eq!(inter.to_sorted(), (1990..2000).collect::<Vec<u32>>());
    }

    #[test]
    fn counts_match_lengths() {
        let n = 128;
        for tids in [vec![], vec![5], vec![0, 63, 64, 127]] {
            assert_eq!(set(&tids, n).count() as usize, tids.len());
        }
    }
}
