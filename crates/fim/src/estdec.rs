//! An estDec-style streaming itemset miner (Shin, Lee & Lee's estDec+
//! lineage, §II-B of the paper): a prefix tree of decayed itemset counts
//! maintained over a transaction stream under a memory budget.
//!
//! The paper dismisses stream FIM for this problem because "the focus of
//! stream based FIM algorithms [is] to generate frequent itemsets of
//! maximum size rather than only pairs". This implementation preserves
//! that property — it mines itemsets up to `max_len`, not just pairs —
//! so the dismissal can be evaluated rather than assumed (see the
//! `pairs_vs_full_itemsets` bench and `fig13`).
//!
//! Mechanics (the estDec recipe, simplified to a fixed-rate decay and
//! size-triggered pruning in place of estDec+'s compressible nodes):
//!
//! * every transaction decays all touched counts by `decay^(age)`;
//! * a new itemset is *delayed-inserted*: it starts being counted only
//!   once all of its (k−1)-subsets are already tracked and frequent-ish
//!   (the insertion threshold), so the tree stays sparse;
//! * when the node budget is exceeded, the weakest nodes (and therefore
//!   their supersets) are pruned.

use rtdac_types::FxHashMap;
use std::hash::Hash;

use rtdac_types::{Extent, Transaction};

/// Configuration for [`EstDecMiner`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EstDecConfig {
    /// Maximum tracked nodes (itemsets). The memory budget.
    pub max_nodes: usize,
    /// Per-transaction decay factor in `(0, 1]`.
    pub decay: f64,
    /// Decayed count a (k−1)-itemset must reach before k-supersets are
    /// admitted (estDec's insertion threshold).
    pub insertion_threshold: f64,
    /// Largest itemset size tracked.
    pub max_len: usize,
}

impl Default for EstDecConfig {
    /// A mild decay, pair-through-quadruple mining, 64 K nodes.
    fn default() -> Self {
        EstDecConfig {
            max_nodes: 64 * 1024,
            decay: 0.9999,
            insertion_threshold: 2.0,
            max_len: 4,
        }
    }
}

#[derive(Clone, Debug)]
struct NodeInfo {
    count: f64,
    last_seen: u64,
}

/// The estDec-style miner over generic items.
///
/// # Examples
///
/// ```
/// use rtdac_fim::{EstDecConfig, EstDecMiner};
///
/// let mut miner = EstDecMiner::new(EstDecConfig::default());
/// for _ in 0..10 {
///     miner.observe(&[1, 2, 3]);
/// }
/// // Pairs appear after their singletons pass the insertion threshold,
/// // triples after the pairs — the delayed-insertion cascade.
/// let frequent = miner.frequent_itemsets(5.0);
/// assert!(frequent.iter().any(|(set, _)| set == &vec![1, 2]));
/// assert!(frequent.iter().any(|(set, _)| set == &vec![1, 2, 3]));
/// ```
#[derive(Clone, Debug)]
pub struct EstDecMiner<I> {
    config: EstDecConfig,
    /// Tracked itemsets (sorted item vectors) with decayed counts. A
    /// HashMap-of-sorted-vecs is the flattened form of the prefix tree:
    /// subset lookups below stand in for tree-path walks.
    nodes: FxHashMap<Vec<I>, NodeInfo>,
    clock: u64,
}

impl<I: Ord + Hash + Clone> EstDecMiner<I> {
    /// Creates a miner.
    ///
    /// # Panics
    ///
    /// Panics on a zero node budget, a decay outside `(0, 1]`, or
    /// `max_len < 2`.
    pub fn new(config: EstDecConfig) -> Self {
        assert!(config.max_nodes > 0, "node budget must be positive");
        assert!(
            config.decay > 0.0 && config.decay <= 1.0,
            "decay factor must be in (0, 1]"
        );
        assert!(config.max_len >= 2, "max_len below 2 tracks no itemsets");
        EstDecMiner {
            config,
            nodes: FxHashMap::default(),
            clock: 0,
        }
    }

    /// Feeds one transaction given as an item slice (deduplicated and
    /// sorted internally).
    pub fn observe(&mut self, items: &[I]) {
        self.clock += 1;
        let mut txn: Vec<I> = items.to_vec();
        txn.sort();
        txn.dedup();

        // Phase 1: update existing nodes and always-admit singletons.
        for item in &txn {
            self.bump(vec![item.clone()]);
        }

        // Phase 2: delayed insertion + update, level by level, so that a
        // newly admitted pair can admit a triple within the same
        // transaction once its count warrants it (the cascade).
        for k in 2..=self.config.max_len.min(txn.len()) {
            for subset in subsets_of_len(&txn, k) {
                if self.nodes.contains_key(&subset) || self.admissible(&subset) {
                    self.bump(subset);
                }
            }
        }

        if self.nodes.len() > self.config.max_nodes {
            self.prune();
        }
    }

    /// All (k−1)-subsets tracked with decayed count at or above the
    /// insertion threshold?
    fn admissible(&self, itemset: &[I]) -> bool {
        (0..itemset.len()).all(|skip| {
            let subset: Vec<I> = itemset
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, v)| v.clone())
                .collect();
            self.nodes
                .get(&subset)
                .map(|n| self.decayed(n) >= self.config.insertion_threshold)
                .unwrap_or(false)
        })
    }

    fn bump(&mut self, itemset: Vec<I>) {
        let clock = self.clock;
        let decay = self.config.decay;
        let node = self.nodes.entry(itemset).or_insert(NodeInfo {
            count: 0.0,
            last_seen: clock,
        });
        node.count = node.count * decay.powi((clock - node.last_seen) as i32) + 1.0;
        node.last_seen = clock;
    }

    fn decayed(&self, node: &NodeInfo) -> f64 {
        node.count * self.config.decay.powi((self.clock - node.last_seen) as i32)
    }

    /// Drops the weakest half of the tracked nodes. Pruning a subset
    /// also prunes its supersets (anti-monotonicity keeps the tree
    /// meaningful): enforced by dropping any node with a pruned subset.
    fn prune(&mut self) {
        let mut counts: Vec<f64> = self.nodes.values().map(|n| self.decayed(n)).collect();
        counts.sort_by(|a, b| a.partial_cmp(b).expect("counts are finite"));
        let cutoff = counts[counts.len() / 2];
        let clock = self.clock;
        let decay = self.config.decay;
        self.nodes
            .retain(|_, n| n.count * decay.powi((clock - n.last_seen) as i32) > cutoff);
        // Enforce downward closure after the cut.
        let keys: Vec<Vec<I>> = self
            .nodes
            .keys()
            .filter(|set| set.len() > 1)
            .cloned()
            .collect();
        let mut doomed = Vec::new();
        for set in keys {
            let all_subsets_present = (0..set.len()).all(|skip| {
                let subset: Vec<I> = set
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, v)| v.clone())
                    .collect();
                subset.is_empty() || self.nodes.contains_key(&subset)
            });
            if !all_subsets_present {
                doomed.push(set);
            }
        }
        for set in doomed {
            self.nodes.remove(&set);
        }
    }

    /// Every tracked itemset of two or more items whose decayed count
    /// reaches `min_count`, sorted by descending count.
    pub fn frequent_itemsets(&self, min_count: f64) -> Vec<(Vec<I>, f64)> {
        let mut out: Vec<(Vec<I>, f64)> = self
            .nodes
            .iter()
            .filter(|(set, _)| set.len() >= 2)
            .map(|(set, node)| (set.clone(), self.decayed(node)))
            .filter(|(_, count)| *count >= min_count)
            .collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("counts are finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        out
    }

    /// Number of tracked itemsets.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the miner tracks nothing yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Transactions observed.
    pub fn transactions(&self) -> u64 {
        self.clock
    }
}

impl EstDecMiner<Extent> {
    /// Feeds a monitor-produced transaction.
    pub fn process(&mut self, transaction: &Transaction) {
        self.observe(&transaction.unique_extents());
    }
}

/// All sorted `k`-subsets of the (sorted, deduplicated) slice.
fn subsets_of_len<I: Clone>(items: &[I], k: usize) -> Vec<Vec<I>> {
    let n = items.len();
    if k > n {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.iter().map(|&i| items[i].clone()).collect());
        // Advance the combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
        }
        idx[i] += 1;
        for j in (i + 1)..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsets_enumeration() {
        assert_eq!(
            subsets_of_len(&[1, 2, 3], 2),
            vec![vec![1, 2], vec![1, 3], vec![2, 3]]
        );
        assert_eq!(subsets_of_len(&[1, 2, 3], 3), vec![vec![1, 2, 3]]);
        assert_eq!(subsets_of_len(&[1], 2), Vec::<Vec<i32>>::new());
    }

    #[test]
    fn delayed_insertion_cascade() {
        let mut m = EstDecMiner::new(EstDecConfig {
            insertion_threshold: 3.0,
            decay: 1.0,
            ..EstDecConfig::default()
        });
        m.observe(&[1, 2]);
        m.observe(&[1, 2]);
        // Singletons at 2.0 < threshold: the pair is not yet admitted.
        assert!(m.frequent_itemsets(0.0).is_empty());
        m.observe(&[1, 2]);
        // Singletons reach 3.0: pair admitted and starts at 1.
        let pairs = m.frequent_itemsets(0.0);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, vec![1, 2]);
        assert!((pairs[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn counts_converge_to_frequency_without_decay() {
        let mut m = EstDecMiner::new(EstDecConfig {
            decay: 1.0,
            insertion_threshold: 1.0,
            ..EstDecConfig::default()
        });
        for _ in 0..10 {
            m.observe(&[5, 9]);
        }
        let pairs = m.frequent_itemsets(1.0);
        // Admitted on transaction 1 (threshold 1.0 reached by the
        // singletons within the same transaction thanks to the cascade).
        assert_eq!(pairs[0].0, vec![5, 9]);
        assert!(pairs[0].1 >= 9.0);
    }

    #[test]
    fn mines_maximal_itemsets_not_just_pairs() {
        let mut m = EstDecMiner::new(EstDecConfig {
            decay: 1.0,
            insertion_threshold: 1.0,
            max_len: 4,
            ..EstDecConfig::default()
        });
        for _ in 0..10 {
            m.observe(&[1, 2, 3, 4]);
        }
        let sets = m.frequent_itemsets(2.0);
        assert!(sets.iter().any(|(s, _)| s.len() == 4), "quad tracked");
        assert!(sets.iter().any(|(s, _)| s.len() == 3), "triples tracked");
        assert_eq!(sets.iter().filter(|(s, _)| s.len() == 2).count(), 6);
    }

    #[test]
    fn node_budget_is_enforced() {
        let mut m = EstDecMiner::new(EstDecConfig {
            max_nodes: 64,
            decay: 1.0,
            insertion_threshold: 1.0,
            max_len: 2,
        });
        for i in 0..500u32 {
            m.observe(&[i * 2, i * 2 + 1]);
        }
        assert!(m.len() <= 64 + 3, "len {}", m.len());
    }

    #[test]
    fn downward_closure_holds_after_pruning() {
        let mut m = EstDecMiner::new(EstDecConfig {
            max_nodes: 48,
            decay: 0.95,
            insertion_threshold: 1.0,
            max_len: 3,
        });
        let mut state = 7u64;
        for _ in 0..400 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (state >> 16) % 30;
            let b = (state >> 24) % 30;
            let c = (state >> 32) % 30;
            let mut txn = vec![a, b, c];
            txn.sort_unstable();
            txn.dedup();
            m.observe(&txn);
            // Every tracked k-itemset has all (k-1)-subsets tracked.
            for set in m.nodes.keys().filter(|s| s.len() > 1) {
                for skip in 0..set.len() {
                    let subset: Vec<u64> = set
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != skip)
                        .map(|(_, v)| *v)
                        .collect();
                    assert!(
                        m.nodes.contains_key(&subset),
                        "missing subset {subset:?} of {set:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn forgets_under_decay() {
        let mut m = EstDecMiner::new(EstDecConfig {
            decay: 0.5,
            insertion_threshold: 1.0,
            ..EstDecConfig::default()
        });
        for _ in 0..5 {
            m.observe(&[1, 2]);
        }
        for _ in 0..30 {
            m.observe(&[8, 9]);
        }
        let old = m
            .frequent_itemsets(0.0)
            .into_iter()
            .find(|(s, _)| s == &vec![1, 2]);
        if let Some((_, count)) = old {
            assert!(count < 1e-6, "stale count {count}");
        }
    }

    #[test]
    #[should_panic(expected = "max_len below 2")]
    fn max_len_one_panics() {
        EstDecMiner::<u32>::new(EstDecConfig {
            max_len: 1,
            ..EstDecConfig::default()
        });
    }
}
