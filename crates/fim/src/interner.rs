//! Dense item recoding — the first step of every Borgelt-style miner.
//!
//! Generic items (extents, integers, …) are recoded once per
//! [`TransactionDb`] to contiguous `u32` ids so the mining kernels can
//! index arrays instead of probing hash tables. Ids are assigned in
//! ascending item order, which makes dense-id order and item order
//! interchangeable: a kernel that emits itemsets in id order emits them
//! in item order too.

use std::hash::Hash;

use rtdac_types::FxHashMap;

use crate::db::TransactionDb;

/// A bijection between the distinct items of one database and the dense
/// id range `0..len()`.
///
/// # Examples
///
/// ```
/// use rtdac_fim::{ItemInterner, TransactionDb};
///
/// let db = TransactionDb::from_iter([vec![30, 10], vec![20, 10]]);
/// let interner = ItemInterner::from_db(&db);
/// assert_eq!(interner.len(), 3);
/// assert_eq!(interner.id(&10), Some(0)); // ids follow item order
/// assert_eq!(interner.item(2), &30);
/// ```
#[derive(Clone, Debug)]
pub struct ItemInterner<I> {
    /// Dense id → item, ascending by item order.
    items: Vec<I>,
    /// Item → dense id.
    ids: FxHashMap<I, u32>,
}

impl<I: Ord + Hash + Clone> ItemInterner<I> {
    /// Collects the distinct items of `db` and assigns each a dense id
    /// in ascending item order.
    pub fn from_db(db: &TransactionDb<I>) -> Self {
        let mut ids: FxHashMap<I, u32> = FxHashMap::default();
        for txn in db.transactions() {
            for item in txn {
                let next = ids.len() as u32;
                ids.entry(item.clone()).or_insert(next);
            }
        }
        let mut items: Vec<I> = ids.keys().cloned().collect();
        items.sort_unstable();
        for (id, item) in items.iter().enumerate() {
            *ids.get_mut(item).expect("interned item") = id as u32;
        }
        ItemInterner { items, ids }
    }

    /// Number of distinct items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the database held no items at all.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The item behind a dense id.
    ///
    /// # Panics
    ///
    /// Panics if `id >= len()`.
    pub fn item(&self, id: u32) -> &I {
        &self.items[id as usize]
    }

    /// All items, indexed by dense id (ascending item order).
    pub fn items(&self) -> &[I] {
        &self.items
    }

    /// The dense id of an item, if it appeared in the database.
    pub fn id(&self, item: &I) -> Option<u32> {
        self.ids.get(item).copied()
    }

    /// Recodes every transaction to sorted dense-id form. Because ids
    /// follow item order and `TransactionDb` rows are sorted, each row
    /// comes out already sorted and deduplicated.
    pub fn encode(&self, db: &TransactionDb<I>) -> Vec<Vec<u32>> {
        db.transactions()
            .iter()
            .map(|txn| txn.iter().map(|item| self.ids[item]).collect::<Vec<u32>>())
            .collect()
    }

    /// Interns, encodes, and counts item supports in one hash pass over
    /// the database — the miners' shared prelude. `from_db` + `encode`
    /// hash every item occurrence twice; this hashes each once (ids are
    /// assigned in first-seen order, then remapped to the ascending-item
    /// invariant with pure array passes). Returns the interner, the
    /// encoded rows, and the per-id supports.
    pub fn encode_db(db: &TransactionDb<I>) -> (Self, EncodedDb, Vec<u32>) {
        let mut ids: FxHashMap<I, u32> = FxHashMap::default();
        let mut items: Vec<I> = Vec::new();
        let mut supports: Vec<u32> = Vec::new();
        let mut flat: Vec<u32> = Vec::new();
        let mut offsets: Vec<u32> = Vec::with_capacity(db.len() + 1);
        offsets.push(0);
        for txn in db.transactions() {
            for item in txn {
                let id = match ids.get(item) {
                    Some(&id) => id,
                    None => {
                        let id = items.len() as u32;
                        ids.insert(item.clone(), id);
                        items.push(item.clone());
                        supports.push(0);
                        id
                    }
                };
                supports[id as usize] += 1;
                flat.push(id);
            }
            offsets.push(flat.len() as u32);
        }

        // Remap first-seen ids to ascending item order; rows stay sorted
        // because the remap is monotone in item order and `TransactionDb`
        // rows are item-sorted.
        let mut order: Vec<u32> = (0..items.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| items[a as usize].cmp(&items[b as usize]));
        let mut remap = vec![0u32; items.len()];
        for (new_id, &old) in order.iter().enumerate() {
            remap[old as usize] = new_id as u32;
        }
        let sorted_items: Vec<I> = order.iter().map(|&o| items[o as usize].clone()).collect();
        let mut sorted_supports = vec![0u32; supports.len()];
        for (old, &s) in supports.iter().enumerate() {
            sorted_supports[remap[old] as usize] = s;
        }
        for id in &mut flat {
            *id = remap[*id as usize];
        }
        for (id, item) in sorted_items.iter().enumerate() {
            *ids.get_mut(item).expect("interned item") = id as u32;
        }
        (
            ItemInterner {
                items: sorted_items,
                ids,
            },
            EncodedDb {
                items: flat,
                offsets,
            },
            sorted_supports,
        )
    }
}

/// A database recoded to dense ids, rows concatenated in one flat buffer
/// (no per-row allocation). Row `r` is `items[offsets[r]..offsets[r+1]]`,
/// sorted ascending.
#[derive(Clone, Debug)]
pub struct EncodedDb {
    items: Vec<u32>,
    offsets: Vec<u32>,
}

impl EncodedDb {
    /// Number of rows (transactions).
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the database held no transactions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dense-id row of transaction `r`, sorted ascending.
    pub fn row(&self, r: usize) -> &[u32] {
        &self.items[self.offsets[r] as usize..self.offsets[r + 1] as usize]
    }

    /// All rows in transaction order.
    pub fn rows(&self) -> impl Iterator<Item = &[u32]> {
        self.offsets
            .windows(2)
            .map(|w| &self.items[w[0] as usize..w[1] as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_follow_item_order() {
        let db = TransactionDb::from_iter([vec![5, 9], vec![1, 9]]);
        let interner = ItemInterner::from_db(&db);
        assert_eq!(interner.items(), &[1, 5, 9]);
        assert_eq!(interner.id(&1), Some(0));
        assert_eq!(interner.id(&5), Some(1));
        assert_eq!(interner.id(&9), Some(2));
        assert_eq!(interner.id(&7), None);
    }

    #[test]
    fn encode_preserves_sorted_rows() {
        let db = TransactionDb::from_iter([vec![9, 5], vec![1]]);
        let interner = ItemInterner::from_db(&db);
        let dense = interner.encode(&db);
        assert_eq!(dense, vec![vec![1, 2], vec![0]]);
        for row in &dense {
            assert!(row.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn empty_db() {
        let db: TransactionDb<u32> = TransactionDb::new();
        let interner = ItemInterner::from_db(&db);
        assert!(interner.is_empty());
        assert!(interner.encode(&db).is_empty());
        let (interner, encoded, supports) = ItemInterner::<u32>::encode_db(&db);
        assert!(interner.is_empty() && encoded.is_empty() && supports.is_empty());
    }

    #[test]
    fn encode_db_matches_the_two_pass_prelude() {
        let db = TransactionDb::from_iter([vec![9, 5], vec![1, 9], vec![9]]);
        let (interner, encoded, supports) = ItemInterner::encode_db(&db);
        let reference = ItemInterner::from_db(&db);
        assert_eq!(interner.items(), reference.items());
        let rows: Vec<Vec<u32>> = encoded.rows().map(<[u32]>::to_vec).collect();
        assert_eq!(rows, reference.encode(&db));
        assert_eq!(encoded.len(), db.len());
        assert_eq!(encoded.row(1), &[0, 2]);
        assert_eq!(supports, vec![1, 1, 3]); // items 1, 5, 9
        assert_eq!(interner.id(&9), Some(2));
    }
}
