//! Han et al.'s FP-growth (SIGMOD 2000): frequent pattern mining without
//! candidate generation, via recursive conditional FP-trees.
//!
//! The paper places fp-growth between apriori and eclat on the time/space
//! trade-off (§II-B).

use std::collections::HashMap;
use std::hash::Hash;

use crate::db::TransactionDb;
use crate::result::FimResult;

/// Configuration and entry point for the FP-growth miner.
///
/// # Examples
///
/// ```
/// use rtdac_fim::{FpGrowth, TransactionDb};
///
/// let db = TransactionDb::from_iter([vec![1, 2, 3], vec![1, 2], vec![2, 3]]);
/// let result = FpGrowth::new(2).mine(&db);
/// assert_eq!(result.support(&[2]), Some(3));
/// assert_eq!(result.support(&[1, 2]), Some(2));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FpGrowth {
    min_support: u32,
    max_len: Option<usize>,
}

/// One node of an FP-tree. Nodes live in an arena; links are indices.
#[derive(Clone, Debug)]
struct Node {
    /// Index into the dense item-id space.
    item: usize,
    count: u32,
    parent: usize,
    children: HashMap<usize, usize>,
}

const ROOT: usize = 0;

/// An FP-tree over dense item ids, with its header table
/// (item → node indices).
struct FpTree {
    arena: Vec<Node>,
    header: HashMap<usize, Vec<usize>>,
}

impl FpTree {
    fn new() -> Self {
        FpTree {
            arena: vec![Node {
                item: usize::MAX,
                count: 0,
                parent: usize::MAX,
                children: HashMap::new(),
            }],
            header: HashMap::new(),
        }
    }

    /// Inserts one (ordered) transaction path with multiplicity `count`.
    fn insert(&mut self, path: &[usize], count: u32) {
        let mut cursor = ROOT;
        for &item in path {
            if let Some(&child) = self.arena[cursor].children.get(&item) {
                self.arena[child].count += count;
                cursor = child;
            } else {
                let idx = self.arena.len();
                self.arena.push(Node {
                    item,
                    count,
                    parent: cursor,
                    children: HashMap::new(),
                });
                self.arena[cursor].children.insert(item, idx);
                self.header.entry(item).or_default().push(idx);
                cursor = idx;
            }
        }
    }

    /// The conditional pattern base of `item`: prefix paths with counts.
    fn conditional_base(&self, item: usize) -> Vec<(Vec<usize>, u32)> {
        let mut base = Vec::new();
        for &node_idx in self.header.get(&item).map_or(&[][..], |v| v.as_slice()) {
            let count = self.arena[node_idx].count;
            let mut path = Vec::new();
            let mut cursor = self.arena[node_idx].parent;
            while cursor != ROOT {
                path.push(self.arena[cursor].item);
                cursor = self.arena[cursor].parent;
            }
            path.reverse();
            if !path.is_empty() {
                base.push((path, count));
            }
        }
        base
    }

    fn item_support(&self, item: usize) -> u32 {
        self.header
            .get(&item)
            .map_or(0, |nodes| nodes.iter().map(|&n| self.arena[n].count).sum())
    }

    fn items(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.header.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

impl FpGrowth {
    /// Creates a miner with the given absolute minimum support.
    ///
    /// # Panics
    ///
    /// Panics if `min_support == 0`.
    pub fn new(min_support: u32) -> Self {
        assert!(min_support > 0, "minimum support must be positive");
        FpGrowth {
            min_support,
            max_len: None,
        }
    }

    /// Limits mining to itemsets of at most `k` items.
    pub fn max_len(mut self, k: usize) -> Self {
        self.max_len = Some(k);
        self
    }

    /// Mines all frequent itemsets from `db`.
    pub fn mine<I: Ord + Hash + Clone>(&self, db: &TransactionDb<I>) -> FimResult<I> {
        // Map items to dense ids ordered by descending support (the
        // canonical FP-tree insertion order), keeping only frequent items.
        let supports = db.item_supports();
        let mut frequent: Vec<(I, u32)> = supports
            .into_iter()
            .filter(|(_, s)| *s >= self.min_support)
            .collect();
        // Descending support, ties by item order for determinism.
        frequent.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let id_of: HashMap<&I, usize> = frequent
            .iter()
            .enumerate()
            .map(|(id, (item, _))| (item, id))
            .collect();

        // Build the global tree.
        let mut tree = FpTree::new();
        for txn in db.transactions() {
            let mut path: Vec<usize> = txn.iter().filter_map(|i| id_of.get(i).copied()).collect();
            path.sort_unstable(); // dense ids are already support-ordered
            tree.insert(&path, 1);
        }

        let mut out_ids: Vec<(Vec<usize>, u32)> = Vec::new();
        let mut suffix: Vec<usize> = Vec::new();
        self.grow(&tree, &mut suffix, &mut out_ids);

        let out = out_ids
            .into_iter()
            .map(|(ids, support)| {
                (
                    ids.into_iter()
                        .map(|id| frequent[id].0.clone())
                        .collect::<Vec<I>>(),
                    support,
                )
            })
            .collect();
        FimResult::from_raw(out)
    }

    /// Recursively mines `tree`, whose itemsets all extend `suffix`.
    fn grow(&self, tree: &FpTree, suffix: &mut Vec<usize>, out: &mut Vec<(Vec<usize>, u32)>) {
        for item in tree.items() {
            let support = tree.item_support(item);
            if support < self.min_support {
                continue;
            }
            suffix.push(item);
            out.push((suffix.clone(), support));

            if self.max_len.is_none_or(|m| suffix.len() < m) {
                // Build the conditional tree for this item.
                let base = tree.conditional_base(item);
                if !base.is_empty() {
                    // Support counts within the conditional base.
                    let mut cond_support: HashMap<usize, u32> = HashMap::new();
                    for (path, count) in &base {
                        for &p in path {
                            *cond_support.entry(p).or_insert(0) += count;
                        }
                    }
                    let mut cond = FpTree::new();
                    for (path, count) in &base {
                        let filtered: Vec<usize> = path
                            .iter()
                            .copied()
                            .filter(|p| cond_support[p] >= self.min_support)
                            .collect();
                        if !filtered.is_empty() {
                            cond.insert(&filtered, *count);
                        }
                    }
                    if !cond.header.is_empty() {
                        self.grow(&cond, suffix, out);
                    }
                }
            }
            suffix.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_apriori_on_textbook_example() {
        let db =
            TransactionDb::from_iter([vec![1, 3, 4], vec![2, 3, 5], vec![1, 2, 3, 5], vec![2, 5]]);
        let fp = FpGrowth::new(2).mine(&db);
        let ap = crate::Apriori::new(2).mine(&db);
        assert_eq!(fp, ap);
    }

    #[test]
    fn han_sigmod_example() {
        // The running example of the FP-growth paper (items renamed to
        // integers: f=1, c=2, a=3, b=4, m=5, p=6, plus infrequent extras).
        let db = TransactionDb::from_iter([
            vec![1, 3, 2, 4, 5, 6], // f a c d g i m p -> keeping frequent
            vec![1, 3, 2, 4, 5],    // a b c f l m o
            vec![1, 4],             // b f h j o
            vec![2, 4, 6],          // b c k s p
            vec![1, 3, 2, 5, 6],    // a f c e l p m n
        ]);
        let r = FpGrowth::new(3).mine(&db);
        let ap = crate::Apriori::new(3).mine(&db);
        assert_eq!(r, ap);
        assert_eq!(r.support(&[2, 5]), Some(3)); // {c, m}
    }

    #[test]
    fn max_len_limits_output() {
        let db = TransactionDb::from_iter([vec![1, 2, 3], vec![1, 2, 3]]);
        let r = FpGrowth::new(2).max_len(2).mine(&db);
        assert_eq!(r.support(&[1, 2]), Some(2));
        assert_eq!(r.support(&[1, 2, 3]), None);
    }

    #[test]
    fn empty_db_yields_empty() {
        let db: TransactionDb<u32> = TransactionDb::new();
        assert!(FpGrowth::new(1).mine(&db).is_empty());
    }

    #[test]
    #[should_panic(expected = "support must be positive")]
    fn zero_support_panics() {
        FpGrowth::new(0);
    }
}
