//! Han et al.'s FP-growth (SIGMOD 2000): frequent pattern mining without
//! candidate generation, via recursive conditional FP-trees.
//!
//! The paper places fp-growth between apriori and eclat on the time/space
//! trade-off (§II-B). [`FpGrowth::mine`] runs the dense engine: items are
//! recoded to support-ordered contiguous ids, tree nodes live in a flat
//! arena linked by first-child/next-sibling indices (no per-node hash
//! map), and header chains are threaded through the nodes themselves.
//! Conditional projections re-compact their surviving items to a fresh
//! local id space, so every level of the recursion indexes small arrays.
//! The original generic implementation is preserved as
//! [`FpGrowth::mine_generic`] and serves as the equivalence oracle.
//!
//! [`FpGrowth::tasks`] exposes the per-item conditional projections of
//! the global tree as independent units for a work pool; `mine` is
//! exactly `tasks` run serially.

use std::collections::HashMap;
use std::hash::Hash;

use crate::db::TransactionDb;
use crate::interner::ItemInterner;
use crate::result::FimResult;

/// Configuration and entry point for the FP-growth miner.
///
/// # Examples
///
/// ```
/// use rtdac_fim::{FpGrowth, TransactionDb};
///
/// let db = TransactionDb::from_iter([vec![1, 2, 3], vec![1, 2], vec![2, 3]]);
/// let result = FpGrowth::new(2).mine(&db);
/// assert_eq!(result.support(&[2]), Some(3));
/// assert_eq!(result.support(&[1, 2]), Some(2));
/// assert_eq!(result, FpGrowth::new(2).mine_generic(&db));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FpGrowth {
    min_support: u32,
    max_len: Option<usize>,
}

// ---------------------------------------------------------------------
// Dense engine
// ---------------------------------------------------------------------

/// Null link in the dense arena.
const NIL: u32 = u32::MAX;

/// One arena node: tree links (parent / first-child / next-sibling) plus
/// the header-chain link, all as indices. 24 bytes, no heap per node.
#[derive(Clone, Debug)]
struct DenseNode {
    item: u32,
    count: u32,
    parent: u32,
    first_child: u32,
    next_sibling: u32,
    header_next: u32,
}

/// An FP-tree over a contiguous item-id space. `nodes[0]` is the root
/// sentinel; `header[item]` heads the chain of that item's nodes and
/// `supports[item]` accumulates its total count in this tree.
///
/// Child lookup during insertion never scans the root's (potentially
/// item-universe-wide) child list: `root_index[item]` maps straight to
/// the root's child for `item`. Deeper sibling lists are short and
/// searched linearly with a move-to-front rotation, so repeated paths —
/// the common case once items are support-ordered — hit on the first
/// link.
#[derive(Clone, Debug)]
struct DenseTree {
    nodes: Vec<DenseNode>,
    header: Vec<u32>,
    supports: Vec<u32>,
    root_index: Vec<u32>,
}

impl DenseTree {
    fn new(n_items: usize) -> Self {
        DenseTree {
            nodes: vec![DenseNode {
                item: NIL,
                count: 0,
                parent: NIL,
                first_child: NIL,
                next_sibling: NIL,
                header_next: NIL,
            }],
            header: vec![NIL; n_items],
            supports: vec![0; n_items],
            root_index: vec![NIL; n_items],
        }
    }

    /// Inserts one id-sorted transaction path with multiplicity `count`.
    /// Callers set `supports` wholesale (they already know every item's
    /// total), so insertion does not track them.
    fn insert(&mut self, path: &[u32], count: u32) {
        let mut cursor = 0u32;
        for (depth, &item) in path.iter().enumerate() {
            let child = if depth == 0 {
                self.root_index[item as usize]
            } else {
                self.find_child_mtf(cursor, item)
            };
            if child != NIL {
                self.nodes[child as usize].count += count;
                cursor = child;
            } else {
                let idx = self.nodes.len() as u32;
                self.nodes.push(DenseNode {
                    item,
                    count,
                    parent: cursor,
                    first_child: NIL,
                    next_sibling: self.nodes[cursor as usize].first_child,
                    header_next: self.header[item as usize],
                });
                self.nodes[cursor as usize].first_child = idx;
                self.header[item as usize] = idx;
                if depth == 0 {
                    self.root_index[item as usize] = idx;
                }
                cursor = idx;
            }
        }
    }

    /// Finds `parent`'s child carrying `item` (or `NIL`), rotating a hit
    /// to the front of the sibling list. Sibling order is build-only
    /// state — mining walks header chains and parent links — so the
    /// rotation cannot affect results.
    fn find_child_mtf(&mut self, parent: u32, item: u32) -> u32 {
        let mut prev = NIL;
        let mut child = self.nodes[parent as usize].first_child;
        while child != NIL && self.nodes[child as usize].item != item {
            prev = child;
            child = self.nodes[child as usize].next_sibling;
        }
        if child != NIL && prev != NIL {
            self.nodes[prev as usize].next_sibling = self.nodes[child as usize].next_sibling;
            self.nodes[child as usize].next_sibling = self.nodes[parent as usize].first_child;
            self.nodes[parent as usize].first_child = child;
        }
        child
    }

    /// Inserts lexicographically sorted unit-count paths with zero child
    /// searching: paths sharing a prefix are adjacent, so the node stack
    /// of the previous path identifies every shared node directly, and a
    /// diverging suffix is always a fresh chain.
    fn insert_sorted_paths(&mut self, paths: &[Vec<u32>]) {
        let mut stack: Vec<u32> = Vec::new();
        let mut prev: &[u32] = &[];
        for path in paths {
            let shared = prev.iter().zip(path).take_while(|(a, b)| a == b).count();
            stack.truncate(shared);
            for &node in &stack {
                self.nodes[node as usize].count += 1;
            }
            for d in shared..path.len() {
                let parent = if d == 0 { 0 } else { stack[d - 1] };
                let item = path[d];
                let idx = self.nodes.len() as u32;
                self.nodes.push(DenseNode {
                    item,
                    count: 1,
                    parent,
                    first_child: NIL,
                    next_sibling: self.nodes[parent as usize].first_child,
                    header_next: self.header[item as usize],
                });
                self.nodes[parent as usize].first_child = idx;
                self.header[item as usize] = idx;
                stack.push(idx);
            }
            prev = path;
        }
    }

    fn n_items(&self) -> usize {
        self.header.len()
    }
}

impl FpGrowth {
    /// Creates a miner with the given absolute minimum support.
    ///
    /// # Panics
    ///
    /// Panics if `min_support == 0`.
    pub fn new(min_support: u32) -> Self {
        assert!(min_support > 0, "minimum support must be positive");
        FpGrowth {
            min_support,
            max_len: None,
        }
    }

    /// Limits mining to itemsets of at most `k` items.
    pub fn max_len(mut self, k: usize) -> Self {
        self.max_len = Some(k);
        self
    }

    /// Mines all frequent itemsets from `db` with the dense engine.
    pub fn mine<I: Ord + Hash + Clone>(&self, db: &TransactionDb<I>) -> FimResult<I> {
        let tasks = self.tasks(db);
        let mut scratch = tasks.scratch();
        let mut out: Vec<(Vec<I>, u32)> = Vec::new();
        for item in 0..tasks.len() {
            out.extend(tasks.run_with(item, &mut scratch));
        }
        FimResult::from_raw(out)
    }

    /// Prepares the dense engine: recodes frequent items to
    /// support-ordered ids, builds the global arena tree, and returns
    /// the per-item conditional projections as independent tasks.
    pub fn tasks<I: Ord + Hash + Clone>(&self, db: &TransactionDb<I>) -> FpTasks<I> {
        // One hash pass interns and counts; ranking and path encoding are
        // then pure array work. Ranks order frequent items by descending
        // support (the canonical FP-tree insertion order), ties by item
        // order — interner ids ascend in item order, so ascending id is
        // the tiebreak.
        let (interner, encoded, supports) = ItemInterner::encode_db(db);
        let mut frequent_ids: Vec<u32> = (0..supports.len() as u32)
            .filter(|&id| supports[id as usize] >= self.min_support)
            .collect();
        frequent_ids.sort_by(|&a, &b| {
            supports[b as usize]
                .cmp(&supports[a as usize])
                .then(a.cmp(&b))
        });
        let mut rank = vec![NIL; supports.len()];
        for (r, &id) in frequent_ids.iter().enumerate() {
            rank[id as usize] = r as u32;
        }
        let frequent: Vec<(I, u32)> = frequent_ids
            .iter()
            .map(|&id| (interner.item(id).clone(), supports[id as usize]))
            .collect();

        // Build the global tree from lexicographically sorted paths: the
        // sort groups shared prefixes, so insertion never searches a
        // sibling list — total build cost is one sort of short rows plus
        // one linear stack pass.
        let mut paths: Vec<Vec<u32>> = Vec::with_capacity(encoded.len());
        for row in encoded.rows() {
            let mut path: Vec<u32> = row
                .iter()
                .filter_map(|&id| {
                    let r = rank[id as usize];
                    (r != NIL).then_some(r)
                })
                .collect();
            if !path.is_empty() {
                path.sort_unstable(); // ranks are support-ordered
                paths.push(path);
            }
        }
        paths.sort_unstable();
        let mut tree = DenseTree::new(frequent.len());
        tree.insert_sorted_paths(&paths);
        tree.supports = frequent.iter().map(|&(_, s)| s).collect();

        FpTasks {
            frequent,
            tree,
            min_support: self.min_support,
            max_len: self.max_len,
        }
    }

    /// Mines all frequent itemsets with the preserved generic engine
    /// (per-node `HashMap` children) — the equivalence oracle for the
    /// dense path.
    pub fn mine_generic<I: Ord + Hash + Clone>(&self, db: &TransactionDb<I>) -> FimResult<I> {
        // Map items to dense ids ordered by descending support (the
        // canonical FP-tree insertion order), keeping only frequent items.
        let supports = db.item_supports();
        let mut frequent: Vec<(I, u32)> = supports
            .into_iter()
            .filter(|(_, s)| *s >= self.min_support)
            .collect();
        // Descending support, ties by item order for determinism.
        frequent.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let id_of: HashMap<&I, usize> = frequent
            .iter()
            .enumerate()
            .map(|(id, (item, _))| (item, id))
            .collect();

        // Build the global tree.
        let mut tree = FpTree::new();
        for txn in db.transactions() {
            let mut path: Vec<usize> = txn.iter().filter_map(|i| id_of.get(i).copied()).collect();
            path.sort_unstable(); // dense ids are already support-ordered
            tree.insert(&path, 1);
        }

        let mut out_ids: Vec<(Vec<usize>, u32)> = Vec::new();
        let mut suffix: Vec<usize> = Vec::new();
        self.grow_generic(&tree, &mut suffix, &mut out_ids);

        let out = out_ids
            .into_iter()
            .map(|(ids, support)| {
                (
                    ids.into_iter()
                        .map(|id| frequent[id].0.clone())
                        .collect::<Vec<I>>(),
                    support,
                )
            })
            .collect();
        FimResult::from_raw(out)
    }

    /// Recursively mines `tree` (generic engine), whose itemsets all
    /// extend `suffix`.
    fn grow_generic(
        &self,
        tree: &FpTree,
        suffix: &mut Vec<usize>,
        out: &mut Vec<(Vec<usize>, u32)>,
    ) {
        for item in tree.items() {
            let support = tree.item_support(item);
            if support < self.min_support {
                continue;
            }
            suffix.push(item);
            out.push((suffix.clone(), support));

            if self.max_len.is_none_or(|m| suffix.len() < m) {
                // Build the conditional tree for this item.
                let base = tree.conditional_base(item);
                if !base.is_empty() {
                    // Support counts within the conditional base.
                    let mut cond_support: HashMap<usize, u32> = HashMap::new();
                    for (path, count) in &base {
                        for &p in path {
                            *cond_support.entry(p).or_insert(0) += count;
                        }
                    }
                    let mut cond = FpTree::new();
                    for (path, count) in &base {
                        let filtered: Vec<usize> = path
                            .iter()
                            .copied()
                            .filter(|p| cond_support[p] >= self.min_support)
                            .collect();
                        if !filtered.is_empty() {
                            cond.insert(&filtered, *count);
                        }
                    }
                    if !cond.header.is_empty() {
                        self.grow_generic(&cond, suffix, out);
                    }
                }
            }
            suffix.pop();
        }
    }
}

/// Reusable per-worker mining state for [`FpTasks`]. Conditional
/// projections need a support accumulator and an id remap sized by the
/// projected item — zeroing those per projection is O(items) each time,
/// which dominates on wide trees. The scratch instead stamps each slot
/// with the epoch that last wrote it: a slot whose stamp is stale reads
/// as zero, so starting a new projection is just an epoch bump.
pub struct FpScratch {
    /// Per-item conditional support; valid only where `stamp == epoch`.
    support: Vec<u32>,
    /// Per-item re-compacted local id; valid only where `stamp == epoch`.
    remap: Vec<u32>,
    /// Epoch that last wrote each slot.
    stamp: Vec<u32>,
    /// Current projection's epoch.
    epoch: u32,
    /// Items touched by the current projection, for ordered iteration.
    touched: Vec<u32>,
    /// Path buffer reused across insertions.
    filtered: Vec<u32>,
    /// Flat replay of the conditional base recorded during the support
    /// walk: ancestor items back-to-back, delimited by `base_paths`.
    base_items: Vec<u32>,
    /// One `(start, end, count)` per base path into `base_items`.
    base_paths: Vec<(u32, u32, u32)>,
}

impl FpScratch {
    fn new(n_items: usize) -> Self {
        FpScratch {
            support: vec![0; n_items],
            remap: vec![0; n_items],
            stamp: vec![0; n_items],
            epoch: 0,
            touched: Vec::new(),
            filtered: Vec::new(),
            base_items: Vec::new(),
            base_paths: Vec::new(),
        }
    }

    /// Starts a new projection: all slots read as untouched again.
    fn advance(&mut self) {
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamp.fill(0);
                1
            }
        };
        self.touched.clear();
    }
}

/// The prepared dense FP-growth search, decomposed into per-item
/// conditional projections of the global tree. Task `k` covers every
/// frequent itemset whose least-frequent member is the `k`-th frequent
/// item; tasks only read shared state, so they can run on any threads
/// in any order — each worker holding its own [`FpScratch`].
/// [`FpTasks::collect`] merges per-task results back into the canonical
/// [`FimResult`].
pub struct FpTasks<I> {
    /// Frequent items with supports, indexed by dense id (descending
    /// support, ties by item order).
    frequent: Vec<(I, u32)>,
    /// The global tree over dense ids.
    tree: DenseTree,
    min_support: u32,
    max_len: Option<usize>,
}

impl<I: Ord + Clone> FpTasks<I> {
    /// Number of independent conditional projections.
    pub fn len(&self) -> usize {
        self.frequent.len()
    }

    /// Whether no item met the support threshold.
    pub fn is_empty(&self) -> bool {
        self.frequent.is_empty()
    }

    /// Creates a mining scratch sized for this search. One per worker;
    /// reusable across any number of [`FpTasks::run_with`] calls.
    pub fn scratch(&self) -> FpScratch {
        FpScratch::new(self.frequent.len())
    }

    /// Mines one projection with a fresh scratch. Equivalent to
    /// [`FpTasks::run_with`]; workers running many projections should
    /// hold one [`FpScratch`] and use `run_with` instead.
    pub fn run(&self, k: usize) -> Vec<(Vec<I>, u32)> {
        self.run_with(k, &mut self.scratch())
    }

    /// Mines one projection: the `k`-th frequent item's singleton plus
    /// every frequent itemset in its conditional tree.
    pub fn run_with(&self, k: usize, scratch: &mut FpScratch) -> Vec<(Vec<I>, u32)> {
        let mut out_ids: Vec<(Vec<u32>, u32)> = Vec::new();
        let mut suffix = vec![k as u32];
        out_ids.push((suffix.clone(), self.frequent[k].1));
        if self.max_len == Some(2) {
            self.conditional_leaf(
                &self.tree,
                k as u32,
                None,
                &mut suffix,
                &mut out_ids,
                scratch,
            );
        } else if self.max_len.is_none_or(|m| m > 1) {
            if let Some((cond, to_global)) = self.conditional(&self.tree, k as u32, None, scratch) {
                self.grow(&cond, &to_global, &mut suffix, &mut out_ids, scratch);
            }
        }
        out_ids
            .into_iter()
            .map(|(ids, support)| {
                (
                    ids.into_iter()
                        .map(|id| self.frequent[id as usize].0.clone())
                        .collect::<Vec<I>>(),
                    support,
                )
            })
            .collect()
    }

    /// Merges per-task outputs (in any order) into the normalized result.
    pub fn collect(parts: Vec<Vec<(Vec<I>, u32)>>) -> FimResult<I>
    where
        I: Hash,
    {
        FimResult::from_raw(parts.into_iter().flatten().collect())
    }

    /// Builds the conditional tree of local item `item` within `tree`,
    /// re-compacted to a fresh local id space. `to_global` translates
    /// `tree`'s local ids to global dense ids (`None` when `tree` *is*
    /// the global tree); returns the new tree with its own translation,
    /// or `None` when nothing in the base survives the support filter.
    fn conditional(
        &self,
        tree: &DenseTree,
        item: u32,
        to_global: Option<&[u32]>,
        scratch: &mut FpScratch,
    ) -> Option<(DenseTree, Vec<u32>)> {
        // The conditional pattern base is the prefix path of every node
        // in `item`'s header chain; paths hold `tree`-local ids, all
        // < `item`, because paths are inserted id-sorted. The single
        // chain walk accumulates supports while recording the base into
        // a flat replay buffer, so insertion reads sequential memory
        // instead of chasing parent pointers a second time. Epoch
        // stamping keeps the walk O(touched) rather than O(item).
        scratch.advance();
        let epoch = scratch.epoch;
        scratch.base_items.clear();
        scratch.base_paths.clear();
        let mut node = tree.header[item as usize];
        while node != NIL {
            let count = tree.nodes[node as usize].count;
            let start = scratch.base_items.len() as u32;
            let mut cursor = tree.nodes[node as usize].parent;
            while cursor != 0 {
                let p = tree.nodes[cursor as usize].item as usize;
                if scratch.stamp[p] != epoch {
                    scratch.stamp[p] = epoch;
                    scratch.support[p] = 0;
                    scratch.touched.push(p as u32);
                }
                scratch.support[p] += count;
                scratch.base_items.push(p as u32);
                cursor = tree.nodes[cursor as usize].parent;
            }
            let end = scratch.base_items.len() as u32;
            if end > start {
                scratch.base_paths.push((start, end, count));
            }
            node = tree.nodes[node as usize].header_next;
        }
        // Survivors keep their relative order, re-compacted to 0..m.
        // Untouched items have zero support, so sorting the touched set
        // recovers the same ascending-id scan the dense arrays gave.
        scratch.touched.sort_unstable();
        let mut kept: Vec<u32> = Vec::new();
        for &p in &scratch.touched {
            if scratch.support[p as usize] >= self.min_support {
                scratch.remap[p as usize] = kept.len() as u32;
                kept.push(p);
            } else {
                scratch.remap[p as usize] = NIL;
            }
        }
        if kept.is_empty() {
            return None;
        }

        let mut cond = DenseTree::new(kept.len());
        for pi in 0..scratch.base_paths.len() {
            let (start, end, count) = scratch.base_paths[pi];
            scratch.filtered.clear();
            for bi in start..end {
                // Stamped this projection ⇒ remap is valid for `p`.
                let r = scratch.remap[scratch.base_items[bi as usize] as usize];
                if r != NIL {
                    scratch.filtered.push(r);
                }
            }
            if !scratch.filtered.is_empty() {
                scratch.filtered.reverse(); // the upward walk yields ids descending
                cond.insert(&scratch.filtered, count);
            }
        }
        cond.supports = kept.iter().map(|&p| scratch.support[p as usize]).collect();
        let translation: Vec<u32> = kept
            .iter()
            .map(|&p| to_global.map_or(p, |t| t[p as usize]))
            .collect();
        Some((cond, translation))
    }

    /// Terminal projection level: when the itemsets extending `suffix`
    /// by `item` have already reached `max_len - 1` members, the next
    /// level only ever reads the conditional tree's supports — so the
    /// tree is never built. One header-chain walk accumulates supports
    /// and survivors are emitted directly.
    fn conditional_leaf(
        &self,
        tree: &DenseTree,
        item: u32,
        to_global: Option<&[u32]>,
        suffix: &mut Vec<u32>,
        out: &mut Vec<(Vec<u32>, u32)>,
        scratch: &mut FpScratch,
    ) {
        scratch.advance();
        let epoch = scratch.epoch;
        let mut node = tree.header[item as usize];
        while node != NIL {
            let count = tree.nodes[node as usize].count;
            let mut cursor = tree.nodes[node as usize].parent;
            while cursor != 0 {
                let p = tree.nodes[cursor as usize].item as usize;
                if scratch.stamp[p] != epoch {
                    scratch.stamp[p] = epoch;
                    scratch.support[p] = 0;
                    scratch.touched.push(p as u32);
                }
                scratch.support[p] += count;
                cursor = tree.nodes[cursor as usize].parent;
            }
            node = tree.nodes[node as usize].header_next;
        }
        scratch.touched.sort_unstable();
        for i in 0..scratch.touched.len() {
            let p = scratch.touched[i];
            let support = scratch.support[p as usize];
            if support >= self.min_support {
                suffix.push(to_global.map_or(p, |t| t[p as usize]));
                out.push((suffix.clone(), support));
                suffix.pop();
            }
        }
    }

    /// Recursively mines a conditional `tree`, whose itemsets all extend
    /// `suffix` (held as global dense ids).
    fn grow(
        &self,
        tree: &DenseTree,
        to_global: &[u32],
        suffix: &mut Vec<u32>,
        out: &mut Vec<(Vec<u32>, u32)>,
        scratch: &mut FpScratch,
    ) {
        for local in 0..tree.n_items() as u32 {
            let support = tree.supports[local as usize];
            if support < self.min_support {
                continue;
            }
            suffix.push(to_global[local as usize]);
            out.push((suffix.clone(), support));
            match self.max_len {
                Some(m) if suffix.len() >= m => {}
                Some(m) if suffix.len() + 1 == m => {
                    // The next level is terminal: supports only.
                    self.conditional_leaf(tree, local, Some(to_global), suffix, out, scratch);
                }
                _ => {
                    if let Some((cond, translation)) =
                        self.conditional(tree, local, Some(to_global), scratch)
                    {
                        self.grow(&cond, &translation, suffix, out, scratch);
                    }
                }
            }
            suffix.pop();
        }
    }
}

// ---------------------------------------------------------------------
// Generic engine (preserved oracle)
// ---------------------------------------------------------------------

/// One node of the generic FP-tree. Nodes live in an arena; children are
/// a per-node hash map (the representation the dense engine replaces).
#[derive(Clone, Debug)]
struct Node {
    /// Index into the dense item-id space.
    item: usize,
    count: u32,
    parent: usize,
    children: HashMap<usize, usize>,
}

const ROOT: usize = 0;

/// The generic FP-tree with its header table (item → node indices).
struct FpTree {
    arena: Vec<Node>,
    header: HashMap<usize, Vec<usize>>,
}

impl FpTree {
    fn new() -> Self {
        FpTree {
            arena: vec![Node {
                item: usize::MAX,
                count: 0,
                parent: usize::MAX,
                children: HashMap::new(),
            }],
            header: HashMap::new(),
        }
    }

    /// Inserts one (ordered) transaction path with multiplicity `count`.
    fn insert(&mut self, path: &[usize], count: u32) {
        let mut cursor = ROOT;
        for &item in path {
            if let Some(&child) = self.arena[cursor].children.get(&item) {
                self.arena[child].count += count;
                cursor = child;
            } else {
                let idx = self.arena.len();
                self.arena.push(Node {
                    item,
                    count,
                    parent: cursor,
                    children: HashMap::new(),
                });
                self.arena[cursor].children.insert(item, idx);
                self.header.entry(item).or_default().push(idx);
                cursor = idx;
            }
        }
    }

    /// The conditional pattern base of `item`: prefix paths with counts.
    fn conditional_base(&self, item: usize) -> Vec<(Vec<usize>, u32)> {
        let mut base = Vec::new();
        for &node_idx in self.header.get(&item).map_or(&[][..], |v| v.as_slice()) {
            let count = self.arena[node_idx].count;
            let mut path = Vec::new();
            let mut cursor = self.arena[node_idx].parent;
            while cursor != ROOT {
                path.push(self.arena[cursor].item);
                cursor = self.arena[cursor].parent;
            }
            path.reverse();
            if !path.is_empty() {
                base.push((path, count));
            }
        }
        base
    }

    fn item_support(&self, item: usize) -> u32 {
        self.header
            .get(&item)
            .map_or(0, |nodes| nodes.iter().map(|&n| self.arena[n].count).sum())
    }

    fn items(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.header.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_apriori_on_textbook_example() {
        let db =
            TransactionDb::from_iter([vec![1, 3, 4], vec![2, 3, 5], vec![1, 2, 3, 5], vec![2, 5]]);
        let fp = FpGrowth::new(2).mine(&db);
        let ap = crate::Apriori::new(2).mine(&db);
        assert_eq!(fp, ap);
        assert_eq!(fp, FpGrowth::new(2).mine_generic(&db));
    }

    #[test]
    fn han_sigmod_example() {
        // The running example of the FP-growth paper (items renamed to
        // integers: f=1, c=2, a=3, b=4, m=5, p=6, plus infrequent extras).
        let db = TransactionDb::from_iter([
            vec![1, 3, 2, 4, 5, 6], // f a c d g i m p -> keeping frequent
            vec![1, 3, 2, 4, 5],    // a b c f l m o
            vec![1, 4],             // b f h j o
            vec![2, 4, 6],          // b c k s p
            vec![1, 3, 2, 5, 6],    // a f c e l p m n
        ]);
        let r = FpGrowth::new(3).mine(&db);
        let ap = crate::Apriori::new(3).mine(&db);
        assert_eq!(r, ap);
        assert_eq!(r, FpGrowth::new(3).mine_generic(&db));
        assert_eq!(r.support(&[2, 5]), Some(3)); // {c, m}
    }

    #[test]
    fn dense_matches_generic_across_supports_and_lengths() {
        let db = TransactionDb::from_iter([
            vec![1, 2, 3, 7],
            vec![2, 3, 5],
            vec![1, 2, 3, 5, 7],
            vec![2, 5, 7],
            vec![1, 3],
            vec![2, 3, 7],
        ]);
        for support in [1, 2, 3, 5] {
            for max_len in [None, Some(1), Some(2), Some(3)] {
                let mut miner = FpGrowth::new(support);
                if let Some(m) = max_len {
                    miner = miner.max_len(m);
                }
                assert_eq!(
                    miner.mine(&db),
                    miner.mine_generic(&db),
                    "support {support} max_len {max_len:?}"
                );
            }
        }
    }

    #[test]
    fn per_projection_outputs_merge_to_the_same_result() {
        let db =
            TransactionDb::from_iter([vec![1, 3, 4], vec![2, 3, 5], vec![1, 2, 3, 5], vec![2, 5]]);
        let miner = FpGrowth::new(2);
        let tasks = miner.tasks(&db);
        let parts: Vec<_> = (0..tasks.len()).rev().map(|k| tasks.run(k)).collect();
        assert_eq!(FpTasks::collect(parts), miner.mine(&db));
    }

    #[test]
    fn max_len_limits_output() {
        let db = TransactionDb::from_iter([vec![1, 2, 3], vec![1, 2, 3]]);
        let r = FpGrowth::new(2).max_len(2).mine(&db);
        assert_eq!(r.support(&[1, 2]), Some(2));
        assert_eq!(r.support(&[1, 2, 3]), None);
    }

    #[test]
    fn empty_db_yields_empty() {
        let db: TransactionDb<u32> = TransactionDb::new();
        assert!(FpGrowth::new(1).mine(&db).is_empty());
        assert!(FpGrowth::new(1).mine_generic(&db).is_empty());
    }

    #[test]
    #[should_panic(expected = "support must be positive")]
    fn zero_support_panics() {
        FpGrowth::new(0);
    }
}
