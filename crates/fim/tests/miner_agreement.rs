//! Property tests: the three offline miners are exact and must agree with
//! each other and with brute-force enumeration on arbitrary databases.

use std::collections::HashMap;

use proptest::prelude::*;
use rtdac_fim::{Apriori, Eclat, FimResult, FpGrowth, TransactionDb};

/// Brute force: enumerate every subset of every transaction and count.
fn brute_force(db: &TransactionDb<u8>, min_support: u32) -> FimResult<u8> {
    let mut counts: HashMap<Vec<u8>, u32> = HashMap::new();
    for txn in db.transactions() {
        let n = txn.len();
        for mask in 1u32..(1 << n) {
            let subset: Vec<u8> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| txn[i])
                .collect();
            *counts.entry(subset).or_insert(0) += 1;
        }
    }
    FimResult::from_raw(
        counts
            .into_iter()
            .filter(|(_, c)| *c >= min_support)
            .collect(),
    )
}

fn db_strategy() -> impl Strategy<Value = TransactionDb<u8>> {
    prop::collection::vec(prop::collection::vec(0u8..10, 0..6), 0..20)
        .prop_map(TransactionDb::from_iter)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn all_miners_agree_with_brute_force(
        db in db_strategy(),
        min_support in 1u32..4,
    ) {
        let expected = brute_force(&db, min_support);
        prop_assert_eq!(&Apriori::new(min_support).mine(&db), &expected);
        prop_assert_eq!(&Eclat::new(min_support).mine(&db), &expected);
        prop_assert_eq!(&FpGrowth::new(min_support).mine(&db), &expected);
    }

    #[test]
    fn max_len_is_a_pure_filter(
        db in db_strategy(),
        min_support in 1u32..4,
        max_len in 1usize..4,
    ) {
        // Mining with max_len must equal full mining filtered by length.
        let full = Eclat::new(min_support).mine(&db);
        let expected = FimResult::from_raw(
            full.itemsets()
                .iter()
                .filter(|(set, _)| set.len() <= max_len)
                .cloned()
                .collect(),
        );
        prop_assert_eq!(&Apriori::new(min_support).max_len(max_len).mine(&db), &expected);
        prop_assert_eq!(&Eclat::new(min_support).max_len(max_len).mine(&db), &expected);
        prop_assert_eq!(&FpGrowth::new(min_support).max_len(max_len).mine(&db), &expected);
    }

    #[test]
    fn support_is_antimonotone(db in db_strategy()) {
        // Every frequent itemset's subsets are frequent with >= support.
        let r = Eclat::new(1).mine(&db);
        for (set, support) in r.itemsets() {
            if set.len() < 2 {
                continue;
            }
            for skip in 0..set.len() {
                let subset: Vec<u8> = set
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, v)| *v)
                    .collect();
                let sub_support = r.support(&subset).expect("subset must be frequent");
                prop_assert!(sub_support >= *support);
            }
        }
    }
}
