//! Property tests for the estDec-style streaming miner against exact
//! offline counts.

use std::collections::HashMap;

use proptest::prelude::*;
use rtdac_fim::{EstDecConfig, EstDecMiner};

fn stream_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..12, 1..5), 0..120)
}

/// Exact pair counts of the stream.
fn exact_pairs(stream: &[Vec<u8>]) -> HashMap<(u8, u8), u32> {
    let mut counts = HashMap::new();
    for txn in stream {
        let mut t = txn.clone();
        t.sort_unstable();
        t.dedup();
        for i in 0..t.len() {
            for j in (i + 1)..t.len() {
                *counts.entry((t[i], t[j])).or_insert(0) += 1;
            }
        }
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Without decay, tracked counts never exceed the true counts
    /// (delayed insertion can only lose the prefix before admission).
    #[test]
    fn counts_are_lower_bounds_without_decay(stream in stream_strategy()) {
        let mut miner = EstDecMiner::new(EstDecConfig {
            decay: 1.0,
            insertion_threshold: 1.0,
            max_len: 3,
            max_nodes: 100_000,
        });
        for txn in &stream {
            miner.observe(txn);
        }
        let truth = exact_pairs(&stream);
        for (set, count) in miner.frequent_itemsets(0.0) {
            if set.len() != 2 {
                continue;
            }
            let true_count = truth.get(&(set[0], set[1])).copied().unwrap_or(0);
            prop_assert!(
                count <= f64::from(true_count) + 1e-9,
                "{set:?}: tracked {count} > true {true_count}"
            );
        }
    }

    /// With threshold 1 and no decay, the admission delay costs at most
    /// one transaction: tracked >= true - 1 for every *tracked* pair.
    #[test]
    fn admission_delay_costs_at_most_one(stream in stream_strategy()) {
        let mut miner = EstDecMiner::new(EstDecConfig {
            decay: 1.0,
            insertion_threshold: 1.0,
            max_len: 2,
            max_nodes: 100_000,
        });
        for txn in &stream {
            miner.observe(txn);
        }
        let truth = exact_pairs(&stream);
        let tracked: HashMap<(u8, u8), f64> = miner
            .frequent_itemsets(0.0)
            .into_iter()
            .filter(|(set, _)| set.len() == 2)
            .map(|(set, c)| ((set[0], set[1]), c))
            .collect();
        for (&pair, &true_count) in &truth {
            // The cascade admits a pair within its first transaction
            // (singletons bump first), so every true pair is tracked with
            // a full count here.
            let count = tracked.get(&pair).copied().unwrap_or(0.0);
            prop_assert!(
                count >= f64::from(true_count) - 1.0 - 1e-9,
                "{pair:?}: tracked {count} < true {true_count} - 1"
            );
        }
    }

    /// The node budget holds after every transaction.
    #[test]
    fn budget_holds(stream in stream_strategy(), budget in 8usize..64) {
        let mut miner = EstDecMiner::new(EstDecConfig {
            decay: 0.999,
            insertion_threshold: 1.0,
            max_len: 3,
            max_nodes: budget,
        });
        for txn in &stream {
            miner.observe(txn);
            // Pruning triggers on exceed, so transiently the tree may
            // hold one transaction's worth of new nodes beyond budget.
            prop_assert!(
                miner.len() <= budget + 3 * 4 * 5,
                "len {} for budget {budget}",
                miner.len()
            );
        }
    }
}
