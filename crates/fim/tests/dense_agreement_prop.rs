//! Property tests for the dense mining engines: apriori ≡ eclat ≡
//! fp-growth ≡ `count_pairs` (restricted to len ≤ 2) on random
//! databases, sweeping `min_support` ∈ {1, 2, 5} and `max_len` ∈
//! {None, 1, 2, 3}, for both the generic and dense engines.
//!
//! Gated behind the `property-tests` feature like the other proptest
//! suites: enable after adding `proptest` to `[dev-dependencies]` on a
//! networked machine (the workspace builds offline and dependency-free
//! by default). The deterministic `dense_equivalence.rs` suite covers
//! the same invariants in the offline build.

use proptest::prelude::*;
use rtdac_fim::{
    count_pairs, count_pairs_generic, frequent_pairs, Apriori, Eclat, FimResult, FpGrowth,
    TransactionDb,
};
use rtdac_types::{Extent, Timestamp, Transaction};

fn transactions_strategy() -> impl Strategy<Value = Vec<Transaction>> {
    prop::collection::vec(prop::collection::vec(1u64..16, 0..6), 0..25).prop_map(|rows| {
        rows.into_iter()
            .map(|starts| {
                Transaction::from_extents(
                    Timestamp::ZERO,
                    starts.into_iter().map(|s| Extent::new(s, 1).unwrap()),
                )
            })
            .collect()
    })
}

/// Applies `max_len` to all three miners (None leaves them unbounded).
fn miners(min_support: u32, max_len: Option<usize>) -> (Apriori, Eclat, FpGrowth) {
    let (mut a, mut e, mut f) = (
        Apriori::new(min_support),
        Eclat::new(min_support),
        FpGrowth::new(min_support),
    );
    if let Some(k) = max_len {
        a = a.max_len(k);
        e = e.max_len(k);
        f = f.max_len(k);
    }
    (a, e, f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn generic_and_dense_engines_agree_across_the_sweep(
        txns in transactions_strategy(),
        support_idx in 0usize..3,
        len_idx in 0usize..4,
    ) {
        let min_support = [1u32, 2, 5][support_idx];
        let max_len = [None, Some(1), Some(2), Some(3)][len_idx];
        let db = TransactionDb::from_transactions(&txns);
        let (apriori, eclat, fp) = miners(min_support, max_len);

        let reference = apriori.mine(&db);
        prop_assert_eq!(&eclat.mine(&db), &reference);
        prop_assert_eq!(&eclat.mine_generic(&db), &reference);
        prop_assert_eq!(&fp.mine(&db), &reference);
        prop_assert_eq!(&fp.mine_generic(&db), &reference);
    }

    #[test]
    fn count_pairs_agrees_with_miners_restricted_to_pairs(
        txns in transactions_strategy(),
        support_idx in 0usize..3,
    ) {
        let min_support = [1u32, 2, 5][support_idx];
        let counts = count_pairs(&txns);
        prop_assert_eq!(&counts, &count_pairs_generic(&txns));

        let db = TransactionDb::from_transactions(&txns);
        let mined = Eclat::new(min_support).max_len(2).mine(&db);
        let mined_pairs = FimResult::from_raw(
            mined
                .of_len(2)
                .map(|(set, s)| (set.to_vec(), s))
                .collect::<Vec<_>>(),
        );
        let oracle_pairs = FimResult::from_raw(
            frequent_pairs(&counts, min_support)
                .into_iter()
                .map(|(p, c)| (vec![p.first(), p.second()], c))
                .collect::<Vec<_>>(),
        );
        prop_assert_eq!(mined_pairs, oracle_pairs);
    }

    #[test]
    fn task_decompositions_merge_to_the_serial_result(
        txns in transactions_strategy(),
        support_idx in 0usize..3,
    ) {
        let min_support = [1u32, 2, 5][support_idx];
        let db = TransactionDb::from_transactions(&txns);

        let eclat = Eclat::new(min_support);
        let tasks = eclat.tasks(&db);
        let parts: Vec<_> = (0..tasks.len()).rev().map(|c| tasks.run(c)).collect();
        prop_assert_eq!(rtdac_fim::EclatTasks::collect(parts), eclat.mine(&db));

        let fp = FpGrowth::new(min_support);
        let ftasks = fp.tasks(&db);
        let parts: Vec<_> = (0..ftasks.len()).rev().map(|k| ftasks.run(k)).collect();
        prop_assert_eq!(rtdac_fim::FpTasks::collect(parts), fp.mine(&db));
    }
}
