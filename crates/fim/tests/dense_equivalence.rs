//! The dense engines must be bit-exact with the preserved generic
//! implementations: same `FimResult` for eclat and fp-growth, same pair
//! map for `count_pairs`, across supports, length caps, and database
//! shapes. This is the always-on counterpart of the feature-gated
//! proptest in `dense_agreement_prop.rs` (deterministic inputs, so it
//! runs in the offline CI build).

use rtdac_fim::{
    count_pairs, count_pairs_generic, frequent_pairs, Apriori, Eclat, FimResult, FpGrowth,
    SlidingPairCounts, TransactionDb,
};
use rtdac_types::{Extent, Timestamp, Transaction};

/// Minimal xorshift-multiply generator so the sweep is deterministic
/// without pulling in an RNG dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// A random transaction stream: `universe` distinct extents, transaction
/// sizes 0..=6, with a skew knob that concentrates mass on low ids.
fn random_transactions(seed: u64, n: usize, universe: u64, skew: bool) -> Vec<Transaction> {
    let mut rng = Rng(seed | 1);
    (0..n)
        .map(|_| {
            let len = rng.below(7);
            let extents: Vec<Extent> = (0..len)
                .map(|_| {
                    let id = if skew && rng.below(10) < 7 {
                        rng.below(universe / 4 + 1)
                    } else {
                        rng.below(universe)
                    };
                    Extent::new(id + 1, 1).unwrap()
                })
                .collect();
            Transaction::from_extents(Timestamp::ZERO, extents)
        })
        .collect()
}

fn sweep(db: &TransactionDb<Extent>, label: &str) {
    for min_support in [1, 2, 5] {
        for max_len in [None, Some(1), Some(2), Some(3)] {
            let (mut eclat, mut fp, mut apriori) = (
                Eclat::new(min_support),
                FpGrowth::new(min_support),
                Apriori::new(min_support),
            );
            if let Some(k) = max_len {
                eclat = eclat.max_len(k);
                fp = fp.max_len(k);
                apriori = apriori.max_len(k);
            }
            let reference = apriori.mine(db);
            let case = format!("{label}, support {min_support}, max_len {max_len:?}");
            assert_eq!(eclat.mine(db), reference, "dense eclat diverged: {case}");
            assert_eq!(
                eclat.mine_generic(db),
                reference,
                "generic eclat diverged: {case}"
            );
            assert_eq!(fp.mine(db), reference, "dense fp-growth diverged: {case}");
            assert_eq!(
                fp.mine_generic(db),
                reference,
                "generic fp-growth diverged: {case}"
            );
        }
    }
}

#[test]
fn miners_agree_on_random_databases() {
    for (seed, universe, skew) in [(11, 12, false), (22, 40, true), (33, 6, true)] {
        let txns = random_transactions(seed, 60, universe, skew);
        let db = TransactionDb::from_transactions(&txns);
        sweep(&db, &format!("seed {seed}"));
    }
}

#[test]
fn count_pairs_matches_miners_restricted_to_pairs() {
    for (seed, universe, skew) in [(44, 15, false), (55, 30, true)] {
        let txns = random_transactions(seed, 80, universe, skew);
        let counts = count_pairs(&txns);
        assert_eq!(counts, count_pairs_generic(&txns), "seed {seed}");

        let db = TransactionDb::from_transactions(&txns);
        for min_support in [1, 2, 5] {
            // Miners restricted to len ≤ 2, then filtered to exactly the
            // pairs, must equal the oracle filtered to min_support.
            let mined = Eclat::new(min_support).max_len(2).mine(&db);
            let mined_pairs = FimResult::from_raw(
                mined
                    .of_len(2)
                    .map(|(set, s)| (set.to_vec(), s))
                    .collect::<Vec<_>>(),
            );
            let oracle_pairs = FimResult::from_raw(
                frequent_pairs(&counts, min_support)
                    .into_iter()
                    .map(|(p, c)| (vec![p.first(), p.second()], c))
                    .collect::<Vec<_>>(),
            );
            assert_eq!(
                mined_pairs, oracle_pairs,
                "seed {seed} support {min_support}"
            );
        }
    }
}

#[test]
fn sliding_window_equals_scratch_recounts() {
    let txns = random_transactions(66, 120, 20, true);
    let window = 25;
    let mut sliding = SlidingPairCounts::new();
    for (i, t) in txns.iter().enumerate() {
        sliding.add(t);
        if i + 1 > window {
            sliding.retire(&txns[i - window]);
        }
        if i % 17 == 0 || i + 1 == txns.len() {
            let live = &txns[(i + 1).saturating_sub(window)..=i];
            assert_eq!(*sliding.counts(), count_pairs(live), "window ending at {i}");
        }
    }
}

#[test]
fn parallel_style_task_merge_is_order_invariant() {
    // Per-class / per-projection results merged in scrambled order must
    // equal the serial mine — the property the bench work pool relies on.
    let txns = random_transactions(77, 70, 18, true);
    let db = TransactionDb::from_transactions(&txns);
    let eclat = Eclat::new(2).max_len(3);
    let tasks = eclat.tasks(&db);
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.reverse();
    let third = order.len() / 3;
    order.rotate_left(third);
    let parts: Vec<_> = order.iter().map(|&c| tasks.run(c)).collect();
    assert_eq!(rtdac_fim::EclatTasks::collect(parts), eclat.mine(&db));

    let fp = FpGrowth::new(2).max_len(3);
    let ftasks = fp.tasks(&db);
    // Both decompositions have one task per frequent item.
    assert_eq!(ftasks.len(), tasks.len());
    let parts: Vec<_> = order.iter().map(|&k| ftasks.run(k)).collect();
    assert_eq!(rtdac_fim::FpTasks::collect(parts), fp.mine(&db));
}
