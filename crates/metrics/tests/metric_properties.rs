//! Property tests for the metric machinery: the accuracy numbers the
//! whole evaluation rests on must themselves obey their definitions.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;
use rtdac_metrics::{detection, representability, FrequencyCdf, OptimalCurve};
use rtdac_types::{Extent, ExtentPair};

fn pair(i: u64) -> ExtentPair {
    ExtentPair::new(
        Extent::new(i * 16, 1).expect("valid"),
        Extent::new(i * 16 + 7, 1).expect("valid"),
    )
    .expect("distinct")
}

fn counts_strategy() -> impl Strategy<Value = HashMap<ExtentPair, u32>> {
    prop::collection::vec(1u32..50, 0..60).prop_map(|freqs| {
        freqs
            .into_iter()
            .enumerate()
            .map(|(i, f)| (pair(i as u64), f))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Both CDF lines are monotone non-decreasing in frequency and end
    /// at exactly 1 (when non-empty).
    #[test]
    fn cdf_lines_are_monotone_to_one(counts in counts_strategy()) {
        let cdf = FrequencyCdf::from_counts(&counts);
        let points = cdf.points();
        for w in points.windows(2) {
            prop_assert!(w[0].frequency < w[1].frequency);
            prop_assert!(w[0].unique_fraction <= w[1].unique_fraction);
            prop_assert!(w[0].weighted_fraction <= w[1].weighted_fraction);
        }
        if let Some(last) = points.last() {
            prop_assert!((last.unique_fraction - 1.0).abs() < 1e-9);
            prop_assert!((last.weighted_fraction - 1.0).abs() < 1e-9);
        }
    }

    /// The unique line always leads (or ties) the weighted line: a pair
    /// counted once contributes more to "unique" mass than to weighted
    /// mass whenever heavier pairs exist.
    #[test]
    fn unique_leads_weighted(counts in counts_strategy()) {
        let cdf = FrequencyCdf::from_counts(&counts);
        for point in cdf.points() {
            prop_assert!(
                point.unique_fraction >= point.weighted_fraction - 1e-9,
                "at frequency {}",
                point.frequency
            );
        }
    }

    /// The optimal curve really is optimal: no subset of n pairs covers
    /// more mass than optimal_fraction(n).
    #[test]
    fn optimal_dominates_any_subset(
        counts in counts_strategy(),
        selector in prop::collection::vec(prop::bool::ANY, 0..60),
    ) {
        let curve = OptimalCurve::from_counts(&counts);
        let chosen: HashSet<ExtentPair> = counts
            .keys()
            .zip(selector.iter().chain(std::iter::repeat(&false)))
            .filter(|(_, &take)| take)
            .map(|(p, _)| *p)
            .collect();
        let covered: u64 = chosen.iter().map(|p| u64::from(counts[p])).sum();
        let total = curve.total_occurrences().max(1);
        let fraction = covered as f64 / total as f64;
        prop_assert!(
            curve.optimal_fraction(chosen.len()) >= fraction - 1e-9,
            "subset of {} beats the optimal curve",
            chosen.len()
        );
    }

    /// min_size_for_fraction is the true inverse of optimal_fraction.
    #[test]
    fn min_size_inverts_optimal(counts in counts_strategy(), percent in 0u32..=100) {
        let curve = OptimalCurve::from_counts(&counts);
        let fraction = f64::from(percent) / 100.0;
        if let Some(n) = curve.min_size_for_fraction(fraction) {
            prop_assert!(curve.optimal_fraction(n) >= fraction - 1e-9);
            if n > 0 {
                prop_assert!(curve.optimal_fraction(n - 1) < fraction);
            }
        }
    }

    /// Representability's versus-optimal ratio is in [0, 1] (nothing
    /// beats optimal) whenever the stored set is drawn from the truth.
    #[test]
    fn versus_optimal_is_bounded(
        counts in counts_strategy(),
        selector in prop::collection::vec(prop::bool::ANY, 0..60),
    ) {
        let stored: HashSet<ExtentPair> = counts
            .keys()
            .zip(selector.iter().chain(std::iter::repeat(&false)))
            .filter(|(_, &take)| take)
            .map(|(p, _)| *p)
            .collect();
        let r = representability(&stored, &counts);
        prop_assert!(r.captured_fraction >= -1e-9);
        prop_assert!(r.captured_fraction <= 1.0 + 1e-9);
        if !stored.is_empty() && !counts.is_empty() {
            prop_assert!(r.versus_optimal <= 1.0 + 1e-9, "beat optimal: {r:?}");
        }
    }

    /// detection() is symmetric in the expected way: swapping detected
    /// and truth swaps precision and recall.
    #[test]
    fn detection_swap_symmetry(
        sel_a in prop::collection::vec(prop::bool::ANY, 20),
        sel_b in prop::collection::vec(prop::bool::ANY, 20),
    ) {
        let set = |sel: &[bool]| -> HashSet<ExtentPair> {
            sel.iter()
                .enumerate()
                .filter(|(_, &take)| take)
                .map(|(i, _)| pair(i as u64))
                .collect()
        };
        let a = set(&sel_a);
        let b = set(&sel_b);
        if !a.is_empty() && !b.is_empty() {
            let fwd = detection(&a, &b);
            let rev = detection(&b, &a);
            prop_assert!((fwd.recall - rev.precision).abs() < 1e-12);
            prop_assert!((fwd.precision - rev.recall).abs() < 1e-12);
            prop_assert_eq!(fwd.hits, rev.hits);
        }
    }
}
