//! Binned heat maps: the storage heat maps of Fig. 1 (request sequence ×
//! block number) and the pair-correlation plots of Figs. 7–8 (block ×
//! block). Rendered as CSV for plotting and as ASCII for the console.

use std::fmt::Write as _;

use rtdac_types::{ExtentPair, Trace};

/// A fixed-size 2-D histogram.
///
/// # Examples
///
/// ```
/// use rtdac_metrics::Heatmap;
///
/// let mut map = Heatmap::new(4, 4, 100.0, 100.0);
/// map.add(10.0, 10.0);
/// map.add(10.0, 12.0);
/// assert_eq!(map.max_count(), 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Heatmap {
    cols: usize,
    rows: usize,
    x_span: f64,
    y_span: f64,
    cells: Vec<u64>,
}

impl Heatmap {
    /// Creates an empty `cols × rows` map covering `[0, x_span) ×
    /// [0, y_span)`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or a span is not positive.
    pub fn new(cols: usize, rows: usize, x_span: f64, y_span: f64) -> Self {
        assert!(cols > 0 && rows > 0, "heatmap dimensions must be positive");
        assert!(
            x_span > 0.0 && y_span > 0.0,
            "heatmap spans must be positive"
        );
        Heatmap {
            cols,
            rows,
            x_span,
            y_span,
            cells: vec![0; cols * rows],
        }
    }

    /// Increments the cell containing `(x, y)`; out-of-range points clamp
    /// to the border cells.
    pub fn add(&mut self, x: f64, y: f64) {
        let col = ((x / self.x_span * self.cols as f64) as usize).min(self.cols - 1);
        let row = ((y / self.y_span * self.rows as f64) as usize).min(self.rows - 1);
        self.cells[row * self.cols + col] += 1;
    }

    /// Count in cell `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn cell(&self, col: usize, row: usize) -> u64 {
        assert!(
            col < self.cols && row < self.rows,
            "heatmap index out of bounds"
        );
        self.cells[row * self.cols + col]
    }

    /// Grid width in cells.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Grid height in cells.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The largest cell count.
    pub fn max_count(&self) -> u64 {
        self.cells.iter().copied().max().unwrap_or(0)
    }

    /// Number of non-empty cells.
    pub fn occupied_cells(&self) -> usize {
        self.cells.iter().filter(|&&c| c > 0).count()
    }

    /// Total points added.
    pub fn total(&self) -> u64 {
        self.cells.iter().sum()
    }

    /// Fig. 1 heat map: request sequence (x) × starting block (y).
    pub fn from_trace(trace: &Trace, cols: usize, rows: usize) -> Self {
        let n = trace.len().max(1) as f64;
        let max_block = trace.stats().max_block.max(1) as f64;
        let mut map = Heatmap::new(cols, rows, n, max_block);
        for (seq, req) in trace.iter().enumerate() {
            map.add(seq as f64, req.extent.start() as f64);
        }
        map
    }

    /// Figs. 7–8 correlation plot: for each extent pair, the blocks of
    /// one extent against the blocks of the other, mirrored across the
    /// diagonal exactly as the paper plots `(A, B)` and `(B, A)`.
    ///
    /// Plotting every block pair of a large extent pair is quadratic, so
    /// extents are subsampled to at most 32 blocks each — this affects
    /// only rendering density, not which regions light up.
    pub fn from_pairs<'a, I>(pairs: I, block_span: u64, cols: usize, rows: usize) -> Self
    where
        I: IntoIterator<Item = &'a ExtentPair>,
    {
        let span = block_span.max(1) as f64;
        let mut map = Heatmap::new(cols, rows, span, span);
        for pair in pairs {
            for a in subsample(pair.first().start(), pair.first().end()) {
                for b in subsample(pair.second().start(), pair.second().end()) {
                    map.add(a as f64, b as f64);
                    map.add(b as f64, a as f64);
                }
            }
        }
        map
    }

    /// Renders the map as CSV (`col,row,count` for non-empty cells).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("col,row,count\n");
        for row in 0..self.rows {
            for col in 0..self.cols {
                let count = self.cell(col, row);
                if count > 0 {
                    writeln!(out, "{col},{row},{count}").expect("writing to String");
                }
            }
        }
        out
    }

    /// Renders the map as ASCII art, highest rows first (origin at the
    /// bottom-left like the paper's plots), with density characters.
    pub fn to_ascii(&self) -> String {
        const SHADES: &[u8] = b" .:-=+*#%@";
        let max = self.max_count().max(1) as f64;
        let mut out = String::with_capacity((self.cols + 1) * self.rows);
        for row in (0..self.rows).rev() {
            for col in 0..self.cols {
                let count = self.cell(col, row);
                let shade = if count == 0 {
                    0
                } else {
                    // Log scale so sparse structure stays visible.
                    let f = (count as f64).ln_1p() / max.ln_1p();
                    1 + (f * (SHADES.len() - 2) as f64).round() as usize
                };
                out.push(SHADES[shade.min(SHADES.len() - 1)] as char);
            }
            out.push('\n');
        }
        out
    }

    /// Structural similarity to another map of the same dimensions: the
    /// fraction of this map's occupied cells also occupied in `other`.
    /// Used to quantify the paper's "visually recognizably similar"
    /// claim for Figs. 7–8.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn occupancy_overlap(&self, other: &Heatmap) -> f64 {
        assert_eq!(self.cols, other.cols, "heatmap dimensions must match");
        assert_eq!(self.rows, other.rows, "heatmap dimensions must match");
        let occupied = self.occupied_cells();
        if occupied == 0 {
            return 1.0;
        }
        let both = self
            .cells
            .iter()
            .zip(&other.cells)
            .filter(|(&a, &b)| a > 0 && b > 0)
            .count();
        both as f64 / occupied as f64
    }
}

/// At most 32 evenly spaced blocks from `[start, end)`.
fn subsample(start: u64, end: u64) -> impl Iterator<Item = u64> {
    let len = end - start;
    let step = len.div_ceil(32).max(1);
    (start..end).step_by(step as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdac_types::{Extent, IoOp, IoRequest, Timestamp};

    #[test]
    fn add_bins_points() {
        let mut m = Heatmap::new(10, 10, 100.0, 100.0);
        m.add(5.0, 5.0); // cell (0, 0)
        m.add(95.0, 95.0); // cell (9, 9)
        m.add(150.0, 150.0); // clamps to (9, 9)
        assert_eq!(m.cell(0, 0), 1);
        assert_eq!(m.cell(9, 9), 2);
        assert_eq!(m.total(), 3);
        assert_eq!(m.occupied_cells(), 2);
    }

    #[test]
    fn from_trace_covers_sequence_and_blocks() {
        let mut trace = Trace::new("t");
        for i in 0..100u64 {
            trace.push(IoRequest::new(
                Timestamp::from_micros(i),
                1,
                IoOp::Read,
                Extent::new(i * 1000, 8).unwrap(),
            ));
        }
        let m = Heatmap::from_trace(&trace, 10, 10);
        assert_eq!(m.total(), 100);
        // A diagonal access pattern occupies the diagonal cells.
        for d in 0..10 {
            assert!(m.cell(d, d) > 0, "diagonal cell {d}");
        }
    }

    #[test]
    fn from_pairs_is_symmetric() {
        let a = Extent::new(100, 2).unwrap();
        let b = Extent::new(700, 2).unwrap();
        let pair = ExtentPair::new(a, b).unwrap();
        let m = Heatmap::from_pairs([&pair], 1000, 10, 10);
        for row in 0..10 {
            for col in 0..10 {
                assert_eq!(m.cell(col, row), m.cell(row, col));
            }
        }
        assert!(m.cell(1, 7) > 0);
        assert!(m.cell(7, 1) > 0);
    }

    #[test]
    fn subsample_caps_block_count() {
        assert_eq!(subsample(0, 10).count(), 10);
        assert!(subsample(0, 100_000).count() <= 33);
    }

    #[test]
    fn ascii_render_shape() {
        let mut m = Heatmap::new(4, 3, 4.0, 3.0);
        m.add(0.5, 0.5);
        let art = m.to_ascii();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.len() == 4));
        // Origin bottom-left: the point appears on the last line.
        assert_ne!(lines[2].chars().next().unwrap(), ' ');
    }

    #[test]
    fn csv_lists_nonempty_cells() {
        let mut m = Heatmap::new(2, 2, 2.0, 2.0);
        m.add(0.5, 1.5);
        let csv = m.to_csv();
        assert_eq!(csv, "col,row,count\n0,1,1\n");
    }

    #[test]
    fn overlap_of_identical_maps_is_one() {
        let mut m = Heatmap::new(4, 4, 4.0, 4.0);
        m.add(1.0, 1.0);
        m.add(2.0, 3.0);
        assert_eq!(m.occupancy_overlap(&m.clone()), 1.0);
    }

    #[test]
    fn overlap_of_disjoint_maps_is_zero() {
        let mut a = Heatmap::new(4, 4, 4.0, 4.0);
        a.add(0.0, 0.0);
        let mut b = Heatmap::new(4, 4, 4.0, 4.0);
        b.add(3.0, 3.0);
        assert_eq!(a.occupancy_overlap(&b), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn overlap_rejects_mismatched_dims() {
        let a = Heatmap::new(4, 4, 4.0, 4.0);
        let b = Heatmap::new(5, 4, 4.0, 4.0);
        a.occupancy_overlap(&b);
    }
}
