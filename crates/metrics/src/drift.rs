//! Concept-drift analysis (Fig. 10): how much of each workload phase's
//! correlation pattern the bounded synopsis remembers at a point in time.

use std::collections::HashSet;

use rtdac_synopsis::Snapshot;
use rtdac_types::ExtentPair;

/// How strongly a synopsis snapshot reflects one workload phase's
/// correlations.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PhaseAffinity {
    /// Fraction of the phase's pairs present in the snapshot.
    pub phase_coverage: f64,
    /// Fraction of the snapshot's pairs that belong to the phase.
    pub snapshot_share: f64,
    /// Jaccard similarity of the two sets.
    pub jaccard: f64,
}

/// Measures how much of `phase_pairs` (the pairs a workload phase
/// produces, from the offline oracle) a snapshot retains.
///
/// Fig. 10's narrative — "the pattern of wdev forming at the beginning
/// is replaced by the pattern of hm in the middle, which begins to fade
/// after more wdev requests" — is exactly a statement about how these
/// affinities evolve across snapshots.
///
/// # Examples
///
/// ```
/// use rtdac_metrics::phase_affinity;
/// use rtdac_synopsis::{AnalyzerConfig, OnlineAnalyzer};
/// use rtdac_types::{Extent, Timestamp, Transaction};
/// use std::collections::HashSet;
///
/// let mut analyzer = OnlineAnalyzer::new(AnalyzerConfig::with_capacity(64));
/// let a = Extent::new(1, 1)?;
/// let b = Extent::new(2, 1)?;
/// analyzer.process(&Transaction::from_extents(Timestamp::ZERO, [a, b]));
///
/// let phase: HashSet<_> = analyzer.snapshot().pair_set();
/// let affinity = phase_affinity(&analyzer.snapshot(), &phase);
/// assert_eq!(affinity.phase_coverage, 1.0);
/// # Ok::<(), rtdac_types::ExtentError>(())
/// ```
pub fn phase_affinity(snapshot: &Snapshot, phase_pairs: &HashSet<ExtentPair>) -> PhaseAffinity {
    let stored = snapshot.pair_set();
    let common = stored.intersection(phase_pairs).count();
    let union = stored.union(phase_pairs).count();
    PhaseAffinity {
        phase_coverage: if phase_pairs.is_empty() {
            1.0
        } else {
            common as f64 / phase_pairs.len() as f64
        },
        snapshot_share: if stored.is_empty() {
            0.0
        } else {
            common as f64 / stored.len() as f64
        },
        jaccard: if union == 0 {
            1.0
        } else {
            common as f64 / union as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdac_synopsis::Tier;
    use rtdac_types::Extent;

    fn pair(i: u64) -> ExtentPair {
        ExtentPair::new(
            Extent::new(i * 10, 1).unwrap(),
            Extent::new(i * 10 + 1, 1).unwrap(),
        )
        .unwrap()
    }

    fn snapshot_of(pairs: &[ExtentPair]) -> Snapshot {
        Snapshot {
            pairs: pairs.iter().map(|&p| (p, 1, Tier::T1)).collect(),
            items: Vec::new(),
        }
    }

    #[test]
    fn full_overlap() {
        let pairs = [pair(1), pair(2)];
        let snap = snapshot_of(&pairs);
        let phase: HashSet<ExtentPair> = pairs.into_iter().collect();
        let a = phase_affinity(&snap, &phase);
        assert_eq!(a.phase_coverage, 1.0);
        assert_eq!(a.snapshot_share, 1.0);
        assert_eq!(a.jaccard, 1.0);
    }

    #[test]
    fn partial_overlap() {
        let snap = snapshot_of(&[pair(1), pair(2), pair(3), pair(4)]);
        let phase: HashSet<ExtentPair> = [pair(3), pair(4), pair(5), pair(6)].into_iter().collect();
        let a = phase_affinity(&snap, &phase);
        assert_eq!(a.phase_coverage, 0.5);
        assert_eq!(a.snapshot_share, 0.5);
        assert!((a.jaccard - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        let empty_snap = snapshot_of(&[]);
        let phase: HashSet<ExtentPair> = [pair(1)].into_iter().collect();
        let a = phase_affinity(&empty_snap, &phase);
        assert_eq!(a.phase_coverage, 0.0);
        assert_eq!(a.snapshot_share, 0.0);

        let b = phase_affinity(&empty_snap, &HashSet::new());
        assert_eq!(b.phase_coverage, 1.0);
        assert_eq!(b.jaccard, 1.0);
    }
}
