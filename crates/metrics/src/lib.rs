//! Evaluation metrics for `rtdac`: everything needed to regenerate the
//! paper's figures and quantify online-vs-offline accuracy.
//!
//! * [`FrequencyCdf`] — the Fig. 5 cumulative distributions of extent
//!   correlation frequency (unique and weighted);
//! * [`OptimalCurve`] — the Fig. 6 table-size-vs-optimal-coverage curve;
//! * [`representability`] — the Fig. 9 captured-versus-optimal metric;
//! * [`detection`] — precision/recall behind the ">90% detected"
//!   headline;
//! * [`Heatmap`] — the Fig. 1/7/8 storage and correlation heat maps;
//! * [`phase_affinity`] — the Fig. 10 concept-drift snapshot analysis.
//!
//! # Examples
//!
//! ```
//! use rtdac_metrics::FrequencyCdf;
//! // (the pair-frequency oracle typically comes from `rtdac-fim`)
//! # use std::collections::HashMap;
//! # use rtdac_types::{Extent, ExtentPair};
//! # let e = |s: u64| Extent::new(s, 1).unwrap();
//! # let p = ExtentPair::new(e(1), e(2)).unwrap();
//! let mut truth = HashMap::new();
//! truth.insert(p, 12u32);
//! let cdf = FrequencyCdf::from_counts(&truth);
//! assert_eq!(cdf.total_occurrences(), 12);
//! ```

mod accuracy;
mod cdf;
mod drift;
mod heatmap;

pub use accuracy::{detection, representability, Detection, OptimalCurve, Representability};
pub use cdf::{CdfPoint, FrequencyCdf};
pub use drift::{phase_affinity, PhaseAffinity};
pub use heatmap::Heatmap;
