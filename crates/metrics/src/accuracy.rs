//! Accuracy of the online synopsis against the offline oracle: the
//! optimal curve of Fig. 6, the representability metric of Fig. 9, and
//! plain detection precision/recall.

use std::collections::{HashMap, HashSet};
use std::hash::BuildHasher;

use rtdac_types::ExtentPair;

/// Pair frequencies sorted descending — the basis of the "optimal"
/// reference: for any table size `n`, no choice of `n` pairs can cover
/// more occurrences than the `n` most frequent (§IV-C1, Fig. 6).
#[derive(Clone, Debug, PartialEq)]
pub struct OptimalCurve {
    sorted_frequencies: Vec<u32>,
    prefix_sums: Vec<u64>,
    total: u64,
}

impl OptimalCurve {
    /// Builds the curve from the offline pair-frequency oracle (generic
    /// over the hasher: the oracle uses FxHash, tests use the default).
    pub fn from_counts<S: BuildHasher>(counts: &HashMap<ExtentPair, u32, S>) -> Self {
        let mut sorted: Vec<u32> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let mut prefix_sums = Vec::with_capacity(sorted.len());
        let mut acc = 0u64;
        for &f in &sorted {
            acc += u64::from(f);
            prefix_sums.push(acc);
        }
        OptimalCurve {
            sorted_frequencies: sorted,
            prefix_sums,
            total: acc,
        }
    }

    /// Number of distinct pairs in the underlying data.
    pub fn unique_pairs(&self) -> usize {
        self.sorted_frequencies.len()
    }

    /// Total occurrences across all pairs.
    pub fn total_occurrences(&self) -> u64 {
        self.total
    }

    /// The best possible fraction of total occurrences representable by
    /// any `n` pairs — the Fig. 6 vertical axis.
    ///
    /// ```
    /// use rtdac_metrics::OptimalCurve;
    /// # use std::collections::HashMap;
    /// # use rtdac_types::{Extent, ExtentPair};
    /// # let e = |s: u64| Extent::new(s, 1).unwrap();
    /// # let mut counts = HashMap::new();
    /// # counts.insert(ExtentPair::new(e(1), e(2)).unwrap(), 6);
    /// # counts.insert(ExtentPair::new(e(3), e(4)).unwrap(), 3);
    /// # counts.insert(ExtentPair::new(e(5), e(6)).unwrap(), 1);
    /// let curve = OptimalCurve::from_counts(&counts);
    /// assert_eq!(curve.optimal_fraction(1), 0.6);
    /// assert_eq!(curve.optimal_fraction(2), 0.9);
    /// assert_eq!(curve.optimal_fraction(100), 1.0);
    /// ```
    pub fn optimal_fraction(&self, n: usize) -> f64 {
        if self.total == 0 || n == 0 {
            return 0.0;
        }
        let idx = n.min(self.prefix_sums.len());
        self.prefix_sums[idx - 1] as f64 / self.total as f64
    }

    /// The smallest table size whose optimal fraction reaches `fraction`
    /// — the "minimum table size necessary to represent any given
    /// fraction of total frequency" reading of Fig. 6. Returns `None` if
    /// even all pairs fall short (only possible for `fraction > 1`).
    pub fn min_size_for_fraction(&self, fraction: f64) -> Option<usize> {
        if self.total == 0 {
            return (fraction <= 0.0).then_some(0);
        }
        let needed = (fraction * self.total as f64).ceil() as u64;
        if needed == 0 {
            return Some(0); // zero coverage needs zero pairs
        }
        match self.prefix_sums.partition_point(|&s| s < needed) {
            idx if idx < self.prefix_sums.len() => Some(idx + 1),
            _ if fraction <= 1.0 => Some(self.prefix_sums.len()),
            _ => None,
        }
    }
}

/// The Fig. 9 metric for one table size: how much of the workload's pair
/// occurrences the synopsis captured, relative to the best any
/// equally-sized table could do.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Representability {
    /// Sum of true frequencies of the pairs the synopsis holds, over the
    /// total occurrences.
    pub captured_fraction: f64,
    /// The optimal fraction for the same number of entries.
    pub optimal_fraction: f64,
    /// `captured / optimal` — the Fig. 9 vertical axis ("percentage
    /// captured relative to the optimal percentage possible for the same
    /// number of entries").
    pub versus_optimal: f64,
    /// Number of pairs the synopsis held.
    pub stored_pairs: usize,
}

/// Computes Fig. 9's representability for a set of stored pairs against
/// the offline oracle.
pub fn representability<S1: BuildHasher, S2: BuildHasher>(
    stored: &HashSet<ExtentPair, S1>,
    truth: &HashMap<ExtentPair, u32, S2>,
) -> Representability {
    let curve = OptimalCurve::from_counts(truth);
    let captured: u64 = stored
        .iter()
        .filter_map(|p| truth.get(p))
        .map(|&c| u64::from(c))
        .sum();
    let captured_fraction = if curve.total_occurrences() == 0 {
        0.0
    } else {
        captured as f64 / curve.total_occurrences() as f64
    };
    let optimal_fraction = curve.optimal_fraction(stored.len());
    Representability {
        captured_fraction,
        optimal_fraction,
        versus_optimal: if optimal_fraction == 0.0 {
            0.0
        } else {
            captured_fraction / optimal_fraction
        },
        stored_pairs: stored.len(),
    }
}

/// Precision/recall of a detected pair set against a ground-truth set —
/// the paper's headline ">90% of data access correlations" is a recall
/// statement.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Detection {
    /// Fraction of ground-truth pairs that were detected.
    pub recall: f64,
    /// Fraction of detected pairs that are in the ground truth.
    pub precision: f64,
    /// True positives.
    pub hits: usize,
    /// Ground-truth size.
    pub truth_size: usize,
    /// Detected-set size.
    pub detected_size: usize,
}

/// Compares a detected pair set against ground truth.
///
/// ```
/// use rtdac_metrics::detection;
/// use rtdac_types::{Extent, ExtentPair};
/// use std::collections::HashSet;
///
/// let e = |s: u64| Extent::new(s, 1).unwrap();
/// let p = |a: u64, b: u64| ExtentPair::new(e(a), e(b)).unwrap();
/// let truth: HashSet<_> = [p(1, 2), p(3, 4)].into_iter().collect();
/// let detected: HashSet<_> = [p(1, 2), p(5, 6)].into_iter().collect();
/// let d = detection(&detected, &truth);
/// assert_eq!(d.recall, 0.5);
/// assert_eq!(d.precision, 0.5);
/// ```
pub fn detection<S1: BuildHasher, S2: BuildHasher>(
    detected: &HashSet<ExtentPair, S1>,
    truth: &HashSet<ExtentPair, S2>,
) -> Detection {
    let hits = detected.iter().filter(|p| truth.contains(*p)).count();
    Detection {
        recall: if truth.is_empty() {
            1.0
        } else {
            hits as f64 / truth.len() as f64
        },
        precision: if detected.is_empty() {
            1.0
        } else {
            hits as f64 / detected.len() as f64
        },
        hits,
        truth_size: truth.len(),
        detected_size: detected.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdac_types::Extent;

    fn pair(i: u64) -> ExtentPair {
        ExtentPair::new(
            Extent::new(i * 10, 1).unwrap(),
            Extent::new(i * 10 + 5, 1).unwrap(),
        )
        .unwrap()
    }

    fn counts(freqs: &[u32]) -> HashMap<ExtentPair, u32> {
        freqs
            .iter()
            .enumerate()
            .map(|(i, &f)| (pair(i as u64), f))
            .collect()
    }

    #[test]
    fn optimal_curve_is_monotone_and_concave() {
        let curve = OptimalCurve::from_counts(&counts(&[9, 1, 5, 3, 7]));
        let fractions: Vec<f64> = (1..=5).map(|n| curve.optimal_fraction(n)).collect();
        assert!(fractions.windows(2).all(|w| w[0] <= w[1]));
        // Marginal gains shrink: frequencies are sorted descending.
        let gains: Vec<f64> = std::iter::once(fractions[0])
            .chain(fractions.windows(2).map(|w| w[1] - w[0]))
            .collect();
        assert!(gains.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        assert_eq!(curve.optimal_fraction(5), 1.0);
    }

    #[test]
    fn min_size_inverts_optimal_fraction() {
        let curve = OptimalCurve::from_counts(&counts(&[6, 3, 1]));
        assert_eq!(curve.min_size_for_fraction(0.5), Some(1)); // 6/10
        assert_eq!(curve.min_size_for_fraction(0.6), Some(1));
        assert_eq!(curve.min_size_for_fraction(0.61), Some(2));
        assert_eq!(curve.min_size_for_fraction(0.9), Some(2));
        assert_eq!(curve.min_size_for_fraction(1.0), Some(3));
    }

    #[test]
    fn representability_of_perfect_top_n() {
        let truth = counts(&[10, 5, 1]);
        // Storing exactly the top-2 pairs: captured == optimal.
        let stored: HashSet<ExtentPair> = [pair(0), pair(1)].into_iter().collect();
        let r = representability(&stored, &truth);
        assert!((r.captured_fraction - 15.0 / 16.0).abs() < 1e-12);
        assert!((r.versus_optimal - 1.0).abs() < 1e-12);
    }

    #[test]
    fn representability_of_poor_choice() {
        let truth = counts(&[10, 5, 1]);
        // Storing only the weakest pair.
        let stored: HashSet<ExtentPair> = [pair(2)].into_iter().collect();
        let r = representability(&stored, &truth);
        assert!((r.captured_fraction - 1.0 / 16.0).abs() < 1e-12);
        assert!((r.optimal_fraction - 10.0 / 16.0).abs() < 1e-12);
        assert!(r.versus_optimal < 0.11);
    }

    #[test]
    fn representability_ignores_pairs_outside_truth() {
        let truth = counts(&[4]);
        let stored: HashSet<ExtentPair> = [pair(0), pair(99)].into_iter().collect();
        let r = representability(&stored, &truth);
        assert_eq!(r.captured_fraction, 1.0);
        assert_eq!(r.stored_pairs, 2);
    }

    #[test]
    fn detection_edge_cases() {
        let empty = HashSet::new();
        let some: HashSet<ExtentPair> = [pair(1)].into_iter().collect();
        assert_eq!(detection(&empty, &empty).recall, 1.0);
        assert_eq!(detection(&empty, &some).recall, 0.0);
        assert_eq!(detection(&some, &empty).precision, 0.0);
        assert_eq!(detection(&some, &some).recall, 1.0);
        assert_eq!(detection(&some, &some).precision, 1.0);
    }

    #[test]
    fn empty_truth_curve() {
        let curve = OptimalCurve::from_counts(&HashMap::new());
        assert_eq!(curve.optimal_fraction(5), 0.0);
        assert_eq!(curve.unique_pairs(), 0);
    }
}
