//! Cumulative distributions of extent-correlation frequency — the data
//! behind Fig. 5 of the paper.

use std::collections::HashMap;
use std::hash::BuildHasher;

use rtdac_types::ExtentPair;

/// One point of the Fig. 5 CDF: at correlation frequency `frequency`,
/// the fraction of unique pairs with frequency ≤ it, and the fraction of
/// total occurrences they account for.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CdfPoint {
    /// Correlation frequency (the horizontal axis).
    pub frequency: u32,
    /// Fraction of *unique* extent pairs with frequency ≤ `frequency`
    /// (the solid line).
    pub unique_fraction: f64,
    /// Fraction of total pair occurrences carried by those pairs (the
    /// dashed line, "weighted by frequency").
    pub weighted_fraction: f64,
}

/// The cumulative distribution of pair frequencies.
///
/// # Examples
///
/// ```
/// use rtdac_metrics::FrequencyCdf;
/// use rtdac_types::{Extent, ExtentPair};
/// use std::collections::HashMap;
///
/// let e = |s: u64| Extent::new(s, 1).unwrap();
/// let mut counts = HashMap::new();
/// counts.insert(ExtentPair::new(e(1), e(2)).unwrap(), 1);
/// counts.insert(ExtentPair::new(e(3), e(4)).unwrap(), 1);
/// counts.insert(ExtentPair::new(e(5), e(6)).unwrap(), 1);
/// counts.insert(ExtentPair::new(e(7), e(8)).unwrap(), 9);
///
/// let cdf = FrequencyCdf::from_counts(&counts);
/// // 3 of 4 unique pairs occur once, but carry only 3/12 occurrences.
/// assert_eq!(cdf.unique_fraction_at(1), 0.75);
/// assert_eq!(cdf.weighted_fraction_at(1), 0.25);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FrequencyCdf {
    points: Vec<CdfPoint>,
    total_pairs: u64,
    total_occurrences: u64,
}

impl FrequencyCdf {
    /// Builds the CDF from a pair-frequency map (the offline oracle's
    /// output; generic over the hasher so FxHash maps flow in directly).
    pub fn from_counts<S: BuildHasher>(counts: &HashMap<ExtentPair, u32, S>) -> Self {
        let mut by_frequency: HashMap<u32, u64> = HashMap::new();
        for &count in counts.values() {
            *by_frequency.entry(count).or_insert(0) += 1;
        }
        let mut frequencies: Vec<u32> = by_frequency.keys().copied().collect();
        frequencies.sort_unstable();

        let total_pairs = counts.len() as u64;
        let total_occurrences: u64 = counts.values().map(|&c| u64::from(c)).sum();

        let mut cum_pairs = 0u64;
        let mut cum_occurrences = 0u64;
        let points = frequencies
            .into_iter()
            .map(|frequency| {
                let pairs_here = by_frequency[&frequency];
                cum_pairs += pairs_here;
                cum_occurrences += pairs_here * u64::from(frequency);
                CdfPoint {
                    frequency,
                    unique_fraction: cum_pairs as f64 / total_pairs.max(1) as f64,
                    weighted_fraction: cum_occurrences as f64 / total_occurrences.max(1) as f64,
                }
            })
            .collect();

        FrequencyCdf {
            points,
            total_pairs,
            total_occurrences,
        }
    }

    /// The CDF's points in ascending frequency order.
    pub fn points(&self) -> &[CdfPoint] {
        &self.points
    }

    /// Number of unique pairs.
    pub fn total_pairs(&self) -> u64 {
        self.total_pairs
    }

    /// Total pair occurrences (sum of all frequencies).
    pub fn total_occurrences(&self) -> u64 {
        self.total_occurrences
    }

    /// Fraction of unique pairs with frequency ≤ `frequency`.
    pub fn unique_fraction_at(&self, frequency: u32) -> f64 {
        self.fraction_at(frequency, |p| p.unique_fraction)
    }

    /// Fraction of total occurrences from pairs with frequency ≤
    /// `frequency`.
    pub fn weighted_fraction_at(&self, frequency: u32) -> f64 {
        self.fraction_at(frequency, |p| p.weighted_fraction)
    }

    fn fraction_at(&self, frequency: u32, pick: impl Fn(&CdfPoint) -> f64) -> f64 {
        match self.points.partition_point(|p| p.frequency <= frequency) {
            0 => 0.0,
            idx => pick(&self.points[idx - 1]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdac_types::Extent;

    fn counts(freqs: &[u32]) -> HashMap<ExtentPair, u32> {
        freqs
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                let a = Extent::new(i as u64 * 10, 1).unwrap();
                let b = Extent::new(i as u64 * 10 + 5, 1).unwrap();
                (ExtentPair::new(a, b).unwrap(), f)
            })
            .collect()
    }

    #[test]
    fn both_lines_reach_one() {
        let cdf = FrequencyCdf::from_counts(&counts(&[1, 1, 2, 5, 9]));
        let last = cdf.points().last().unwrap();
        assert!((last.unique_fraction - 1.0).abs() < 1e-12);
        assert!((last.weighted_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unique_rises_faster_than_weighted_for_zipf_like_data() {
        // Many support-1 pairs + a few heavy pairs: the solid line leads
        // the dashed line, as in all five Fig. 5 panels.
        let mut freqs = vec![1u32; 75];
        freqs.extend([10, 20, 50, 100]);
        let cdf = FrequencyCdf::from_counts(&counts(&freqs));
        assert!(cdf.unique_fraction_at(1) > 0.9);
        assert!(cdf.weighted_fraction_at(1) < 0.4);
    }

    #[test]
    fn fraction_below_first_point_is_zero() {
        let cdf = FrequencyCdf::from_counts(&counts(&[5, 7]));
        assert_eq!(cdf.unique_fraction_at(4), 0.0);
        assert_eq!(cdf.unique_fraction_at(5), 0.5);
    }

    #[test]
    fn empty_counts_yield_empty_cdf() {
        let cdf = FrequencyCdf::from_counts(&HashMap::new());
        assert!(cdf.points().is_empty());
        assert_eq!(cdf.total_pairs(), 0);
        assert_eq!(cdf.unique_fraction_at(10), 0.0);
    }

    #[test]
    fn totals_are_consistent() {
        let cdf = FrequencyCdf::from_counts(&counts(&[2, 3, 4]));
        assert_eq!(cdf.total_pairs(), 3);
        assert_eq!(cdf.total_occurrences(), 9);
    }
}
