//! Property tests for the FTL's global invariants under arbitrary
//! write/trim workloads and stream assignments.

use proptest::prelude::*;
use rtdac_ssdsim::{Ftl, FtlConfig};

#[derive(Clone, Debug)]
enum Op {
    Write { lpn: u64, stream: usize },
    Trim { lpn: u64 },
}

fn ops_strategy(lpn_space: u64, streams: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            6 => (0..lpn_space, 0..streams).prop_map(|(lpn, stream)| Op::Write { lpn, stream }),
            1 => (0..lpn_space).prop_map(|lpn| Op::Trim { lpn }),
        ],
        0..800,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// After any workload: every written-and-not-trimmed LPN is mapped,
    /// every trimmed LPN is not, and live page accounting is exact.
    #[test]
    fn mapping_is_exact(ops in ops_strategy(96, 2)) {
        // LPN space (96) is well under capacity (16 EUs × 16 pages = 256
        // minus reserves), so the device never overfills.
        let config = FtlConfig {
            pages_per_eu: 16,
            erase_units: 16,
            streams: 2,
            gc_low_watermark: 3,
        };
        let mut ftl = Ftl::new(config);
        let mut live = std::collections::HashSet::new();
        for op in ops {
            match op {
                Op::Write { lpn, stream } => {
                    ftl.write(lpn, stream);
                    live.insert(lpn);
                }
                Op::Trim { lpn } => {
                    ftl.trim(lpn);
                    live.remove(&lpn);
                }
            }
            prop_assert_eq!(ftl.live_pages(), live.len());
        }
        for lpn in 0..96u64 {
            prop_assert_eq!(ftl.is_mapped(lpn), live.contains(&lpn), "lpn {}", lpn);
        }
    }

    /// Accounting identities: device writes = host writes + relocations;
    /// WAF >= 1; GC only runs when it can make progress.
    #[test]
    fn accounting_identities(ops in ops_strategy(64, 2)) {
        let config = FtlConfig {
            pages_per_eu: 8,
            erase_units: 16,
            streams: 2,
            gc_low_watermark: 3,
        };
        let mut ftl = Ftl::new(config);
        let mut writes = 0u64;
        for op in ops {
            if let Op::Write { lpn, stream } = op {
                ftl.write(lpn, stream);
                writes += 1;
            }
        }
        let stats = ftl.stats();
        prop_assert_eq!(stats.host_writes, writes);
        prop_assert_eq!(stats.device_writes, stats.host_writes + stats.relocations);
        prop_assert!(stats.waf() >= 1.0);
        prop_assert!(stats.erases >= stats.gc_runs);
    }

    /// Stream choice never affects correctness (only WAF): the final
    /// mapping is identical whatever the stream pattern.
    #[test]
    fn streams_do_not_affect_mapping(
        lpns in prop::collection::vec(0u64..48, 1..300),
        salt in 0u64..8,
    ) {
        let config = FtlConfig {
            pages_per_eu: 8,
            erase_units: 16,
            streams: 4,
            gc_low_watermark: 4,
        };
        let mut a = Ftl::new(config);
        let mut b = Ftl::new(config);
        for (i, &lpn) in lpns.iter().enumerate() {
            a.write(lpn, 0);
            b.write(lpn, ((i as u64 + salt) % 4) as usize);
        }
        prop_assert_eq!(a.live_pages(), b.live_pages());
        for lpn in 0..48u64 {
            prop_assert_eq!(a.is_mapped(lpn), b.is_mapped(lpn));
        }
    }
}
