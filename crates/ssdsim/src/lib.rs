//! SSD internals simulation for the paper's §V automatic-optimization
//! scenarios — the consumers of the correlations the core framework
//! detects.
//!
//! * [`Ftl`] — a page-mapped flash translation layer with erase units,
//!   greedy garbage collection, multi-stream append points and
//!   write-amplification (WAF) accounting;
//! * [`StreamAssigner`] policies, including [`CorrelationStreams`] which
//!   implements the paper's death-time heuristic (correlated writes →
//!   same stream → same erase unit → cheap GC);
//! * [`ParallelUnitModel`] and [`Placement`] policies for open-channel
//!   SSDs, including [`CorrelationPlacement`] (correlated reads →
//!   different parallel units → parallel service).
//!
//! # Examples
//!
//! Correlation-informed stream assignment reducing GC work:
//!
//! ```
//! use rtdac_ssdsim::{CorrelationStreams, Ftl, FtlConfig, StreamAssigner};
//! use rtdac_types::{Extent, ExtentPair};
//!
//! let a = Extent::new(0, 8)?;
//! let b = Extent::new(512, 8)?;
//! let pair = ExtentPair::new(a, b).unwrap();
//! let mut assigner = CorrelationStreams::from_pairs([&pair], 2);
//! let mut ftl = Ftl::new(FtlConfig::small().streams(2));
//! for block in a.blocks().chain(b.blocks()) {
//!     let stream = assigner.assign(block);
//!     ftl.write(block, stream);
//! }
//! assert_eq!(ftl.stats().host_writes, 16);
//! # Ok::<(), rtdac_types::ExtentError>(())
//! ```

mod ftl;
mod parallel;
mod stream;

pub use ftl::{Ftl, FtlConfig, FtlStats, Lpn, StreamId};
pub use parallel::{CorrelationPlacement, ParallelUnitModel, Placement, StripingPlacement};
pub use stream::{CorrelationStreams, HashStream, SingleStream, StreamAssigner};
