//! Stream assignment policies for multi-stream SSDs (§V-1).
//!
//! The paper's death-time heuristic: "if two or more data chunks were
//! frequently written together in the past, then there is a high chance
//! that their death times will be similar" — so correlated writes should
//! share a stream (and hence an erase unit).

use std::collections::HashMap;

use rtdac_types::{Extent, ExtentPair};

use crate::ftl::{Lpn, StreamId};

/// Decides which write stream a logical page goes to.
pub trait StreamAssigner {
    /// Stream for a page write.
    fn assign(&mut self, lpn: Lpn) -> StreamId;

    /// Short human-readable policy name.
    fn name(&self) -> &str;
}

/// Everything through one append point — the conventional log-structured
/// baseline whose GC behaviour multi-stream placement improves on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SingleStream;

impl StreamAssigner for SingleStream {
    fn assign(&mut self, _lpn: Lpn) -> StreamId {
        0
    }

    fn name(&self) -> &str {
        "single-stream"
    }
}

/// Spreads pages over streams by address hash — separates data but
/// blindly with respect to death times.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HashStream {
    streams: usize,
}

impl HashStream {
    /// Creates a hash assigner over `streams` streams.
    ///
    /// # Panics
    ///
    /// Panics if `streams == 0`.
    pub fn new(streams: usize) -> Self {
        assert!(streams > 0, "need at least one stream");
        HashStream { streams }
    }
}

impl StreamAssigner for HashStream {
    fn assign(&mut self, lpn: Lpn) -> StreamId {
        // Fibonacci hashing spreads sequential LPNs.
        ((lpn.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32) as usize % self.streams
    }

    fn name(&self) -> &str {
        "hash-stream"
    }
}

/// The paper's policy: pages of extents that are frequently *written
/// together* share a stream, so their (predicted-similar) death times
/// land in the same erase units.
///
/// Built from the online analyzer's frequent write-correlations: pairs
/// are merged into clusters (union-find over shared extents), each
/// cluster maps to a stream, and unclustered pages fall back to a
/// default stream.
///
/// # Examples
///
/// ```
/// use rtdac_ssdsim::{CorrelationStreams, StreamAssigner};
/// use rtdac_types::{Extent, ExtentPair};
///
/// let a = Extent::new(0, 8)?;
/// let b = Extent::new(100, 8)?;
/// let pair = ExtentPair::new(a, b).unwrap();
/// let mut assigner = CorrelationStreams::from_pairs([&pair], 4);
/// // Pages of correlated extents share a stream.
/// assert_eq!(assigner.assign(0), assigner.assign(100));
/// # Ok::<(), rtdac_types::ExtentError>(())
/// ```
#[derive(Clone, Debug)]
pub struct CorrelationStreams {
    /// block → stream (block granularity mirrors the analyzer's extents).
    by_block: HashMap<u64, StreamId>,
    streams: usize,
    clusters: usize,
}

impl CorrelationStreams {
    /// Builds the mapping from frequent write-correlated extent pairs.
    /// Streams `1..streams` host the clusters (round-robin when clusters
    /// outnumber streams); stream 0 is the fallback for uncorrelated
    /// data, matching the FTL's use of stream 0 for GC relocation.
    ///
    /// # Panics
    ///
    /// Panics if `streams < 2` (one stream cannot separate anything).
    pub fn from_pairs<'a, I>(pairs: I, streams: usize) -> Self
    where
        I: IntoIterator<Item = &'a ExtentPair>,
    {
        assert!(
            streams >= 2,
            "correlation placement needs at least two streams"
        );

        // Union-find over extents.
        let mut parent: Vec<usize> = Vec::new();
        let mut index: HashMap<Extent, usize> = HashMap::new();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut id_of = |e: Extent, parent: &mut Vec<usize>| -> usize {
            *index.entry(e).or_insert_with(|| {
                parent.push(parent.len());
                parent.len() - 1
            })
        };
        let mut extents: Vec<Extent> = Vec::new();
        for pair in pairs {
            let a = id_of(pair.first(), &mut parent);
            if a == extents.len() {
                extents.push(pair.first());
            }
            let b = id_of(pair.second(), &mut parent);
            if b == extents.len() {
                extents.push(pair.second());
            }
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        }

        // Number the clusters and assign streams round-robin over 1..n.
        let mut cluster_of_root: HashMap<usize, usize> = HashMap::new();
        let mut by_block = HashMap::new();
        for (i, extent) in extents.iter().enumerate() {
            let root = find(&mut parent, i);
            let next = cluster_of_root.len();
            let cluster = *cluster_of_root.entry(root).or_insert(next);
            let stream = 1 + cluster % (streams - 1);
            for block in extent.blocks() {
                by_block.insert(block, stream);
            }
        }

        CorrelationStreams {
            by_block,
            streams,
            clusters: cluster_of_root.len(),
        }
    }

    /// Number of correlation clusters discovered.
    pub fn clusters(&self) -> usize {
        self.clusters
    }

    /// Number of streams in use.
    pub fn streams(&self) -> usize {
        self.streams
    }
}

impl StreamAssigner for CorrelationStreams {
    fn assign(&mut self, lpn: Lpn) -> StreamId {
        self.by_block.get(&lpn).copied().unwrap_or(0)
    }

    fn name(&self) -> &str {
        "correlation-streams"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(start: u64, len: u32) -> Extent {
        Extent::new(start, len).unwrap()
    }

    fn pair(a: Extent, b: Extent) -> ExtentPair {
        ExtentPair::new(a, b).unwrap()
    }

    #[test]
    fn single_stream_is_constant() {
        let mut s = SingleStream;
        assert_eq!(s.assign(0), 0);
        assert_eq!(s.assign(u64::MAX), 0);
    }

    #[test]
    fn hash_stream_in_range_and_spread() {
        let mut s = HashStream::new(4);
        let mut seen = [false; 4];
        for lpn in 0..1000u64 {
            let id = s.assign(lpn);
            assert!(id < 4);
            seen[id] = true;
        }
        assert!(seen.iter().all(|&s| s), "all streams used: {seen:?}");
    }

    #[test]
    fn correlated_extents_share_a_stream() {
        let pairs = [pair(e(0, 4), e(100, 4)), pair(e(100, 4), e(200, 4))];
        let mut s = CorrelationStreams::from_pairs(pairs.iter(), 4);
        // Transitive cluster {0.., 100.., 200..}: one cluster.
        assert_eq!(s.clusters(), 1);
        let stream = s.assign(0);
        assert!(stream >= 1);
        for block in [1, 100, 103, 200] {
            assert_eq!(s.assign(block), stream);
        }
    }

    #[test]
    fn distinct_clusters_get_distinct_streams() {
        let pairs = [pair(e(0, 1), e(10, 1)), pair(e(1000, 1), e(1010, 1))];
        let mut s = CorrelationStreams::from_pairs(pairs.iter(), 4);
        assert_eq!(s.clusters(), 2);
        assert_ne!(s.assign(0), s.assign(1000));
    }

    #[test]
    fn uncorrelated_blocks_fall_back_to_stream_zero() {
        let pairs = [pair(e(0, 1), e(10, 1))];
        let mut s = CorrelationStreams::from_pairs(pairs.iter(), 4);
        assert_eq!(s.assign(999_999), 0);
    }

    #[test]
    fn clusters_wrap_round_robin() {
        // 5 clusters over 3 streams: streams 1..=2 each reused.
        let pairs: Vec<ExtentPair> = (0..5u64)
            .map(|i| pair(e(i * 1000, 1), e(i * 1000 + 10, 1)))
            .collect();
        let mut s = CorrelationStreams::from_pairs(pairs.iter(), 3);
        assert_eq!(s.clusters(), 5);
        for i in 0..5u64 {
            let id = s.assign(i * 1000);
            assert!(id == 1 || id == 2);
        }
    }

    #[test]
    #[should_panic(expected = "at least two streams")]
    fn one_stream_panics() {
        let pairs: [ExtentPair; 0] = [];
        CorrelationStreams::from_pairs(pairs.iter(), 1);
    }
}
