//! Open-channel SSD parallel units and data placement (§V-2).
//!
//! The paper's parallel-I/O heuristic: "if two or more data chunks were
//! frequently read together in the past, then there is a high chance
//! that they will be read together in the near future" — so correlated
//! reads should live on *different* parallel units (PUs), where accesses
//! are fully independent, instead of colliding on one.

use std::collections::HashMap;
use std::time::Duration;

use rtdac_types::{Extent, ExtentPair};

/// Decides which parallel unit an extent's data lives on.
pub trait Placement {
    /// PU hosting the extent.
    fn unit_for(&self, extent: &Extent) -> usize;

    /// Short human-readable policy name.
    fn name(&self) -> &str;
}

/// RAID-0-like striping over PUs by block address — the conventional
/// initial SSD data placement, "only effective for large sequential
/// accesses" (§V-2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StripingPlacement {
    units: usize,
    stripe_blocks: u64,
}

impl StripingPlacement {
    /// Stripes of `stripe_blocks` blocks over `units` PUs.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0` or `stripe_blocks == 0`.
    pub fn new(units: usize, stripe_blocks: u64) -> Self {
        assert!(units > 0, "need at least one parallel unit");
        assert!(stripe_blocks > 0, "stripe size must be positive");
        StripingPlacement {
            units,
            stripe_blocks,
        }
    }
}

impl Placement for StripingPlacement {
    fn unit_for(&self, extent: &Extent) -> usize {
        ((extent.start() / self.stripe_blocks) % self.units as u64) as usize
    }

    fn name(&self) -> &str {
        "striping"
    }
}

/// Correlation-aware placement: extents that are frequently read
/// together are assigned to *different* PUs (greedy round-robin within
/// each correlation cluster), so a correlated batch read proceeds in
/// parallel. Unknown extents fall back to striping.
///
/// # Examples
///
/// ```
/// use rtdac_ssdsim::{CorrelationPlacement, Placement};
/// use rtdac_types::{Extent, ExtentPair};
///
/// let a = Extent::new(0, 8)?;
/// let b = Extent::new(64, 8)?;   // striping would co-locate these
/// let pair = ExtentPair::new(a, b).unwrap();
/// let placement = CorrelationPlacement::from_pairs([&pair], 4, 1024);
/// assert_ne!(placement.unit_for(&a), placement.unit_for(&b));
/// # Ok::<(), rtdac_types::ExtentError>(())
/// ```
#[derive(Clone, Debug)]
pub struct CorrelationPlacement {
    assigned: HashMap<Extent, usize>,
    fallback: StripingPlacement,
}

impl CorrelationPlacement {
    /// Builds placement from frequent read-correlated pairs over `units`
    /// PUs, with striping of `stripe_blocks` for uncorrelated data.
    ///
    /// Pairs should be given most-frequent first (as
    /// `OnlineAnalyzer::frequent_pairs` returns them): earlier pairs get
    /// first pick of conflict-free units.
    pub fn from_pairs<'a, I>(pairs: I, units: usize, stripe_blocks: u64) -> Self
    where
        I: IntoIterator<Item = &'a ExtentPair>,
    {
        let fallback = StripingPlacement::new(units, stripe_blocks);
        let mut assigned: HashMap<Extent, usize> = HashMap::new();
        // Greedy: walk pairs in priority order; place each unplaced
        // extent on the unit least used among its correlated partners.
        let mut partners: HashMap<Extent, Vec<Extent>> = HashMap::new();
        let mut order: Vec<Extent> = Vec::new();
        for pair in pairs {
            for (e, o) in [(pair.first(), pair.second()), (pair.second(), pair.first())] {
                if !partners.contains_key(&e) {
                    order.push(e);
                }
                partners.entry(e).or_default().push(o);
            }
        }
        for extent in order {
            let mut used = vec![0u32; units];
            for partner in &partners[&extent] {
                if let Some(&u) = assigned.get(partner) {
                    used[u] += 1;
                }
            }
            let best = (0..units).min_by_key(|&u| used[u]).expect("units > 0");
            assigned.insert(extent, best);
        }
        CorrelationPlacement { assigned, fallback }
    }

    /// Number of extents with an explicit (non-fallback) assignment.
    pub fn assigned_extents(&self) -> usize {
        self.assigned.len()
    }
}

impl Placement for CorrelationPlacement {
    fn unit_for(&self, extent: &Extent) -> usize {
        self.assigned
            .get(extent)
            .copied()
            .unwrap_or_else(|| self.fallback.unit_for(extent))
    }

    fn name(&self) -> &str {
        "correlation-placement"
    }
}

/// A bank of parallel units with a fixed per-request service time:
/// requests to different PUs proceed concurrently, requests to the same
/// PU serialize — the §V-2 performance model ("accesses are fully
/// independent of each other").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelUnitModel {
    units: usize,
    service: Duration,
}

impl ParallelUnitModel {
    /// A bank of `units` PUs, each serving one request in `service`.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0`.
    pub fn new(units: usize, service: Duration) -> Self {
        assert!(units > 0, "need at least one parallel unit");
        ParallelUnitModel { units, service }
    }

    /// Number of PUs.
    pub fn units(&self) -> usize {
        self.units
    }

    /// Latency of reading a batch of extents under a placement: the
    /// busiest PU's queue length times the service time.
    ///
    /// ```
    /// use rtdac_ssdsim::{ParallelUnitModel, StripingPlacement};
    /// use rtdac_types::Extent;
    /// use std::time::Duration;
    ///
    /// let bank = ParallelUnitModel::new(4, Duration::from_micros(50));
    /// let placement = StripingPlacement::new(4, 64);
    /// let batch = [Extent::new(0, 8)?, Extent::new(64, 8)?];
    /// // Different stripes → different PUs → fully parallel.
    /// assert_eq!(bank.batch_latency(&batch, &placement),
    ///            Duration::from_micros(50));
    /// # Ok::<(), rtdac_types::ExtentError>(())
    /// ```
    pub fn batch_latency<P: Placement + ?Sized>(
        &self,
        batch: &[Extent],
        placement: &P,
    ) -> Duration {
        let mut queue = vec![0u32; self.units];
        for extent in batch {
            let unit = placement.unit_for(extent);
            assert!(
                unit < self.units,
                "placement returned PU {unit} out of range"
            );
            queue[unit] += 1;
        }
        self.service * queue.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(start: u64, len: u32) -> Extent {
        Extent::new(start, len).unwrap()
    }

    #[test]
    fn striping_cycles_units() {
        let p = StripingPlacement::new(4, 100);
        assert_eq!(p.unit_for(&e(0, 8)), 0);
        assert_eq!(p.unit_for(&e(100, 8)), 1);
        assert_eq!(p.unit_for(&e(399, 1)), 3);
        assert_eq!(p.unit_for(&e(400, 8)), 0);
    }

    #[test]
    fn same_stripe_collides() {
        let p = StripingPlacement::new(4, 1000);
        // Two extents in the same stripe serialize on one PU.
        let bank = ParallelUnitModel::new(4, Duration::from_micros(50));
        let batch = [e(0, 8), e(500, 8)];
        assert_eq!(bank.batch_latency(&batch, &p), Duration::from_micros(100));
    }

    #[test]
    fn correlation_placement_separates_pairs() {
        let pair = ExtentPair::new(e(0, 8), e(8, 8)).unwrap();
        let p = CorrelationPlacement::from_pairs([&pair], 4, 1_000_000);
        assert_ne!(p.unit_for(&e(0, 8)), p.unit_for(&e(8, 8)));
        assert_eq!(p.assigned_extents(), 2);
    }

    #[test]
    fn correlation_placement_spreads_a_clique() {
        // Four extents all correlated with each other fit on 4 PUs with
        // no collision at all.
        let extents: Vec<Extent> = (0..4).map(|i| e(i * 8, 8)).collect();
        let mut pairs = Vec::new();
        for i in 0..4 {
            for j in (i + 1)..4 {
                pairs.push(ExtentPair::new(extents[i], extents[j]).unwrap());
            }
        }
        let p = CorrelationPlacement::from_pairs(pairs.iter(), 4, 1_000_000);
        let bank = ParallelUnitModel::new(4, Duration::from_micros(50));
        assert_eq!(bank.batch_latency(&extents, &p), Duration::from_micros(50));
    }

    #[test]
    fn unknown_extents_fall_back_to_striping() {
        let pair = ExtentPair::new(e(0, 8), e(8, 8)).unwrap();
        let p = CorrelationPlacement::from_pairs([&pair], 4, 100);
        let stranger = e(250, 8);
        assert_eq!(
            p.unit_for(&stranger),
            StripingPlacement::new(4, 100).unit_for(&stranger)
        );
    }

    #[test]
    fn empty_batch_costs_nothing() {
        let bank = ParallelUnitModel::new(2, Duration::from_micros(50));
        assert_eq!(
            bank.batch_latency(&[], &StripingPlacement::new(2, 10)),
            Duration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "at least one parallel unit")]
    fn zero_units_panics() {
        ParallelUnitModel::new(0, Duration::from_micros(1));
    }
}
