//! A page-mapped flash translation layer with erase units, greedy
//! garbage collection, multi-stream append points and write-amplification
//! accounting — the substrate for the paper's §V-1 scenario (automatic
//! garbage-collection optimization in multi-stream SSDs).

use std::collections::HashMap;

/// Logical page number (the FTL's unit of mapping; the paper's pblk layer
/// maps at 4 KB granularity).
pub type Lpn = u64;

/// A stream identifier: which append point a write is directed to.
/// Multi-stream SSDs guarantee data with the same stream ID "is written
/// together to a physically related NAND flash block" (§V-1).
pub type StreamId = usize;

/// Configuration of the simulated FTL.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FtlConfig {
    /// Pages per erase unit.
    pub pages_per_eu: usize,
    /// Total erase units on the device.
    pub erase_units: usize,
    /// Number of write streams (append points). 1 models a conventional
    /// single-append-point log-structured SSD.
    pub streams: usize,
    /// GC starts when free erase units drop to this threshold.
    pub gc_low_watermark: usize,
}

impl FtlConfig {
    /// A small device useful for tests and examples: 64 EUs × 64 pages.
    pub fn small() -> Self {
        FtlConfig {
            pages_per_eu: 64,
            erase_units: 64,
            streams: 1,
            gc_low_watermark: 4,
        }
    }

    /// Returns the config with the given number of streams.
    pub fn streams(mut self, streams: usize) -> Self {
        self.streams = streams;
        self
    }

    /// Usable page capacity if every EU could be filled (no
    /// overprovisioning accounting; callers should write fewer distinct
    /// LPNs than this).
    pub fn total_pages(&self) -> usize {
        self.pages_per_eu * self.erase_units
    }

    fn validate(&self) {
        assert!(self.pages_per_eu > 0, "pages_per_eu must be positive");
        assert!(self.erase_units > 1, "need at least two erase units");
        assert!(self.streams > 0, "need at least one stream");
        assert!(
            self.gc_low_watermark >= self.streams,
            "GC watermark must cover one free EU per stream"
        );
        assert!(
            self.erase_units > self.gc_low_watermark + self.streams,
            "device too small for its watermark and stream count"
        );
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PageState {
    Free,
    Valid(Lpn),
    Invalid,
}

#[derive(Clone, Debug)]
struct EraseUnit {
    pages: Vec<PageState>,
    next_free: usize,
    valid: usize,
}

impl EraseUnit {
    fn new(pages_per_eu: usize) -> Self {
        EraseUnit {
            pages: vec![PageState::Free; pages_per_eu],
            next_free: 0,
            valid: 0,
        }
    }

    fn is_full(&self) -> bool {
        self.next_free >= self.pages.len()
    }

    fn erase(&mut self) {
        for p in &mut self.pages {
            *p = PageState::Free;
        }
        self.next_free = 0;
        self.valid = 0;
    }
}

/// Lifetime counters of the [`Ftl`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FtlStats {
    /// Pages written by the host.
    pub host_writes: u64,
    /// Pages physically written (host writes + GC relocations).
    pub device_writes: u64,
    /// Valid pages relocated by garbage collection.
    pub relocations: u64,
    /// Erase operations performed.
    pub erases: u64,
    /// Garbage collection invocations.
    pub gc_runs: u64,
}

impl FtlStats {
    /// The write amplification factor: device writes / host writes —
    /// the §V-1 optimization target.
    pub fn waf(&self) -> f64 {
        if self.host_writes == 0 {
            1.0
        } else {
            self.device_writes as f64 / self.host_writes as f64
        }
    }
}

/// The simulated page-mapped FTL.
///
/// # Examples
///
/// ```
/// use rtdac_ssdsim::{Ftl, FtlConfig};
///
/// let mut ftl = Ftl::new(FtlConfig::small());
/// for lpn in 0..100u64 {
///     ftl.write(lpn, 0);
/// }
/// assert_eq!(ftl.stats().host_writes, 100);
/// assert_eq!(ftl.stats().waf(), 1.0); // no GC yet
/// assert!(ftl.is_mapped(42));
/// ```
#[derive(Clone, Debug)]
pub struct Ftl {
    config: FtlConfig,
    units: Vec<EraseUnit>,
    /// LPN → (eu, page).
    mapping: HashMap<Lpn, (usize, usize)>,
    /// Active EU per stream (`None` until first write).
    active: Vec<Option<usize>>,
    free_units: Vec<usize>,
    stats: FtlStats,
}

impl Ftl {
    /// Creates an FTL with all erase units free.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero sizes, watermark not
    /// covering the stream count, or a device too small to GC).
    pub fn new(config: FtlConfig) -> Self {
        config.validate();
        Ftl {
            units: (0..config.erase_units)
                .map(|_| EraseUnit::new(config.pages_per_eu))
                .collect(),
            mapping: HashMap::new(),
            active: vec![None; config.streams],
            free_units: (0..config.erase_units).rev().collect(),
            stats: FtlStats::default(),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &FtlConfig {
        &self.config
    }

    /// Writes (or overwrites) one logical page via the given stream's
    /// append point.
    ///
    /// # Panics
    ///
    /// Panics if `stream` is out of range, or if the device runs out of
    /// space even after GC (more live LPNs than physical pages — caller
    /// overfilled the device).
    pub fn write(&mut self, lpn: Lpn, stream: StreamId) {
        assert!(stream < self.config.streams, "stream {stream} out of range");
        self.stats.host_writes += 1;
        self.invalidate(lpn);
        self.append(lpn, stream);
        self.stats.device_writes += 1;
        self.maybe_gc();
    }

    /// Discards a logical page (TRIM): its flash page becomes invalid
    /// without a new write.
    pub fn trim(&mut self, lpn: Lpn) {
        self.invalidate(lpn);
    }

    /// Whether the LPN currently maps to a flash page.
    pub fn is_mapped(&self, lpn: Lpn) -> bool {
        self.mapping.contains_key(&lpn)
    }

    /// Number of currently free erase units.
    pub fn free_erase_units(&self) -> usize {
        self.free_units.len()
    }

    /// Number of live (mapped) logical pages.
    pub fn live_pages(&self) -> usize {
        self.mapping.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    fn invalidate(&mut self, lpn: Lpn) {
        if let Some((eu, page)) = self.mapping.remove(&lpn) {
            debug_assert_eq!(self.units[eu].pages[page], PageState::Valid(lpn));
            self.units[eu].pages[page] = PageState::Invalid;
            self.units[eu].valid -= 1;
        }
    }

    /// Appends `lpn` to the active EU of `stream`, taking a fresh EU when
    /// the active one is full.
    fn append(&mut self, lpn: Lpn, stream: StreamId) {
        let eu = match self.active[stream] {
            Some(eu) if !self.units[eu].is_full() => eu,
            _ => {
                let eu = self
                    .free_units
                    .pop()
                    .expect("device out of space: GC could not free an erase unit");
                self.active[stream] = Some(eu);
                eu
            }
        };
        let unit = &mut self.units[eu];
        let page = unit.next_free;
        unit.pages[page] = PageState::Valid(lpn);
        unit.next_free += 1;
        unit.valid += 1;
        self.mapping.insert(lpn, (eu, page));
    }

    /// Greedy GC: while free EUs are at or below the watermark, pick the
    /// full, inactive EU with the fewest valid pages, relocate its valid
    /// pages (into the streams their LPNs were last written through is
    /// unknown to the device, so relocations go through stream 0's append
    /// point, as real devices use a dedicated GC append point), and erase
    /// it.
    fn maybe_gc(&mut self) {
        while self.free_units.len() <= self.config.gc_low_watermark {
            let Some(victim) = self.pick_victim() else {
                return; // nothing reclaimable
            };
            self.stats.gc_runs += 1;
            // Relocate valid pages.
            let live: Vec<Lpn> = self.units[victim]
                .pages
                .iter()
                .filter_map(|p| match p {
                    PageState::Valid(lpn) => Some(*lpn),
                    _ => None,
                })
                .collect();
            for lpn in live {
                self.invalidate(lpn);
                self.append(lpn, 0);
                self.stats.device_writes += 1;
                self.stats.relocations += 1;
            }
            self.units[victim].erase();
            self.stats.erases += 1;
            self.free_units.push(victim);
        }
    }

    /// The full, inactive erase unit with the fewest valid pages, if any
    /// reclaimable unit exists (strictly fewer valid pages than capacity
    /// — erasing a fully-valid unit frees nothing).
    fn pick_victim(&self) -> Option<usize> {
        self.units
            .iter()
            .enumerate()
            .filter(|(idx, eu)| {
                eu.is_full()
                    && eu.valid < self.config.pages_per_eu
                    && !self.active.contains(&Some(*idx))
            })
            .min_by_key(|(_, eu)| eu.valid)
            .map(|(idx, _)| idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_map_and_overwrite() {
        let mut ftl = Ftl::new(FtlConfig::small());
        ftl.write(7, 0);
        assert!(ftl.is_mapped(7));
        assert_eq!(ftl.live_pages(), 1);
        ftl.write(7, 0); // overwrite: still one live page
        assert_eq!(ftl.live_pages(), 1);
        assert_eq!(ftl.stats().host_writes, 2);
    }

    #[test]
    fn trim_unmaps() {
        let mut ftl = Ftl::new(FtlConfig::small());
        ftl.write(7, 0);
        ftl.trim(7);
        assert!(!ftl.is_mapped(7));
        assert_eq!(ftl.live_pages(), 0);
        ftl.trim(8); // trimming an unmapped page is a no-op
    }

    #[test]
    fn waf_is_one_without_gc() {
        let mut ftl = Ftl::new(FtlConfig::small());
        for lpn in 0..1000u64 {
            ftl.write(lpn, 0);
        }
        assert_eq!(ftl.stats().waf(), 1.0);
        assert_eq!(ftl.stats().gc_runs, 0);
    }

    #[test]
    fn sustained_overwrites_trigger_gc() {
        let config = FtlConfig::small();
        let mut ftl = Ftl::new(config);
        // Live set = half the device, written once, then overwritten
        // uniformly at random (LCG) so invalidations scatter across
        // erase units and GC must relocate valid pages.
        let live = (config.total_pages() / 2) as u64;
        for lpn in 0..live {
            ftl.write(lpn, 0);
        }
        let mut state = 0x2545_f491_4f6c_dd1du64;
        for _ in 0..8 * live {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ftl.write((state >> 16) % live, 0);
        }
        assert!(ftl.stats().gc_runs > 0);
        assert!(ftl.stats().waf() > 1.0);
        assert_eq!(ftl.live_pages(), live as usize);
        // Every mapped page is readable.
        for lpn in 0..live {
            assert!(ftl.is_mapped(lpn));
        }
    }

    #[test]
    fn gc_reclaims_fully_invalid_units_for_free() {
        let config = FtlConfig {
            pages_per_eu: 16,
            erase_units: 8,
            streams: 1,
            gc_low_watermark: 2,
        };
        let mut ftl = Ftl::new(config);
        // Sequential overwrite of a small working set: by the time GC
        // runs, old EUs are fully invalid, so WAF stays at 1.
        for round in 0..20u64 {
            for lpn in 0..16u64 {
                ftl.write(lpn, 0);
                let _ = round;
            }
        }
        assert!(ftl.stats().gc_runs > 0);
        assert_eq!(ftl.stats().relocations, 0);
        assert_eq!(ftl.stats().waf(), 1.0);
    }

    #[test]
    fn streams_separate_append_points() {
        let config = FtlConfig::small().streams(2);
        let mut ftl = Ftl::new(config);
        ftl.write(1, 0);
        ftl.write(2, 1);
        // The two writes landed in different EUs.
        let (eu1, _) = ftl.mapping[&1];
        let (eu2, _) = ftl.mapping[&2];
        assert_ne!(eu1, eu2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_stream_panics() {
        let mut ftl = Ftl::new(FtlConfig::small());
        ftl.write(0, 5);
    }

    #[test]
    #[should_panic(expected = "watermark must cover")]
    fn watermark_below_streams_panics() {
        Ftl::new(FtlConfig {
            pages_per_eu: 16,
            erase_units: 32,
            streams: 8,
            gc_low_watermark: 2,
        });
    }

    #[test]
    fn mapping_survives_heavy_churn() {
        let config = FtlConfig {
            pages_per_eu: 8,
            erase_units: 16,
            streams: 2,
            gc_low_watermark: 3,
        };
        let mut ftl = Ftl::new(config);
        let live = 48u64;
        for i in 0..3_000u64 {
            ftl.write(i % live, (i % 2) as usize);
        }
        assert_eq!(ftl.live_pages(), live as usize);
        let device_valid: usize = ftl.units.iter().map(|u| u.valid).sum();
        assert_eq!(device_valid, live as usize);
    }
}
