//! Buffer-pool correctness: after warmup, the steady-state routed
//! pipeline performs **zero heap allocations per batch**.
//!
//! A counting `#[global_allocator]` wraps the system allocator and
//! tallies every `alloc`/`alloc_zeroed`/`realloc` call (frees are not
//! counted — recycling is about never *needing* new memory). The test
//! drives the pipeline through a warmup long enough for every pool to
//! prime — work-list buffers cycling shard → router, batch buffers
//! cycling router → front-end, table slabs and dedup scratch at their
//! high-water marks — then snapshots the counter, streams a measurement
//! window of pre-built transactions, and asserts the counter did not
//! move. Any allocation regression on the routed hot path (front-end,
//! router workers, or shard workers) fails the assert with the exact
//! count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use rtdac_monitor::{blktrace, BlktraceEventSource, IngestPipeline, MonitorConfig, PipelineConfig};
use rtdac_synopsis::{Admission, AnalyzerConfig, DoorkeeperConfig, TableDelta, TwoTierTable};
use rtdac_types::{
    ColumnarReader, ColumnarWriter, EventSource, Extent, IoOp, IoRequest, MsrCsvReader,
    RequestSource, Timestamp, Trace, Transaction,
};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// One cycle of the steady-state workload: 64 distinct two-extent
/// transactions, all pairs well under the table capacities, so after
/// the first pass every record is a table *hit* (no insertions, no
/// evictions — the analyzer hot path is allocation-free by design and
/// must stay that way).
fn cycle() -> Vec<Transaction> {
    (0..64u64)
        .map(|i| {
            Transaction::from_extents(
                Timestamp::from_micros(i),
                [
                    Extent::new(100 + i * 10, 4).unwrap(),
                    Extent::new(10_000 + i * 10, 4).unwrap(),
                ],
            )
        })
        .collect()
}

/// A pre-built stream of `cycles` repetitions of the workload cycle.
/// Built *before* the measurement snapshot: constructing a Transaction
/// allocates its item vector, and that is the caller's cost, not the
/// pipeline's.
fn stream(cycles: usize) -> Vec<Transaction> {
    let one = cycle();
    let mut out = Vec::with_capacity(cycles * one.len());
    for _ in 0..cycles {
        out.extend(one.iter().cloned());
    }
    out
}

fn assert_steady_state_allocation_free(routers: usize) {
    let mut pipeline = IngestPipeline::new(
        MonitorConfig::default(),
        AnalyzerConfig::with_capacity(4096),
        PipelineConfig::with_shards(2)
            .routers(routers)
            .batch_size(16)
            .ring_capacity(8),
    );

    // Warmup: prime the tables and rotate every recycling ring many
    // times over (200 cycles = 800 batches against rings prefilled
    // with ~10 buffers each) — the rings are FIFO, so every pooled
    // buffer is exercised and grown to its cycle's high-water
    // capacity well before the window opens.
    let warmup = stream(200);
    let measured = stream(100);
    // Touch the main thread's handle so its lazy init (used by the
    // ring park/wake handshake) cannot fire inside the window.
    let _ = std::thread::current();
    for t in warmup {
        pipeline.push_transaction(t);
    }
    pipeline.flush_batch();
    // Let the router and shard workers drain everything in flight so
    // no warmup-era allocation (a buffer pool still growing toward its
    // plateau) can land inside the measurement window.
    std::thread::sleep(Duration::from_millis(100));

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for t in measured {
        pipeline.push_transaction(t);
    }
    pipeline.flush_batch();
    std::thread::sleep(Duration::from_millis(100));
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "{routers}-router steady state performed {} heap allocations \
         across 400 batches (expected zero: buffers must recycle)",
        after - before
    );

    // The measurement stream was processed for real, not dropped.
    let analyzer = pipeline.finish();
    assert_eq!(analyzer.stats().transactions, (200 + 100) * 64);
}

/// A resize tears the pools down and rebuilds them, so it *may*
/// allocate (quiesce-window cost, counted and reported separately) —
/// but once the fresh pool's rings have rotated through warmup, the
/// steady state must be allocation-free again at the new topology.
fn assert_allocation_free_after_resize() {
    let mut pipeline = IngestPipeline::new(
        MonitorConfig::default(),
        AnalyzerConfig::with_capacity(4096),
        PipelineConfig::with_shards(2)
            .routers(2)
            .batch_size(16)
            .ring_capacity(8),
    );
    let _ = std::thread::current();
    let mut total = 0u64;
    for t in stream(200) {
        pipeline.push_transaction(t);
    }
    pipeline.flush_batch();
    std::thread::sleep(Duration::from_millis(100));

    // Grow both stages, then shrink both below the starting topology.
    for (step, (shards, routers)) in [(4usize, 4usize), (2, 1)].into_iter().enumerate() {
        // Built before any counter snapshot — transaction construction
        // allocates, and that is the caller's cost, not the pipeline's.
        let rewarm = stream(200);
        let measured = stream(100);
        let before_resize = ALLOCATIONS.load(Ordering::SeqCst);
        assert!(pipeline.resize(shards, routers));
        let quiesce_allocations = ALLOCATIONS.load(Ordering::SeqCst) - before_resize;
        // The quiesce window builds a whole new pool (rings, prefilled
        // buffers, snapshot merge): it must allocate — this is the
        // separately-counted budget the steady-state assert excludes.
        assert!(
            quiesce_allocations > 0,
            "resize to {shards}s x {routers}r allocated nothing — \
             the pool was not actually rebuilt"
        );
        println!(
            "resize {step} (to {shards}s x {routers}r): \
             {quiesce_allocations} quiesce-window allocations"
        );

        // Re-warm the fresh pool, then hold it to zero.
        for t in rewarm {
            pipeline.push_transaction(t);
        }
        pipeline.flush_batch();
        std::thread::sleep(Duration::from_millis(100));

        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for t in measured {
            pipeline.push_transaction(t);
        }
        pipeline.flush_batch();
        std::thread::sleep(Duration::from_millis(100));
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "steady state after resize to {shards}s x {routers}r performed \
             {} heap allocations (expected zero: the pool must re-establish \
             its recycling plateau)",
            after - before
        );
        total += 300;
    }

    // Nothing was dropped across the resizes.
    let analyzer = pipeline.finish();
    assert_eq!(analyzer.stats().transactions, (200 + total) * 64);
}

/// One cycle's worth of never-repeating tail transactions: extents
/// drawn from a region far above the recurring cycle's, advancing
/// every cycle so no tail pair is ever seen twice. With a threshold-3
/// doorkeeper these stay below the admission threshold forever — the
/// steady state exercises the sketch-probe *rejection* path on every
/// one of them.
fn tail_cycle(cycle_index: u64) -> Vec<Transaction> {
    (0..16u64)
        .map(|j| {
            let n = cycle_index * 16 + j;
            Transaction::from_extents(
                Timestamp::from_micros(1_000_000 + n),
                [
                    Extent::new(50_000_000 + n * 128, 4).unwrap(),
                    Extent::new(90_000_000 + n * 128, 4).unwrap(),
                ],
            )
        })
        .collect()
}

/// With admission on, the steady state has three hot paths the ungated
/// phases never touch — sketch-probe rejections for the never-repeating
/// tail, sketch bumps under the admitted working set's first sightings,
/// and the periodic in-place halving when the aging watermark fires —
/// and none of them may allocate. The recurring cycle is admitted
/// during warmup (third sighting crosses the threshold); the measured
/// window then mixes table hits with guaranteed rejections and several
/// watermark resets.
fn assert_admission_steady_state_allocation_free() {
    let mut pipeline = IngestPipeline::new(
        MonitorConfig::default(),
        AnalyzerConfig::with_capacity(4096).admission(Admission::Doorkeeper(DoorkeeperConfig {
            counters: 8192,
            admit_threshold: 3,
            // Low enough that halving fires repeatedly inside the
            // measured window (16 rejected bumps per cycle x 100
            // cycles, against a per-shard watermark of 512 after the
            // 2-way split).
            watermark: 1024,
        })),
        PipelineConfig::with_shards(2)
            .routers(2)
            .batch_size(16)
            .ring_capacity(8),
    );
    let _ = std::thread::current();
    let build = |cycles: std::ops::Range<u64>| -> Vec<Transaction> {
        let recurring = cycle();
        let mut out = Vec::with_capacity(cycles.clone().count() * (recurring.len() + 16));
        for c in cycles {
            out.extend(recurring.iter().cloned());
            out.extend(tail_cycle(c));
        }
        out
    };
    let warmup = build(0..200);
    let measured = build(200..300);
    for t in warmup {
        pipeline.push_transaction(t);
    }
    pipeline.flush_batch();
    std::thread::sleep(Duration::from_millis(100));

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for t in measured {
        pipeline.push_transaction(t);
    }
    pipeline.flush_batch();
    std::thread::sleep(Duration::from_millis(100));
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "admission-on steady state performed {} heap allocations \
         (expected zero: the sketch probe, rejection, and halving paths \
         must all be allocation-free)",
        after - before
    );

    let analyzer = pipeline.finish();
    assert_eq!(analyzer.stats().transactions, 300 * (64 + 16));
    // The phase really exercised the admission paths: the recurring
    // cycle got in, the tail did not.
    assert!(
        analyzer.stats().pair_rejections >= 300 * 16,
        "tail pairs were admitted — the doorkeeper never gated"
    );
    assert_eq!(analyzer.frequent_pairs(1).len(), 64);
}

/// With epoch publishing enabled and a reader querying the live view,
/// the steady state gains three more hot paths — delta extraction in
/// the shard workers (op-log swap + stamped-prefix walks into recycled
/// buffers), delta folding into the mirror tables, and the merged
/// queries themselves (k-way merge and point lookups against warm
/// scratch) — and none of them may allocate. Warmup rotates the delta
/// buffers through many publish cycles and runs every query shape so
/// all scratch reaches its plateau before the window opens.
fn assert_publish_and_query_steady_state_allocation_free() {
    let mut pipeline = IngestPipeline::new(
        MonitorConfig::default(),
        AnalyzerConfig::with_capacity(4096),
        PipelineConfig::with_shards(2)
            .routers(2)
            .batch_size(16)
            .ring_capacity(8)
            .publish_interval(2),
    );
    let _ = std::thread::current();
    let warmup = stream(200);
    let measured = stream(100);
    let probe = Extent::new(100, 4).unwrap();
    let mut pairs = Vec::new();
    let mut top = Vec::new();
    let run = |pipeline: &mut IngestPipeline,
               transactions: Vec<Transaction>,
               pairs: &mut Vec<(rtdac_types::ExtentPair, u32)>,
               top: &mut Vec<(rtdac_types::ExtentPair, u32)>| {
        for (i, t) in transactions.into_iter().enumerate() {
            pipeline.push_transaction(t);
            // Query against warm buffers at every batch boundary: fold
            // published deltas, then run both merge shapes and a point
            // lookup.
            if i % 16 == 0 {
                pipeline.poll_live().expect("publishing enabled");
                let view = pipeline.live_view_mut().expect("publishing enabled");
                view.frequent_pairs_into(1, pairs);
                view.top_pairs_into(8, top);
                std::hint::black_box(view.item_tally(&probe));
            }
        }
        pipeline.flush_batch();
    };
    run(&mut pipeline, warmup, &mut pairs, &mut top);
    std::thread::sleep(Duration::from_millis(100));
    // Fold the warmup's in-flight deltas too, so the mirrors are at
    // their plateau before the counter snapshot.
    pipeline.poll_live();

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    run(&mut pipeline, measured, &mut pairs, &mut top);
    std::thread::sleep(Duration::from_millis(100));
    pipeline.poll_live();
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "publish-under-query steady state performed {} heap allocations \
         (expected zero: delta extraction, mirror folding, and live \
         queries must all recycle)",
        after - before
    );

    // The window did real work: epochs published, queries saw the
    // whole working set.
    let stats = pipeline.stats();
    assert!(stats.epoch_publishes > 0, "no epochs were published");
    assert_eq!(pairs.len(), 64, "live query missed the working set");
    assert_eq!(top.len(), 8);
    let analyzer = pipeline.finish();
    assert_eq!(analyzer.stats().transactions, (200 + 100) * 64);
}

/// A trace whose on-disk encoding is byte-uniform in every format: a
/// constant time stride (offset high enough that tick/varint widths
/// never grow mid-file), a 64-extent cycle, and a constant latency —
/// so every reader's reusable buffers reach their high-water mark
/// during the warmup half and the measured half cannot trigger a
/// late growth reallocation by construction.
fn fixed_stride_trace(requests: usize) -> Trace {
    let mut trace = Trace::new("alloc");
    for i in 0..requests as u64 {
        trace.push(
            IoRequest::new(
                Timestamp::from_micros(1_000_000 + i),
                3,
                if i % 2 == 0 { IoOp::Read } else { IoOp::Write },
                Extent::new(100 + (i % 64) * 10, 4).unwrap(),
            )
            .with_latency(Duration::from_micros(100)),
        );
    }
    trace
}

/// Streams the second half of a decode pass under the allocation
/// counter: the first half is the warmup (fixed chunk buffers filling,
/// the D/C pairing map and pending ring plateauing, the line buffer
/// reaching its high-water mark), the second half must decode without
/// a single heap allocation.
fn assert_second_half_allocation_free<T>(
    what: &str,
    total: usize,
    mut next: impl FnMut() -> Option<T>,
) {
    let half = total / 2;
    for _ in 0..half {
        assert!(next().is_some(), "{what}: stream ended during warmup");
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut n = 0usize;
    while let Some(item) = next() {
        std::hint::black_box(&item);
        n += 1;
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "{what}: steady-state decode performed {} heap allocations \
         over {n} records (expected zero: readers must reuse buffers)",
        after - before
    );
    assert_eq!(n, total - half, "{what}: decode lost records");
}

/// The streaming readers' zero-allocation contract: after warmup,
/// pulling the next record from any on-disk format allocates nothing.
fn assert_streaming_decoders_allocation_free() {
    let trace = fixed_stride_trace(64 * 200);

    // Blktrace binary, with online D/C pairing (the pending window and
    // pairing map plateau at the 100-deep in-flight cycle).
    let mut blk = Vec::new();
    blktrace::write_trace(&trace, &mut blk).expect("in-memory write");
    let mut source = BlktraceEventSource::new(blk.as_slice(), Duration::from_micros(50));
    assert_second_half_allocation_free("blktrace", trace.len(), || {
        source.next_event().expect("well-formed blktrace")
    });

    // Columnar, small blocks so the measured half crosses many block
    // loads (the reusable block buffer and cursors are the hot path).
    let mut writer = ColumnarWriter::with_block_records(Vec::new(), 256);
    for request in &trace {
        writer.push(request).expect("in-memory write");
    }
    let (col, _) = writer.finish().expect("in-memory finish");
    let mut source = ColumnarReader::new(col.as_slice());
    assert_second_half_allocation_free("columnar", trace.len(), || {
        source.next_request().expect("well-formed columnar")
    });

    // MSR CSV, one reused line buffer (constant-width lines by
    // construction, so its capacity is settled after the first line).
    let mut csv = Vec::new();
    trace.write_msr_csv(&mut csv).expect("in-memory write");
    let mut source = MsrCsvReader::new(csv.as_slice());
    assert_second_half_allocation_free("msr_csv", trace.len(), || {
        source.next_request().expect("well-formed csv")
    });
}

/// The open-addressing table's own steady-state contract, exercised
/// directly (no pipeline): a fixed-size table under heavy churn —
/// misses, evictions, promotions, demotions, removals, the tombstone
/// buildup that triggers in-place rehashes, delta extraction into
/// preallocated buffers, and the reusable-buffer frequent-entry query —
/// performs zero heap allocations once every buffer is at its plateau.
/// The in-place rehash is the point: the storage is a single fixed
/// allocation, so even hash-layout maintenance must be free.
fn assert_table_churn_allocation_free() {
    let mut table: TwoTierTable<u64> = TwoTierTable::new(512, 512, 2);
    table.enable_delta_tracking();
    let mut delta = TableDelta::default();
    table.preallocate_delta(&mut delta);
    let mut top = Vec::new();
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut drive = |table: &mut TwoTierTable<u64>,
                     delta: &mut TableDelta<u64>,
                     top: &mut Vec<(u64, u32)>,
                     steps: u32| {
        for step in 0..steps {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Keyspace 4× capacity: a steady mix of hits, misses and
            // evictions, with enough tombstone churn to keep forcing
            // in-place rehashes.
            let key = (state >> 33) % 4096;
            match state % 16 {
                14 => {
                    table.demote(&key);
                }
                15 => {
                    table.remove(&key);
                }
                _ => {
                    table.record(key);
                }
            }
            if step % 256 == 0 {
                table.extract_delta(delta);
                table.entries_with_min_tally_into(1, top);
            }
        }
    };
    drive(&mut table, &mut delta, &mut top, 200_000);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    drive(&mut table, &mut delta, &mut top, 100_000);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "table churn steady state performed {} heap allocations \
         (expected zero: single fixed allocation, in-place rehash, \
         recycled delta and query buffers)",
        after - before
    );
    assert!(!top.is_empty(), "the query window saw no entries");
}

#[test]
fn routed_pipeline_is_allocation_free_after_warmup() {
    // One test, sequential phases: the counter is process-global, so
    // concurrently running test threads would pollute each other's
    // measurement windows.
    assert_steady_state_allocation_free(1); // inline router
    assert_steady_state_allocation_free(2); // parallel routers
    assert_steady_state_allocation_free(4); // full router fan-out
    assert_admission_steady_state_allocation_free(); // doorkeeper-gated hot path
    assert_publish_and_query_steady_state_allocation_free(); // live-view hot path
    assert_allocation_free_after_resize(); // elastic pool, re-primed
    assert_streaming_decoders_allocation_free(); // disk readers' hot path
    assert_table_churn_allocation_free(); // open-addressing table churn
}
