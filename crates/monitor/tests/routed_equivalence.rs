//! End-to-end equivalence of the routed ingestion pipeline: for every
//! shard count and dispatch mode, the pipeline must report exactly the
//! correlations the paper's single-threaded reference analyzer finds —
//! on the skewed hot-pair workload that routed dispatch exists to serve.

use rtdac_monitor::{Dispatch, IngestPipeline, MonitorConfig, PipelineConfig, SplitConfig};
use rtdac_synopsis::{Admission, AnalyzerConfig, ReferenceAnalyzer};
use rtdac_types::Transaction;
use rtdac_workloads::SkewedSpec;

fn skewed_transactions() -> Vec<Transaction> {
    SkewedSpec::new()
        .transactions(4_000)
        .hot_fraction(0.4)
        .seed(42)
        .generate()
        .transactions
}

/// Runs the stream through a routed pipeline and returns the merged
/// frequent-pair view in canonical order.
fn run_pipeline(
    transactions: &[Transaction],
    config: &AnalyzerConfig,
    pipeline_config: PipelineConfig,
) -> (
    Vec<(rtdac_types::ExtentPair, u32)>,
    rtdac_monitor::PipelineStats,
) {
    let mut pipeline =
        IngestPipeline::new(MonitorConfig::default(), config.clone(), pipeline_config);
    for t in transactions {
        pipeline.push_transaction(t.clone());
    }
    let stats = pipeline.stats();
    let analyzer = pipeline.finish();
    (analyzer.snapshot().frequent_pairs(1), stats)
}

#[test]
fn routed_pipeline_matches_reference_on_skewed_workload() {
    let transactions = skewed_transactions();
    // Capacity above the stream's footprint: the reference oracle and
    // the online analyzer agree exactly when nothing overflows.
    let config = AnalyzerConfig::with_capacity(64 * 1024);

    let mut reference = ReferenceAnalyzer::new(config.clone());
    for t in &transactions {
        reference.process(t);
    }
    let expected = reference.snapshot().frequent_pairs(1);
    assert!(!expected.is_empty(), "workload produced no pairs");

    for shards in [1usize, 2, 4, 8] {
        let (pairs, _) = run_pipeline(
            &transactions,
            &config,
            PipelineConfig::with_shards(shards).batch_size(32),
        );
        assert_eq!(pairs, expected, "routed, {shards} shards");
    }
}

#[test]
fn split_pipeline_matches_reference_and_actually_splits() {
    let transactions = skewed_transactions();
    let config = AnalyzerConfig::with_capacity(64 * 1024);

    let mut reference = ReferenceAnalyzer::new(config.clone());
    for t in &transactions {
        reference.process(t);
    }
    let expected = reference.snapshot().frequent_pairs(1);

    for shards in [2usize, 4, 8] {
        let split = SplitConfig {
            hot_fraction: 0.2, // the hot pair carries ~40% of records
            warmup: 64,
            ..SplitConfig::default()
        };
        let (pairs, stats) = run_pipeline(
            &transactions,
            &config,
            PipelineConfig::with_shards(shards)
                .batch_size(32)
                .split(split),
        );
        // The split path must have actually engaged…
        assert!(
            stats.split_records > 100,
            "{shards} shards: hot pair never split ({} records)",
            stats.split_records
        );
        // …and the merged tallies must still be exact.
        assert_eq!(pairs, expected, "split, {shards} shards");
    }
}

#[test]
fn split_spreads_hot_work_across_shards() {
    // Under hash routing every hot-pair record lands on one shard; with
    // splitting the deterministic per-shard op counts must flatten out.
    let transactions = skewed_transactions();
    let config = AnalyzerConfig::with_capacity(64 * 1024);
    let shards = 4usize;

    let imbalance = |stats: &rtdac_monitor::PipelineStats| {
        let ops = &stats.routed_ops;
        let max = *ops.iter().max().unwrap() as f64;
        let mean = ops.iter().sum::<u64>() as f64 / ops.len() as f64;
        max / mean
    };

    let (_, hashed) = run_pipeline(
        &transactions,
        &config,
        PipelineConfig::with_shards(shards).batch_size(32),
    );
    let split = SplitConfig {
        hot_fraction: 0.2,
        warmup: 64,
        ..SplitConfig::default()
    };
    let (_, spread) = run_pipeline(
        &transactions,
        &config,
        PipelineConfig::with_shards(shards)
            .batch_size(32)
            .split(split),
    );

    let (before, after) = (imbalance(&hashed), imbalance(&spread));
    assert!(
        after < before,
        "splitting did not improve balance: {before:.3} -> {after:.3}"
    );
    assert!(
        after < 1.5,
        "split max/mean per-shard work still skewed: {after:.3}"
    );
}

#[test]
fn parallel_routers_are_bit_exact_across_the_sweep() {
    // The tentpole invariant: for R ∈ {1,2,4} × shards ∈ {1,2,4,8},
    // every shard's table state is bit-identical to broadcast (and thus
    // to R = 1). Tiny tables force eviction churn, so any reordering in
    // the multi-router fan-in would surface as a snapshot diff.
    let transactions = skewed_transactions();
    let config = AnalyzerConfig::with_capacity(32).item_capacity(16);

    let snapshots = |pipeline_config: PipelineConfig| {
        let mut pipeline =
            IngestPipeline::new(MonitorConfig::default(), config.clone(), pipeline_config);
        for t in &transactions {
            pipeline.push_transaction(t.clone());
        }
        let analyzer = pipeline.finish();
        analyzer
            .shards()
            .iter()
            .map(|shard| shard.snapshot())
            .collect::<Vec<_>>()
    };

    for shards in [1usize, 2, 4, 8] {
        let broadcast = snapshots(
            PipelineConfig::with_shards(shards)
                .batch_size(32)
                .dispatch(Dispatch::Broadcast),
        );
        for routers in [1usize, 2, 4] {
            let routed = snapshots(
                PipelineConfig::with_shards(shards)
                    .batch_size(32)
                    .routers(routers),
            );
            assert_eq!(
                routed, broadcast,
                "{routers} routers x {shards} shards diverged from broadcast"
            );
        }
    }
}

#[test]
fn parallel_routers_with_splitting_stay_count_exact() {
    // Each parallel router owns a private hot-pair tracker that sees a
    // round-robin 1/R sample of the batch stream; whatever each one
    // decides, merge-time tally summation must keep frequent_pairs
    // count-exact against the single-threaded reference — and the hot
    // pair must still actually get split.
    let transactions = skewed_transactions();
    let config = AnalyzerConfig::with_capacity(64 * 1024);

    let mut reference = ReferenceAnalyzer::new(config.clone());
    for t in &transactions {
        reference.process(t);
    }
    let expected = reference.snapshot().frequent_pairs(1);

    for routers in [1usize, 2, 4] {
        let split = SplitConfig {
            hot_fraction: 0.2,
            warmup: 64,
            ..SplitConfig::default()
        };
        let mut pipeline = IngestPipeline::new(
            MonitorConfig::default(),
            config.clone(),
            PipelineConfig::with_shards(4)
                .routers(routers)
                .batch_size(32)
                .split(split),
        );
        for t in &transactions {
            pipeline.push_transaction(t.clone());
        }
        pipeline.flush_batch();
        // Parallel-router counters are eventually consistent; wait for
        // the routers to drain before checking that splitting engaged.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mut split_records = pipeline.stats().split_records;
        while split_records <= 100 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(1));
            split_records = pipeline.stats().split_records;
        }
        assert!(
            split_records > 100,
            "{routers} routers: hot pair never split ({split_records} records)"
        );
        let pairs = pipeline.finish().snapshot().frequent_pairs(1);
        assert_eq!(pairs, expected, "split with {routers} routers");
    }
}

#[test]
fn explicit_admission_off_is_bit_exact_with_default() {
    // Every config in this matrix leaves `admission` defaulted; the
    // default is `Admission::Off`, and spelling it out must change
    // nothing — per-shard snapshots stay bit-identical even under
    // eviction churn, across shard and router counts.
    let transactions = skewed_transactions();
    let defaulted = AnalyzerConfig::with_capacity(32).item_capacity(16);
    let explicit = defaulted.clone().admission(Admission::Off);

    let snapshots = |config: &AnalyzerConfig, shards: usize, routers: usize| {
        let mut pipeline = IngestPipeline::new(
            MonitorConfig::default(),
            config.clone(),
            PipelineConfig::with_shards(shards)
                .routers(routers)
                .batch_size(32),
        );
        for t in &transactions {
            pipeline.push_transaction(t.clone());
        }
        let analyzer = pipeline.finish();
        analyzer
            .shards()
            .iter()
            .map(|shard| shard.snapshot())
            .collect::<Vec<_>>()
    };

    for (shards, routers) in [(1usize, 1usize), (4, 2)] {
        assert_eq!(
            snapshots(&defaulted, shards, routers),
            snapshots(&explicit, shards, routers),
            "explicit Admission::Off diverged at {shards} shards x {routers} routers"
        );
    }
}

#[test]
fn dispatch_modes_agree_under_table_overflow() {
    // Tiny tables force constant eviction; broadcast and routed (split
    // off) must still produce identical per-shard state, so the merged
    // views agree too.
    let transactions = skewed_transactions();
    let config = AnalyzerConfig::with_capacity(32).item_capacity(16);

    for shards in [1usize, 2, 4, 8] {
        let (broadcast, _) = run_pipeline(
            &transactions,
            &config,
            PipelineConfig::with_shards(shards)
                .batch_size(32)
                .dispatch(Dispatch::Broadcast),
        );
        let (routed, _) = run_pipeline(
            &transactions,
            &config,
            PipelineConfig::with_shards(shards).batch_size(32),
        );
        assert_eq!(broadcast, routed, "{shards} shards under overflow");
    }
}
