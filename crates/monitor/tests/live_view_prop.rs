//! Property tests for quiesce-free live queries: a [`LiveView`] read at
//! *any* epoch boundary must be bit-exact to a quiesced
//! [`SynopsisSnapshot`] taken at that boundary — across shard and
//! router counts, admission on/off, and a scripted mid-stream resize.
//!
//! The oracle replays the identical history (same transactions, same
//! resize point) through a non-publishing pipeline and captures its
//! quiesced state; the live pipeline is drained to the same boundary
//! with heartbeat batches (which carry no records and cannot change
//! table state) and its view compared snapshot-for-snapshot.

use proptest::prelude::*;
use rtdac_monitor::{IngestPipeline, MonitorConfig, PipelineConfig};
use rtdac_synopsis::{Admission, AnalyzerConfig, DoorkeeperConfig, SynopsisSnapshot};
use rtdac_types::{Extent, IoOp, Timestamp, Transaction};
use std::time::{Duration, Instant};

/// A tight-range stream so pairs recur and small tables churn:
/// 1–4 extents per transaction, blocks drawn from 24 slots.
fn transactions_strategy() -> impl Strategy<Value = Vec<Transaction>> {
    prop::collection::vec(prop::collection::vec(0u64..24, 1..5), 40..160).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, blocks)| {
                let mut txn = Transaction::new(Timestamp::from_micros(i as u64));
                for block in blocks {
                    txn.push(Extent::new(block * 8, 4).expect("valid extent"), IoOp::Read);
                }
                txn
            })
            .collect()
    })
}

fn analyzer_config(admission: bool) -> AnalyzerConfig {
    let config = AnalyzerConfig::with_capacity(256);
    if admission {
        config.admission(Admission::Doorkeeper(DoorkeeperConfig {
            counters: 1024,
            admit_threshold: 2,
            watermark: 256,
        }))
    } else {
        config
    }
}

fn pipeline_config(shards: usize, routers: usize, publish: usize) -> PipelineConfig {
    PipelineConfig::with_shards(shards)
        .routers(routers)
        .batch_size(8)
        .publish_interval(publish)
}

/// Feeds `prefix` transactions with the scripted resize applied at
/// `resize_at` (if inside the prefix), quiesces, and captures the
/// partition-exact snapshot — the ground truth for that boundary.
fn oracle_snapshot(
    transactions: &[Transaction],
    prefix: usize,
    config: &AnalyzerConfig,
    shards: usize,
    routers: usize,
    resize_at: usize,
    resize_to: (usize, usize),
) -> SynopsisSnapshot {
    let mut pipeline = IngestPipeline::new(
        MonitorConfig::default(),
        config.clone(),
        pipeline_config(shards, routers, 0),
    );
    for (i, t) in transactions[..prefix].iter().enumerate() {
        if i == resize_at {
            pipeline.resize(resize_to.0, resize_to.1);
        }
        pipeline.push_transaction(t.clone());
    }
    SynopsisSnapshot::capture(pipeline.finish().shards())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// At every sampled boundary — including one straddling a scripted
    /// resize — the live view equals the quiesced oracle bit-for-bit.
    #[test]
    fn live_view_equals_quiesced_snapshot_at_any_boundary(
        txns in transactions_strategy(),
        shards_index in 0usize..3,
        routers in 1usize..3,
        admission in any::<bool>(),
        resize_seed in 0usize..usize::MAX,
        to_shards_index in 0usize..3,
        to_routers in 1usize..3,
        sample_seeds in prop::collection::vec(0usize..usize::MAX, 1..4),
    ) {
        let shards = [1usize, 2, 4][shards_index];
        let resize_to = ([1usize, 2, 4][to_shards_index], to_routers);
        let resize_at = resize_seed % txns.len();
        let mut samples: Vec<usize> = sample_seeds
            .into_iter()
            .map(|s| 1 + s % txns.len())
            .collect();
        // Always sample the boundary right after the resize applies.
        samples.push((resize_at + 1).min(txns.len()));
        samples.sort_unstable();
        samples.dedup();

        let config = analyzer_config(admission);
        let mut live = IngestPipeline::new(
            MonitorConfig::default(),
            config.clone(),
            pipeline_config(shards, routers, 4),
        );
        let mut next_sample = 0usize;
        for (i, t) in txns.iter().enumerate() {
            if i == resize_at {
                live.resize(resize_to.0, resize_to.1);
            }
            live.push_transaction(t.clone());
            if next_sample < samples.len() && i + 1 == samples[next_sample] {
                next_sample += 1;
                live.flush_batch();
                // Drain the view to the frontier: heartbeats give idle
                // workers publish opportunities without touching state.
                let target = live.frontier_epoch();
                let deadline = Instant::now() + Duration::from_secs(10);
                loop {
                    let epoch = live.poll_live().expect("publishing enabled");
                    if epoch >= target {
                        break;
                    }
                    prop_assert!(
                        Instant::now() < deadline,
                        "live view never reached epoch {}", target
                    );
                    live.heartbeat();
                    std::thread::sleep(Duration::from_micros(100));
                }
                let expected = oracle_snapshot(
                    &txns, i + 1, &config, shards, routers, resize_at, resize_to,
                );
                let view = live.live_view().expect("publishing enabled");
                prop_assert_eq!(
                    view.snapshot(),
                    expected,
                    "boundary {} (resize at {}, {} shards -> {:?})",
                    i + 1, resize_at, shards, resize_to
                );
            }
        }
        live.finish();
    }
}
