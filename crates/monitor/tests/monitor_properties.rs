//! Property tests for the monitoring module: conservation, windowing
//! and limit invariants under arbitrary event streams.

use std::time::Duration;

use proptest::prelude::*;
use rtdac_monitor::{Monitor, MonitorConfig, WindowPolicy};
use rtdac_types::{Extent, IoEvent, IoOp, Timestamp};

/// An arbitrary timestamp-ordered event stream.
fn events_strategy() -> impl Strategy<Value = Vec<IoEvent>> {
    prop::collection::vec(
        (0u64..500, 0u64..30, 1u32..4, 10u64..200, prop::bool::ANY),
        0..80,
    )
    .prop_map(|raw| {
        let mut t = 0u64;
        raw.into_iter()
            .map(|(gap, start, len, lat_us, is_write)| {
                t += gap;
                IoEvent::new(
                    Timestamp::from_micros(t),
                    1,
                    if is_write { IoOp::Write } else { IoOp::Read },
                    Extent::new(start * 8, len).expect("valid extent"),
                    Duration::from_micros(lat_us),
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// No admitted request is lost or invented: with dedup off, the
    /// total requests across emitted transactions equals the event
    /// count, in order.
    #[test]
    fn conservation_without_dedup(
        events in events_strategy(),
        window_us in 1u64..1_000,
        limit in 1usize..12,
    ) {
        let config = MonitorConfig::new(WindowPolicy::Static(
            Duration::from_micros(window_us),
        ))
        .transaction_limit(limit)
        .dedup(false);
        let txns = Monitor::new(config).into_transactions(events.clone());
        let emitted: Vec<Extent> = txns.iter().flat_map(|t| t.extents()).collect();
        let offered: Vec<Extent> = events.iter().map(|e| e.extent).collect();
        prop_assert_eq!(emitted, offered);
    }

    /// Every transaction respects the size limit, and only the last
    /// transaction of a burst may be under-full due to a window close.
    #[test]
    fn limit_always_respected(
        events in events_strategy(),
        limit in 1usize..12,
    ) {
        let config = MonitorConfig::default().transaction_limit(limit);
        let txns = Monitor::new(config).into_transactions(events);
        for txn in &txns {
            prop_assert!(txn.len() <= limit);
            prop_assert!(!txn.is_empty());
        }
    }

    /// Consecutive requests inside one transaction are within the
    /// static window of each other; consecutive transactions are
    /// separated by more than the window OR by a limit split.
    #[test]
    fn window_semantics(
        events in events_strategy(),
        window_us in 1u64..1_000,
    ) {
        let window = Duration::from_micros(window_us);
        let config = MonitorConfig::new(WindowPolicy::Static(window))
            .transaction_limit(1_000_000) // effectively unlimited
            .dedup(false);
        let txns = Monitor::new(config).into_transactions(events.clone());

        // Rebuild per-transaction event times from the order-preserving
        // conservation property.
        let mut cursor = 0usize;
        let mut previous_end: Option<Timestamp> = None;
        for txn in &txns {
            let times: Vec<Timestamp> =
                events[cursor..cursor + txn.len()].iter().map(|e| e.timestamp).collect();
            cursor += txn.len();
            for pair in times.windows(2) {
                prop_assert!(
                    pair[1].saturating_since(pair[0]) <= window,
                    "intra-transaction gap exceeds the window"
                );
            }
            if let Some(end) = previous_end {
                prop_assert!(
                    times[0].saturating_since(end) > window,
                    "consecutive transactions not separated by the window"
                );
            }
            previous_end = Some(*times.last().expect("non-empty"));
        }
        prop_assert_eq!(cursor, events.len());
    }

    /// Emitted transactions carry no duplicate extents when dedup is on.
    #[test]
    fn dedup_leaves_no_duplicates(events in events_strategy()) {
        let txns = Monitor::new(MonitorConfig::default()).into_transactions(events);
        for txn in &txns {
            let unique = txn.unique_extents();
            prop_assert_eq!(unique.len(), txn.len());
        }
    }

    /// The dynamic window always stays within its configured clamp.
    #[test]
    fn dynamic_window_stays_clamped(events in events_strategy()) {
        let min = Duration::from_micros(20);
        let max = Duration::from_micros(500);
        let config = MonitorConfig::new(WindowPolicy::Dynamic {
            multiplier: 2.0,
            min,
            max,
        });
        let mut monitor = Monitor::new(config);
        for event in events {
            monitor.push(event);
            let w = monitor.current_window();
            prop_assert!(w >= min && w <= max, "window {w:?} out of clamp");
        }
    }
}

/// A small arbitrary transaction stream: extents drawn from a tight
/// block range so pairs recur, 1–4 extents per transaction.
fn transactions_strategy() -> impl Strategy<Value = Vec<rtdac_types::Transaction>> {
    prop::collection::vec(prop::collection::vec(0u64..24, 1..5), 1..60).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, blocks)| {
                let mut txn = rtdac_types::Transaction::new(Timestamp::from_micros(i as u64));
                for block in blocks {
                    txn.push(Extent::new(block * 8, 4).expect("valid extent"), IoOp::Read);
                }
                txn
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Routed dispatch is a pure refactoring of broadcast: applying a
    /// router's work lists leaves every shard's tables bit-for-bit
    /// identical to `process_partition` over the full stream — even with
    /// tiny tables where eviction order is observable.
    #[test]
    fn routed_work_lists_match_broadcast_per_shard(
        txns in transactions_strategy(),
        shards in 1usize..6,
    ) {
        use rtdac_monitor::{Router, RouterConfig};
        use rtdac_synopsis::{AnalyzerConfig, ShardedAnalyzer};

        let config = AnalyzerConfig::with_capacity(8).item_capacity(4);
        let mut broadcast = ShardedAnalyzer::new(config.clone(), shards);
        for t in &txns {
            broadcast.process(t);
        }

        let mut router = Router::new(RouterConfig::new(shards));
        let mut routed = ShardedAnalyzer::new(config, shards).into_shards();
        for chunk in txns.chunks(16) {
            let batch = router.route(chunk.to_vec());
            for (shard, work) in routed.iter_mut().zip(&batch.per_shard) {
                work.apply(shard);
            }
        }

        for (b, r) in broadcast.shards().iter().zip(&routed) {
            prop_assert_eq!(b.snapshot(), r.snapshot());
        }
    }

    /// With hot-pair splitting enabled, merged tallies stay exact: the
    /// summed frequent-pair view equals the single-threaded analyzer's,
    /// whatever the split decisions were.
    #[test]
    fn split_merge_is_count_exact(
        txns in transactions_strategy(),
        shards in 2usize..6,
    ) {
        use rtdac_monitor::{Router, RouterConfig, SplitConfig};
        use rtdac_synopsis::{AnalyzerConfig, OnlineAnalyzer, ShardedAnalyzer};

        let config = AnalyzerConfig::with_capacity(64 * 1024);
        let mut single = OnlineAnalyzer::new(config.clone());
        for t in &txns {
            single.process(t);
        }
        let mut expected = single.frequent_pairs(1);
        expected.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

        let split = SplitConfig { hot_fraction: 0.05, warmup: 8, ..SplitConfig::default() };
        let mut router = Router::new(RouterConfig::new(shards).split(split));
        let mut shard_tables = ShardedAnalyzer::new(config.clone(), shards).into_shards();
        for chunk in txns.chunks(16) {
            let batch = router.route(chunk.to_vec());
            for (shard, work) in shard_tables.iter_mut().zip(&batch.per_shard) {
                work.apply(shard);
            }
        }
        let merged = ShardedAnalyzer::from_routed_shards(
            config,
            shard_tables,
            txns.len() as u64,
            true,
        );
        prop_assert_eq!(merged.frequent_pairs(1), expected);
        prop_assert_eq!(merged.stats().pairs, single.stats().pairs);
    }
}
