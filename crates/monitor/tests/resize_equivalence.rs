//! End-to-end equivalence of elastic resize: a pipeline that grows or
//! shrinks its stage pools mid-stream must report exactly the
//! correlations of a pipeline that never resized — and of the paper's
//! single-threaded reference analyzer — on the skewed hot-pair
//! workload, with and without hot-pair splitting.

use rtdac_monitor::{Dispatch, IngestPipeline, MonitorConfig, PipelineConfig, SplitConfig};
use rtdac_synopsis::{Admission, AnalyzerConfig, ReferenceAnalyzer};
use rtdac_types::{ExtentPair, Transaction};
use rtdac_workloads::SkewedSpec;

fn skewed_transactions() -> Vec<Transaction> {
    SkewedSpec::new()
        .transactions(4_000)
        .hot_fraction(0.4)
        .seed(42)
        .generate()
        .transactions
}

/// A resize point: after `at` transactions have been pushed, retarget
/// the pool to `shards` x `routers`.
type Schedule<'a> = &'a [(usize, usize, usize)];

/// Streams the workload through a pipeline, resizing at the scheduled
/// points, and returns the merged frequent-pair view plus final stats.
fn run_with_resizes(
    transactions: &[Transaction],
    config: &AnalyzerConfig,
    pipeline_config: PipelineConfig,
    schedule: Schedule,
) -> (
    Vec<(ExtentPair, u32)>,
    rtdac_monitor::PipelineStats,
    rtdac_synopsis::AnalyzerStats,
) {
    let mut pipeline =
        IngestPipeline::new(MonitorConfig::default(), config.clone(), pipeline_config);
    let mut next = 0usize;
    for (i, t) in transactions.iter().enumerate() {
        while next < schedule.len() && schedule[next].0 == i {
            let (_, shards, routers) = schedule[next];
            pipeline.resize(shards, routers);
            next += 1;
        }
        pipeline.push_transaction(t.clone());
    }
    let stats = pipeline.stats();
    let analyzer = pipeline.finish();
    let analyzer_stats = analyzer.stats();
    (analyzer.snapshot().frequent_pairs(1), stats, analyzer_stats)
}

fn reference_pairs(
    transactions: &[Transaction],
    config: &AnalyzerConfig,
) -> Vec<(ExtentPair, u32)> {
    let mut reference = ReferenceAnalyzer::new(config.clone());
    for t in transactions {
        reference.process(t);
    }
    reference.snapshot().frequent_pairs(1)
}

#[test]
fn shard_resizes_match_never_resized_and_reference() {
    let transactions = skewed_transactions();
    let config = AnalyzerConfig::with_capacity(64 * 1024);
    let expected = reference_pairs(&transactions, &config);
    assert!(!expected.is_empty(), "workload produced no pairs");

    let third = transactions.len() / 3;
    // Each schedule exercises both directions; the start topology and
    // the schedule together cover grow-only, shrink-only and round-trip
    // shapes across shard counts 1..8.
    let cases: &[(usize, Schedule)] = &[
        (1, &[(third, 2, 1), (2 * third, 4, 1)]), // grow, grow
        (8, &[(third, 4, 1), (2 * third, 1, 1)]), // shrink, shrink
        (2, &[(third, 8, 2), (2 * third, 2, 1)]), // round trip
        (4, &[(1, 2, 1), (transactions.len() - 1, 8, 1)]), // edges of the stream
    ];
    for (start, schedule) in cases {
        let (pairs, stats, _) = run_with_resizes(
            &transactions,
            &config,
            PipelineConfig::with_shards(*start).batch_size(32),
            schedule,
        );
        assert_eq!(
            pairs, expected,
            "start {start} shards, schedule {schedule:?}"
        );
        assert_eq!(stats.resizes, schedule.len() as u64, "start {start} shards");
    }
}

#[test]
fn router_resizes_are_bit_exact_per_shard() {
    // Router resizes move no table state, and the per-epoch sequence
    // restart keeps the deal/fan-in alignment deterministic — so even
    // with tiny tables under eviction churn, every shard's state must
    // stay bit-identical to a broadcast pipeline that never resized.
    let transactions = skewed_transactions();
    let config = AnalyzerConfig::with_capacity(32).item_capacity(16);
    let shards = 4usize;
    let third = transactions.len() / 3;

    let snapshots = |pipeline_config: PipelineConfig, schedule: Schedule| {
        let mut pipeline =
            IngestPipeline::new(MonitorConfig::default(), config.clone(), pipeline_config);
        let mut next = 0usize;
        for (i, t) in transactions.iter().enumerate() {
            while next < schedule.len() && schedule[next].0 == i {
                let (_, s, r) = schedule[next];
                pipeline.resize(s, r);
                next += 1;
            }
            pipeline.push_transaction(t.clone());
        }
        let analyzer = pipeline.finish();
        analyzer
            .shards()
            .iter()
            .map(|shard| shard.snapshot())
            .collect::<Vec<_>>()
    };

    let baseline = snapshots(
        PipelineConfig::with_shards(shards)
            .batch_size(32)
            .dispatch(Dispatch::Broadcast),
        &[],
    );
    let resized = snapshots(
        PipelineConfig::with_shards(shards)
            .batch_size(32)
            .routers(1),
        &[(third, shards, 4), (2 * third, shards, 2)],
    );
    assert_eq!(resized, baseline, "router-only resizes diverged");
}

#[test]
fn resizes_with_splitting_stay_count_exact() {
    // The hardest path: hot-pair splitting is engaged, so shard resizes
    // must reconcile the splitting tracker's per-shard tallies through
    // the snapshot drain/re-seed — merged counts must stay exact.
    let transactions = skewed_transactions();
    let config = AnalyzerConfig::with_capacity(64 * 1024);
    let expected = reference_pairs(&transactions, &config);
    let third = transactions.len() / 3;

    let split = SplitConfig {
        hot_fraction: 0.2, // the hot pair carries ~40% of records
        warmup: 64,
        ..SplitConfig::default()
    };
    for routers in [1usize, 2] {
        let (pairs, stats, analyzer_stats) = run_with_resizes(
            &transactions,
            &config,
            PipelineConfig::with_shards(2)
                .routers(routers)
                .batch_size(32)
                .split(split.clone()),
            &[(third, 4, routers), (2 * third, 2, routers)],
        );
        assert!(
            stats.split_records > 100,
            "{routers} routers: hot pair never split ({} records)",
            stats.split_records
        );
        assert_eq!(pairs, expected, "split, {routers} routers");
        // Tally reconciliation must not invent or lose pair records.
        let mut reference = ReferenceAnalyzer::new(config.clone());
        for t in &transactions {
            reference.process(t);
        }
        assert_eq!(analyzer_stats.pairs, reference.stats().pairs);
    }
}

#[test]
fn explicit_admission_off_matches_default_across_resizes() {
    // The resize path re-seeds shards through `split_across`, which
    // also carries the admission policy; an explicit `Admission::Off`
    // must replay a grow + shrink schedule to exactly the defaulted
    // config's report (and the reference's).
    let transactions = skewed_transactions();
    let defaulted = AnalyzerConfig::with_capacity(64 * 1024);
    let explicit = defaulted.clone().admission(Admission::Off);
    let expected = reference_pairs(&transactions, &defaulted);
    let third = transactions.len() / 3;
    let schedule: Schedule = &[(third, 4, 2), (2 * third, 2, 1)];

    for config in [&defaulted, &explicit] {
        let (pairs, _, stats) = run_with_resizes(
            &transactions,
            config,
            PipelineConfig::with_shards(2).routers(2).batch_size(32),
            schedule,
        );
        assert_eq!(pairs, expected, "admission {:?}", config.admission);
        assert_eq!(stats.pair_rejections, 0, "Off must reject nothing");
    }
}

#[test]
fn stats_stay_cumulative_across_resizes() {
    // Scalar stats must survive the pool teardown: transaction, batch
    // and record counts accumulate across epochs, and every resize is
    // recorded with its observed topology transition.
    let transactions = skewed_transactions();
    let config = AnalyzerConfig::with_capacity(64 * 1024);
    let half = transactions.len() / 2;

    let mut pipeline = IngestPipeline::new(
        MonitorConfig::default(),
        config,
        PipelineConfig::with_shards(2).routers(2).batch_size(32),
    );
    for t in &transactions[..half] {
        pipeline.push_transaction(t.clone());
    }
    let before = pipeline.stats();
    assert!(pipeline.resize(4, 1));
    for t in &transactions[half..] {
        pipeline.push_transaction(t.clone());
    }
    let after = pipeline.stats();

    assert_eq!(after.transactions, transactions.len() as u64);
    assert!(after.transactions > before.transactions);
    assert!(
        after.batches > before.batches,
        "batch count reset by resize"
    );
    assert_eq!(after.resizes, 1);
    assert!(after.resize_nanos > 0);
    // Epoch-local vectors reflect the *current* topology only.
    assert_eq!(after.routed_transactions.len(), 4);
    assert_eq!(after.shard_ring_highwater.len(), 4);

    let events = pipeline.resize_events().to_vec();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].from.to_string(), "2s x 2r");
    assert_eq!(events[0].to.to_string(), "4s x 1r");
    assert!(events[0].reseeded, "shard-count change must re-seed");

    let analyzer = pipeline.finish();
    assert_eq!(analyzer.stats().transactions, transactions.len() as u64);
}
