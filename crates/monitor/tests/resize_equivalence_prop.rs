//! Property tests for elastic resize: at *arbitrary* resize points —
//! random shard counts, router counts and batch indices — a resized
//! pipeline's merged frequent-pair view must be identical to a pipeline
//! that never resized, on both uniform and skewed streams.

use proptest::prelude::*;
use rtdac_monitor::{IngestPipeline, MonitorConfig, PipelineConfig, SplitConfig};
use rtdac_synopsis::AnalyzerConfig;
use rtdac_types::{Extent, ExtentPair, IoOp, Timestamp, Transaction};
use rtdac_workloads::SkewedSpec;

/// A uniform stream: extents drawn evenly from a tight block range so
/// pairs recur, 1–4 extents per transaction.
fn uniform_transactions_strategy() -> impl Strategy<Value = Vec<Transaction>> {
    prop::collection::vec(prop::collection::vec(0u64..24, 1..5), 30..120).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, blocks)| {
                let mut txn = Transaction::new(Timestamp::from_micros(i as u64));
                for block in blocks {
                    txn.push(Extent::new(block * 8, 4).expect("valid extent"), IoOp::Read);
                }
                txn
            })
            .collect()
    })
}

/// A skewed stream: one hot pair plus a Zipf-weighted background, the
/// workload the splitting tracker exists to serve.
fn skewed_transactions_strategy() -> impl Strategy<Value = Vec<Transaction>> {
    (0u64..1_000).prop_map(|seed| {
        SkewedSpec::new()
            .transactions(600)
            .hot_fraction(0.4)
            .seed(seed)
            .generate()
            .transactions
    })
}

/// A random resize schedule: up to three (transaction index, shards,
/// routers) points, applied in stream order.
fn schedule_strategy(stream_len: usize) -> impl Strategy<Value = Vec<(usize, usize, usize)>> {
    prop::collection::vec((0..stream_len, 1usize..6, 1usize..4), 1..4).prop_map(|mut points| {
        points.sort_by_key(|p| p.0);
        points
    })
}

fn run(
    transactions: &[Transaction],
    config: &AnalyzerConfig,
    pipeline_config: PipelineConfig,
    schedule: &[(usize, usize, usize)],
) -> Vec<(ExtentPair, u32)> {
    let mut pipeline =
        IngestPipeline::new(MonitorConfig::default(), config.clone(), pipeline_config);
    let mut next = 0usize;
    for (i, t) in transactions.iter().enumerate() {
        while next < schedule.len() && schedule[next].0 == i {
            let (_, shards, routers) = schedule[next];
            pipeline.resize(shards, routers);
            next += 1;
        }
        pipeline.push_transaction(t.clone());
    }
    pipeline.finish().snapshot().frequent_pairs(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Uniform stream, random resize points: the resized pipeline's
    /// frequent pairs equal the never-resized pipeline's.
    #[test]
    fn uniform_random_resizes_match_never_resized(
        txns in uniform_transactions_strategy(),
        start_shards in 1usize..6,
        start_routers in 1usize..4,
        schedule_seed in prop::collection::vec((0usize..120, 1usize..6, 1usize..4), 1..4),
    ) {
        let mut schedule: Vec<_> = schedule_seed
            .into_iter()
            .map(|(at, s, r)| (at % txns.len().max(1), s, r))
            .collect();
        schedule.sort_by_key(|p| p.0);
        let config = AnalyzerConfig::with_capacity(64 * 1024);
        let base = PipelineConfig::with_shards(start_shards)
            .routers(start_routers)
            .batch_size(16);
        let expected = run(&txns, &config, base.clone(), &[]);
        let resized = run(&txns, &config, base, &schedule);
        prop_assert_eq!(resized, expected);
    }

    /// Skewed stream with splitting engaged, random resize points: the
    /// splitting tracker's tallies must reconcile through every
    /// drain/re-seed, keeping merged counts exact.
    #[test]
    fn skewed_random_resizes_match_never_resized(
        txns in skewed_transactions_strategy(),
        schedule in schedule_strategy(600),
        start_shards in 1usize..6,
    ) {
        let split = SplitConfig { hot_fraction: 0.2, warmup: 32, ..SplitConfig::default() };
        let config = AnalyzerConfig::with_capacity(64 * 1024);
        let base = PipelineConfig::with_shards(start_shards)
            .batch_size(16)
            .split(split);
        let expected = run(&txns, &config, base.clone(), &[]);
        let resized = run(&txns, &config, base, &schedule);
        prop_assert_eq!(resized, expected);
    }
}
