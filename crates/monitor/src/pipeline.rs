//! The batched, sharded ingestion front-end: block events in, a merged
//! correlation synopsis out, with the per-shard synopsis work running on
//! dedicated worker threads.
//!
//! ```text
//!  events ─▶ Monitor ─▶ batch ─▶ Arc<Vec<Transaction>> ─┬─▶ ring 0 ─▶ worker 0 (shard 0 tables)
//!                                (broadcast, refcounted) ├─▶ ring 1 ─▶ worker 1 (shard 1 tables)
//!                                                        └─▶ ring N ─▶ worker N (shard N tables)
//! ```
//!
//! Each worker owns one shard of a
//! [`ShardedAnalyzer`](rtdac_synopsis::ShardedAnalyzer) and calls
//! [`OnlineAnalyzer::process_partition`] on every transaction of every
//! batch, recording only the pairs (and their member extents) the shard
//! owns — the routing invariant of DESIGN.md §8, so shards share nothing
//! and need no locks. Batches amortize ring traffic: one `Arc` clone per
//! shard per `batch_size` transactions.
//!
//! [`IngestPipeline::finish`] flushes the monitor and the open batch,
//! closes the rings (workers drain, then exit) and reassembles the
//! shards into a `ShardedAnalyzer` for querying — so results are
//! identical to feeding the same events through the sequential sharded
//! analyzer, and (by its equivalence guarantees) to the single-threaded
//! [`OnlineAnalyzer`].
//!
//! # Examples
//!
//! ```
//! use rtdac_monitor::{IngestPipeline, MonitorConfig, PipelineConfig};
//! use rtdac_synopsis::AnalyzerConfig;
//! use rtdac_types::{Extent, IoEvent, IoOp, Timestamp};
//! use std::time::Duration;
//!
//! let mut pipeline = IngestPipeline::new(
//!     MonitorConfig::default(),
//!     AnalyzerConfig::with_capacity(1024),
//!     PipelineConfig::with_shards(2),
//! );
//! for i in 0..100u64 {
//!     for block in [10, 900] {
//!         pipeline.push(IoEvent::new(
//!             Timestamp::from_millis(i * 50),
//!             1,
//!             IoOp::Read,
//!             Extent::new(block, 4).unwrap(),
//!             Duration::from_micros(40),
//!         ));
//!     }
//! }
//! let analyzer = pipeline.finish();
//! assert_eq!(analyzer.frequent_pairs(50).len(), 1);
//! ```
//!
//! [`OnlineAnalyzer`]: rtdac_synopsis::OnlineAnalyzer
//! [`OnlineAnalyzer::process_partition`]: rtdac_synopsis::OnlineAnalyzer::process_partition

use std::sync::Arc;
use std::thread::JoinHandle;

use rtdac_synopsis::{AnalyzerConfig, ShardedAnalyzer};
use rtdac_types::{IoEvent, Transaction};

use crate::monitor::{Monitor, MonitorConfig};
use crate::spsc;

/// Shape of the parallel pipeline: how many shards, how transactions are
/// batched, and how deep each shard's ring is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Number of shard worker threads.
    pub shard_count: usize,
    /// Transactions per broadcast batch.
    pub batch_size: usize,
    /// Batches each shard ring can buffer before the front-end blocks
    /// (bounded: a slow shard applies backpressure instead of growing an
    /// unbounded queue).
    pub ring_capacity: usize,
}

impl PipelineConfig {
    /// A pipeline with `shard_count` shards and the default batch size
    /// (64 transactions) and ring depth (64 batches).
    ///
    /// # Panics
    ///
    /// Panics if `shard_count == 0`.
    pub fn with_shards(shard_count: usize) -> Self {
        assert!(shard_count > 0, "need at least one shard");
        PipelineConfig {
            shard_count,
            batch_size: 64,
            ring_capacity: 64,
        }
    }

    /// Sets the transactions-per-batch granularity.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Sets the per-shard ring depth in batches.
    ///
    /// # Panics
    ///
    /// Panics if `ring_capacity == 0`.
    pub fn ring_capacity(mut self, ring_capacity: usize) -> Self {
        assert!(ring_capacity > 0, "ring capacity must be positive");
        self.ring_capacity = ring_capacity;
        self
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::with_shards(4)
    }
}

/// Lifetime counters of an [`IngestPipeline`]'s front-end.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Transactions enqueued toward the shards.
    pub transactions: u64,
    /// Batches broadcast to the shard rings.
    pub batches: u64,
}

type Batch = Arc<Vec<Transaction>>;

/// The multi-threaded ingestion pipeline: monitor front-end, batched
/// broadcast over SPSC rings, one synopsis shard per worker thread.
pub struct IngestPipeline {
    monitor: Monitor,
    analyzer_config: AnalyzerConfig,
    shard_count: usize,
    batch_size: usize,
    batch: Vec<Transaction>,
    senders: Vec<spsc::Sender<Batch>>,
    workers: Vec<JoinHandle<rtdac_synopsis::OnlineAnalyzer>>,
    stats: PipelineStats,
}

impl IngestPipeline {
    /// Builds the pipeline and spawns one worker thread per shard.
    pub fn new(
        monitor_config: MonitorConfig,
        analyzer_config: AnalyzerConfig,
        pipeline_config: PipelineConfig,
    ) -> Self {
        let shard_count = pipeline_config.shard_count;
        let shards = ShardedAnalyzer::new(analyzer_config.clone(), shard_count).into_shards();
        let mut senders = Vec::with_capacity(shard_count);
        let mut workers = Vec::with_capacity(shard_count);
        for (index, mut shard) in shards.into_iter().enumerate() {
            let (tx, rx) = spsc::channel::<Batch>(pipeline_config.ring_capacity);
            senders.push(tx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("rtdac-shard-{index}"))
                    .spawn(move || {
                        while let Some(batch) = rx.recv() {
                            for transaction in batch.iter() {
                                shard.process_partition(transaction, index, shard_count);
                            }
                        }
                        shard
                    })
                    .expect("spawning shard worker"),
            );
        }
        IngestPipeline {
            monitor: Monitor::new(monitor_config),
            analyzer_config,
            shard_count,
            batch_size: pipeline_config.batch_size,
            batch: Vec::with_capacity(pipeline_config.batch_size),
            senders,
            workers,
            stats: PipelineStats::default(),
        }
    }

    /// Offers one block-layer event to the monitor; a completed
    /// transaction is batched toward the shards.
    pub fn push(&mut self, event: IoEvent) {
        if let Some(transaction) = self.monitor.push(event) {
            self.enqueue(transaction);
        }
    }

    /// Enqueues an already-windowed transaction, bypassing the monitor
    /// (replay and benchmark path).
    pub fn push_transaction(&mut self, transaction: Transaction) {
        self.enqueue(transaction);
    }

    fn enqueue(&mut self, transaction: Transaction) {
        self.stats.transactions += 1;
        self.batch.push(transaction);
        if self.batch.len() >= self.batch_size {
            self.flush_batch();
        }
    }

    /// Broadcasts the open batch to every shard ring (blocking while
    /// rings are full). Called automatically at batch-size granularity
    /// and by [`finish`](IngestPipeline::finish); call it directly to cap
    /// latency when the event stream pauses.
    pub fn flush_batch(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        self.stats.batches += 1;
        let batch: Batch = Arc::new(std::mem::take(&mut self.batch));
        self.batch.reserve(self.batch_size);
        for sender in &self.senders {
            // A send fails only if the worker died; its panic surfaces
            // when finish() joins.
            let _ = sender.send(Arc::clone(&batch));
        }
    }

    /// The monitor front-end (window state, latency average, stats).
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Front-end counters (transactions enqueued, batches broadcast).
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Number of shard workers.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Flushes the monitor and the open batch, closes the rings, joins
    /// the workers and reassembles their shards into a queryable
    /// [`ShardedAnalyzer`].
    ///
    /// # Panics
    ///
    /// Propagates a shard worker's panic, if one occurred.
    pub fn finish(mut self) -> ShardedAnalyzer {
        if let Some(transaction) = self.monitor.flush() {
            self.batch.push(transaction);
        }
        self.flush_batch();
        // Dropping the senders closes every ring; workers drain and
        // return their shards.
        self.senders.clear();
        let shards: Vec<_> = self
            .workers
            .drain(..)
            .map(|w| w.join().expect("shard worker panicked"))
            .collect();
        ShardedAnalyzer::from_shards(self.analyzer_config.clone(), shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdac_synopsis::OnlineAnalyzer;
    use rtdac_types::{Extent, IoOp, Timestamp};
    use std::time::Duration;

    fn event(us: u64, block: u64) -> IoEvent {
        IoEvent::new(
            Timestamp::from_micros(us),
            1,
            IoOp::Read,
            Extent::new(block, 1).unwrap(),
            Duration::from_micros(40),
        )
    }

    fn events() -> Vec<IoEvent> {
        // Correlated bursts (two extents close in time) separated by
        // window-breaking gaps.
        let mut out = Vec::new();
        for i in 0..500u64 {
            let base = i * 10_000;
            out.push(event(base, 10 + (i % 5)));
            out.push(event(base + 20, 500 + (i % 5)));
        }
        out
    }

    #[test]
    fn pipeline_matches_sequential_analysis() {
        let monitor_config =
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(100)));
        let analyzer_config = AnalyzerConfig::with_capacity(4096);

        // Sequential ground truth: same monitor, single-threaded analyzer.
        let transactions = Monitor::new(monitor_config.clone()).into_transactions(events());
        let mut single = OnlineAnalyzer::new(analyzer_config.clone());
        for t in &transactions {
            single.process(t);
        }
        let expected = single.snapshot().frequent_pairs(1);
        assert!(!expected.is_empty());

        for shards in [1usize, 2, 4] {
            let mut pipeline = IngestPipeline::new(
                monitor_config.clone(),
                analyzer_config.clone(),
                PipelineConfig::with_shards(shards)
                    .batch_size(16)
                    .ring_capacity(4),
            );
            for e in events() {
                pipeline.push(e);
            }
            let analyzer = pipeline.finish();
            assert_eq!(
                analyzer.snapshot().frequent_pairs(1),
                expected,
                "{shards} shards"
            );
        }
    }

    #[test]
    fn partial_batch_is_flushed_on_finish() {
        let mut pipeline = IngestPipeline::new(
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(100))),
            AnalyzerConfig::with_capacity(64),
            // Batch size far above the transaction count: nothing would
            // ship without the finish() flush.
            PipelineConfig::with_shards(2).batch_size(1024),
        );
        pipeline.push(event(0, 1));
        pipeline.push(event(10, 2));
        let analyzer = pipeline.finish();
        assert_eq!(analyzer.snapshot().pairs.len(), 1);
    }

    #[test]
    fn stats_count_batches_and_transactions() {
        let mut pipeline = IngestPipeline::new(
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(10))),
            AnalyzerConfig::with_capacity(64),
            PipelineConfig::with_shards(1).batch_size(2),
        );
        for i in 0..8u64 {
            // 1 ms apart: every event closes the previous transaction.
            pipeline.push(event(i * 1000, i));
        }
        let stats = pipeline.stats();
        assert_eq!(stats.transactions, 7); // the 8th is still open
        assert_eq!(stats.batches, 3); // batches of 2, one pending
        pipeline.finish();
    }

    #[test]
    fn backpressure_does_not_deadlock() {
        // Tiny rings and batches: the front-end must block and resume
        // rather than drop or deadlock.
        let mut pipeline = IngestPipeline::new(
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(10))),
            AnalyzerConfig::with_capacity(1024),
            PipelineConfig::with_shards(2)
                .batch_size(1)
                .ring_capacity(1),
        );
        for i in 0..2_000u64 {
            pipeline.push(event(i * 1000, i % 50));
        }
        let analyzer = pipeline.finish();
        assert_eq!(analyzer.stats().transactions, 2_000);
    }
}
