//! The batched, sharded ingestion front-end: block events in, a merged
//! correlation synopsis out, with the per-shard synopsis work running on
//! dedicated worker threads and — when configured — the routing stage
//! itself scaled across parallel router workers.
//!
//! ```text
//!                                  ┌─▶ router 0 ─┬─▶ ring (0,0) ─┐
//!  events ─▶ Monitor ─▶ batch seq n┤  (batches   ├─▶ ring (0,1) ─┼─▶ worker s merges its
//!            (dealt to router n%R) └─▶ router R-1┴─▶ ring (R-1,s)┘   R rings in seq order
//! ```
//!
//! Two dispatch modes, selected by [`Dispatch`]:
//!
//! * **[`Dispatch::Routed`]** (the default) — a [`Router`] deduplicates
//!   each transaction and hashes each pair exactly once, partitioning
//!   the records into per-shard [`WorkList`]s which each shard applies
//!   verbatim via [`OnlineAnalyzer::process_routed`] — no re-dedup, no
//!   re-hashing. Total CPU across shards is O(stream), not O(stream ×
//!   shards). Optional [`SplitConfig`] spreads hot pairs round-robin;
//!   the merged analyzer then sums partial tallies
//!   (`ShardedAnalyzer::from_routed_shards`).
//!
//!   With [`PipelineConfig::routers`] `== 1` the router runs inline on
//!   the caller's thread. With `R >= 2` the front-end deals whole
//!   batches round-robin to R router worker threads (batch `n` to
//!   router `n % R`), and every shard owns one ring *per router*,
//!   reading them in `n % R` order — the **sequence-ordered fan-in**.
//!   Because the batch sequence is a single monotone counter and each
//!   ring is FIFO, that merge replays the exact global batch order, so
//!   per-shard apply order (and therefore shard table state) is
//!   bit-identical to the single-router and broadcast paths, for any R.
//!
//!   Buffers recycle instead of churning the allocator: shard workers
//!   clear each applied `WorkList` and hand it back to its router over
//!   a return ring, and routers hand emptied batch `Vec`s back to the
//!   front-end the same way. Each return ring is prefilled at
//!   construction with more buffers than its forward path can hold in
//!   flight, so a producer's refill always finds a recycled buffer and
//!   the routed pipeline performs **zero heap allocations per batch**
//!   in steady state (the `zero_alloc` integration test pins this down
//!   with a counting global allocator).
//!
//! * **[`Dispatch::Broadcast`]** — the PR-1 behaviour, kept for
//!   comparison benchmarks: every shard receives every batch and runs
//!   [`OnlineAnalyzer::process_partition`], re-deduplicating and
//!   re-hashing the full stream to discard the (N−1)/N of pairs it does
//!   not own.
//!
//! Batches amortize ring traffic either way; rings are bounded, so a
//! slow stage applies backpressure instead of growing an unbounded
//! queue. Time the *front-end* spends blocked on a full ring is
//! accounted in [`PipelineStats::stall_nanos`]; time *router workers*
//! spend blocked on full shard rings lands in
//! [`PipelineStats::routing_stall_nanos`] — both are queueing delay,
//! not service time.
//!
//! # Elastic stage pools
//!
//! The router and shard stages live in a *stage pool* that can be
//! resized online (routed dispatch only). [`IngestPipeline::resize`]
//! runs the **quiesce → snapshot → re-seed** protocol at a batch
//! boundary:
//!
//! 1. **Quiesce** — the open batch is flushed and the front-end's
//!    senders are dropped. The batch sequence counter is monotone, so a
//!    closed-and-empty ring is a barrier: routers drain every dispatched
//!    batch and exit, which closes the shard rings; shard workers drain
//!    to the same barrier and return their [`OnlineAnalyzer`]s.
//! 2. **Snapshot / re-seed** — if the shard count changes, the shard
//!    tables are drained into a partition-invariant
//!    [`SynopsisSnapshot`](rtdac_synopsis::SynopsisSnapshot) and
//!    re-seeded across the new shard count (same tally-summing merge
//!    rule as the final `ShardedAnalyzer` merge, so `frequent_pairs`
//!    is count-identical to never having resized). A router-only
//!    resize is the cheap path: no table state moves — only the dealing
//!    modulus and the fan-in width change.
//! 3. **Re-spawn** — a fresh pool is spawned at the new topology, with
//!    every return ring prefilled to the new forward bound, so the
//!    zero-allocation steady state is re-established immediately.
//!
//! Resizes can be issued manually or by an
//! [`AdaptiveController`](crate::AdaptiveController) watching the ring
//! high-water marks and the per-stage busy split that
//! [`PipelineStats`] now exposes (see [`PipelineConfig::adaptive`]).
//!
//! # Quiesce-free live queries
//!
//! With [`PipelineConfig::publish_interval`] set, every shard worker
//! publishes an incremental state delta
//! ([`ShardDelta`](rtdac_synopsis::ShardDelta)) at epoch boundaries —
//! every N dispatched batches — into preallocated buffers that
//! circulate through a pair of SPSC rings per shard, exactly like the
//! router's recycled `WorkList`s: the worker takes an empty buffer
//! from its return ring, extracts the delta, stamps the epoch (the
//! cumulative batch count, monotone across resizes) and ships it;
//! [`IngestPipeline::poll_live`] folds shipped deltas into a
//! [`LiveView`](rtdac_synopsis::LiveView) on the caller's thread and
//! recycles the buffers. Shard workers never wait on the reader: if no
//! buffer is back yet the publish is deferred to the next work item
//! (counted in [`PipelineStats::epoch_publish_skips`]; the eventual
//! delta covers the merged interval). The view is bit-exact to a
//! quiesced snapshot at its epoch's batch boundary and lags the ingest
//! frontier by at most one publish interval once in-flight deltas are
//! folded — see DESIGN.md §15 for the protocol and its memory-ordering
//! argument. Resizes compose: quiesce drains in-flight deltas into the
//! view, and a shard-count change re-primes fresh mirrors from the
//! re-seeded tables before the new pool spawns.
//!
//! [`IngestPipeline::finish`] flushes the monitor and the open batch,
//! quiesces the pool the same way and reassembles the shards into a
//! [`ShardedAnalyzer`](rtdac_synopsis::ShardedAnalyzer) for querying —
//! with splitting off, results are identical to feeding the same events
//! through the single-threaded [`OnlineAnalyzer`]; with splitting on,
//! tallies are still exact (summed at merge time) and ordering is
//! stable.
//!
//! # Examples
//!
//! ```
//! use rtdac_monitor::{IngestPipeline, MonitorConfig, PipelineConfig};
//! use rtdac_synopsis::AnalyzerConfig;
//! use rtdac_types::{Extent, IoEvent, IoOp, Timestamp};
//! use std::time::Duration;
//!
//! let mut pipeline = IngestPipeline::new(
//!     MonitorConfig::default(),
//!     AnalyzerConfig::with_capacity(1024),
//!     PipelineConfig::with_shards(2).routers(2),
//! );
//! for i in 0..100u64 {
//!     for block in [10, 900] {
//!         pipeline.push(IoEvent::new(
//!             Timestamp::from_millis(i * 50),
//!             1,
//!             IoOp::Read,
//!             Extent::new(block, 4).unwrap(),
//!             Duration::from_micros(40),
//!         ));
//!     }
//! }
//! // Grow the pool mid-stream: state is re-seeded, results unchanged.
//! pipeline.resize(4, 1);
//! let analyzer = pipeline.finish();
//! assert_eq!(analyzer.frequent_pairs(50).len(), 1);
//! ```
//!
//! [`OnlineAnalyzer`]: rtdac_synopsis::OnlineAnalyzer
//! [`OnlineAnalyzer::process_partition`]: rtdac_synopsis::OnlineAnalyzer::process_partition
//! [`OnlineAnalyzer::process_routed`]: rtdac_synopsis::OnlineAnalyzer::process_routed

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rtdac_synopsis::{
    AnalyzerConfig, LiveView, OnlineAnalyzer, ShardDelta, ShardedAnalyzer, SynopsisSnapshot,
};
use rtdac_types::{router_for_batch, Epoch, IoEvent, Topology, Transaction};

use crate::controller::{AdaptiveController, ControllerConfig};
use crate::monitor::{Monitor, MonitorConfig};
use crate::pool::{send_counting_stalls, Batch, FrontEnd, ShardWork, StagePool};
use crate::router::SplitConfig;

/// How the front-end hands work to the shards.
#[derive(Clone, Debug, PartialEq)]
pub enum Dispatch {
    /// Every shard receives every batch and re-derives its own partition
    /// (dedup + hash replicated per shard). Kept for comparison; routed
    /// dispatch supersedes it.
    Broadcast,
    /// Each record is routed to its owning shard exactly once via a
    /// [`Router`] (or several — see [`PipelineConfig::routers`]);
    /// `split` optionally spreads hot pairs across shards.
    Routed {
        /// Hot-pair splitting; `None` routes every pair by hash.
        split: Option<SplitConfig>,
    },
}

impl Default for Dispatch {
    fn default() -> Self {
        Dispatch::Routed { split: None }
    }
}

/// Shape of the parallel pipeline: how many shards and routers, how
/// transactions are batched, how deep each ring is, and how work is
/// dispatched. `shard_count` and `routers` are the *initial* topology;
/// [`IngestPipeline::resize`] (or an attached controller) can change
/// the live topology later.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineConfig {
    /// Number of shard worker threads.
    pub shard_count: usize,
    /// Router workers for routed dispatch (default 1). `1` routes
    /// inline on the caller's thread; `R >= 2` spawns R router threads
    /// and deals batches to them round-robin by sequence number, with
    /// every shard merging its R rings back in sequence order (shard
    /// state stays bit-exact for any R). Ignored under broadcast.
    pub routers: usize,
    /// Transactions per batch.
    pub batch_size: usize,
    /// Batches each ring can buffer before its producer blocks
    /// (bounded: a slow stage applies backpressure instead of growing an
    /// unbounded queue).
    pub ring_capacity: usize,
    /// Dispatch mode (default: routed, no splitting).
    pub dispatch: Dispatch,
    /// Occupancy-driven resize controller; `None` (the default) keeps
    /// the topology fixed unless [`IngestPipeline::resize`] is called.
    /// Requires routed dispatch.
    pub controller: Option<ControllerConfig>,
    /// Epoch length for live-query publishing, in dispatched batches:
    /// every shard worker publishes a state delta toward the
    /// [`LiveView`] each time this many batches have been applied.
    /// `0` (the default) disables publishing entirely — no rings, no
    /// buffers, no per-batch overhead.
    pub publish_interval_batches: usize,
    /// Delta buffers circulating per shard when publishing is enabled
    /// (default 2: one in flight, one being refilled). More buffers
    /// tolerate a slower reader before publishes start merging epochs.
    pub publish_buffers: usize,
}

impl PipelineConfig {
    /// A pipeline with `shard_count` shards, routed dispatch, one
    /// (inline) router, and the default batch size (64 transactions)
    /// and ring depth (64 batches).
    ///
    /// # Panics
    ///
    /// Panics if `shard_count == 0`.
    pub fn with_shards(shard_count: usize) -> Self {
        assert!(shard_count > 0, "need at least one shard");
        PipelineConfig {
            shard_count,
            routers: 1,
            batch_size: 64,
            ring_capacity: 64,
            dispatch: Dispatch::default(),
            controller: None,
            publish_interval_batches: 0,
            publish_buffers: 2,
        }
    }

    /// Sets the number of router workers for routed dispatch.
    ///
    /// # Panics
    ///
    /// Panics if `routers == 0`.
    pub fn routers(mut self, routers: usize) -> Self {
        assert!(routers > 0, "need at least one router");
        self.routers = routers;
        self
    }

    /// Sets the transactions-per-batch granularity.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Sets the per-ring depth in batches.
    ///
    /// # Panics
    ///
    /// Panics if `ring_capacity == 0`.
    pub fn ring_capacity(mut self, ring_capacity: usize) -> Self {
        assert!(ring_capacity > 0, "ring capacity must be positive");
        self.ring_capacity = ring_capacity;
        self
    }

    /// Selects the dispatch mode.
    pub fn dispatch(mut self, dispatch: Dispatch) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Shorthand: broadcast dispatch (the pre-routing behaviour).
    pub fn broadcast(self) -> Self {
        self.dispatch(Dispatch::Broadcast)
    }

    /// Shorthand: routed dispatch with hot-pair splitting enabled.
    pub fn split(self, split: SplitConfig) -> Self {
        self.dispatch(Dispatch::Routed { split: Some(split) })
    }

    /// Attaches an occupancy-driven [`AdaptiveController`] that resizes
    /// the stage pool at batch boundaries.
    pub fn adaptive(mut self, controller: ControllerConfig) -> Self {
        self.controller = Some(controller);
        self
    }

    /// Enables live-query publishing with an epoch every `batches`
    /// dispatched batches (`0` disables it).
    pub fn publish_interval(mut self, batches: usize) -> Self {
        self.publish_interval_batches = batches;
        self
    }

    /// Sets the number of delta buffers circulating per shard.
    ///
    /// # Panics
    ///
    /// Panics if `buffers == 0` (the publish path needs at least one
    /// buffer in circulation).
    pub fn publish_buffers(mut self, buffers: usize) -> Self {
        assert!(buffers > 0, "need at least one delta buffer");
        self.publish_buffers = buffers;
        self
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::with_shards(4)
    }
}

/// Counters of an [`IngestPipeline`]'s front-end.
///
/// Scalar fields are **cumulative** over the pipeline's lifetime,
/// across resizes. Per-stage vectors (`routed_*`, `*_highwater`,
/// `*_busy_nanos`) are **epoch-local**: they describe the current
/// topology only and reset when the pool is resized (their lengths
/// always match the live shard/router counts).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Transactions enqueued toward the shards.
    pub transactions: u64,
    /// Batches dispatched (to the shard rings, or to router workers).
    pub batches: u64,
    /// Ring-full backpressure events on the *caller's* thread: sends
    /// that found a shard ring (inline routing, broadcast) or a router
    /// ring (parallel routing) full and had to block.
    pub stalls: u64,
    /// Total nanoseconds the caller's thread spent blocked on full
    /// rings. Queueing delay, not service time — benchmarks that
    /// measure per-batch service latency subtract this.
    pub stall_nanos: u64,
    /// Parallel routing only: ring-full backpressure events inside the
    /// router workers (a full shard ring blocked a router). Zero with
    /// an inline router, whose blocking is charged to `stalls`.
    pub routing_stalls: u64,
    /// Total nanoseconds router workers spent blocked on full shard
    /// rings (parallel routing only).
    pub routing_stall_nanos: u64,
    /// Routed dispatch only: transactions routed to each shard (a
    /// transaction counts for every shard that received at least one of
    /// its records) since the last resize. Empty under broadcast.
    pub routed_transactions: Vec<u64>,
    /// Routed dispatch only: table records (items + pairs) routed to
    /// each shard since the last resize — the deterministic per-shard
    /// work metric. Empty under broadcast.
    pub routed_ops: Vec<u64>,
    /// Pair records dealt round-robin by hot-pair splitting (0 without
    /// splitting).
    pub split_records: u64,
    /// Resizes applied so far (manual and controller-issued).
    pub resizes: u64,
    /// Total nanoseconds spent inside resizes (quiesce + re-seed +
    /// re-spawn) — the stream is paused for this long in total.
    pub resize_nanos: u64,
    /// Slot count of every work ring (the occupancy denominator for
    /// the high-water marks below): the configured `ring_capacity`
    /// rounded up to a power of two.
    pub ring_slots: u64,
    /// Per shard: the highest occupancy any of its work rings reached
    /// since the last resize, sampled producer-side after every send.
    /// A value at `ring_slots` means the shard saturated and applied
    /// backpressure — the controller's grow signal.
    pub shard_ring_highwater: Vec<u64>,
    /// Per router (parallel routing only): the highest occupancy its
    /// batch ring reached since the last resize. Empty with an inline
    /// router or under broadcast.
    pub batch_ring_highwater: Vec<u64>,
    /// Per router: nanoseconds spent routing (service time, stall time
    /// excluded) since the last resize. The busy half of the routing
    /// stage's busy/stall split; the stall half is
    /// `routing_stall_nanos` (or `stall_nanos` for an inline router).
    pub router_busy_nanos: Vec<u64>,
    /// Per shard: nanoseconds spent applying work (service time; ring
    /// waits excluded) since the last resize. The busy half of the
    /// shard stage's busy/stall split; the stall side of a slow shard
    /// shows up as its ring high-water mark and the producers' stall
    /// counters. With publishing enabled, delta extraction is part of
    /// the service time (it runs inside the worker's timed window).
    pub shard_busy_nanos: Vec<u64>,
    /// Epoch deltas published by shard workers toward the live view
    /// (cumulative across resizes; zero with publishing disabled).
    pub epoch_publishes: u64,
    /// Publish ticks that found no recycled delta buffer — the reader
    /// was behind, so the epoch was merged into the next publish
    /// instead of blocking the worker (cumulative across resizes).
    pub epoch_publish_skips: u64,
}

/// One applied resize: when, from what, to what, and how long the
/// stream was paused for it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResizeEvent {
    /// Batches dispatched before the resize took effect.
    pub batch: u64,
    /// Topology before.
    pub from: Topology,
    /// Topology after.
    pub to: Topology,
    /// Wall nanoseconds of the quiesce → re-seed → re-spawn window.
    pub nanos: u64,
    /// Whether shard tables were drained and re-seeded (`false` for a
    /// router-only resize — the cheap path where no table state moves).
    pub reseeded: bool,
}

/// The multi-threaded ingestion pipeline: monitor front-end, routed (or
/// broadcast) batches over SPSC rings, one synopsis shard per worker
/// thread — and, with [`PipelineConfig::routers`] `>= 2`, a pool of
/// parallel router workers between the two. The router and shard pools
/// are elastic: see [`IngestPipeline::resize`] and the module docs.
pub struct IngestPipeline {
    monitor: Monitor,
    analyzer_config: AnalyzerConfig,
    /// Live configuration: `shard_count` and `routers` track the
    /// current topology across resizes.
    config: PipelineConfig,
    batch: Vec<Transaction>,
    /// The current pool epoch; `None` only transiently inside
    /// resize/finish (never observed by callers).
    pool: Option<StagePool>,
    /// Whether merged tallies must be summed per pair (splitting was
    /// enabled, so a pair's tally may be spread across shards).
    split_tallies: bool,
    controller: Option<AdaptiveController>,
    stats: PipelineStats,
    resize_events: Vec<ResizeEvent>,
    /// The merged live query view; `Some` iff publishing is enabled.
    /// Survives router-only resizes; re-primed from the re-seeded
    /// tables on a shard-count change.
    live: Option<LiveView>,
    /// Quiesced table state while parked (the idle-tenant lifecycle):
    /// the pool is down, its threads joined, and the shard tables
    /// drained into a partition-invariant snapshot. `Some` iff parked;
    /// the next dispatch re-seeds and re-spawns transparently.
    parked: Option<SynopsisSnapshot>,
}

impl IngestPipeline {
    /// Builds the pipeline and spawns one worker thread per shard (plus
    /// one per router when `routers >= 2` under routed dispatch).
    ///
    /// # Panics
    ///
    /// Panics if a controller is configured with broadcast dispatch
    /// (only the routed pool is resizable).
    pub fn new(
        monitor_config: MonitorConfig,
        analyzer_config: AnalyzerConfig,
        pipeline_config: PipelineConfig,
    ) -> Self {
        assert!(pipeline_config.shard_count > 0, "need at least one shard");
        assert!(pipeline_config.routers > 0, "need at least one router");
        let routed = matches!(&pipeline_config.dispatch, Dispatch::Routed { .. });
        assert!(
            routed || pipeline_config.controller.is_none(),
            "the adaptive controller requires routed dispatch"
        );
        let split_tallies = matches!(
            &pipeline_config.dispatch,
            Dispatch::Routed { split: Some(_) }
        );
        let mut shards = ShardedAnalyzer::new(analyzer_config.clone(), pipeline_config.shard_count)
            .into_shards();
        let live = (pipeline_config.publish_interval_batches > 0)
            .then(|| Self::prime_live(&mut shards, &analyzer_config, split_tallies, Epoch::ZERO));
        let pool = StagePool::spawn(shards, &pipeline_config, &analyzer_config, 0);
        let controller = pipeline_config
            .controller
            .clone()
            .map(AdaptiveController::new);
        IngestPipeline {
            monitor: Monitor::new(monitor_config),
            analyzer_config,
            batch: Vec::with_capacity(pipeline_config.batch_size),
            config: pipeline_config,
            pool: Some(pool),
            split_tallies,
            controller,
            stats: PipelineStats::default(),
            resize_events: Vec::new(),
            live,
            parked: None,
        }
    }

    /// Enables delta tracking on every shard and folds each one's
    /// initial delta (a full dump when the tables are non-empty — the
    /// re-seed path) into a fresh [`LiveView`], so the view is exact
    /// from the first poll rather than empty until the first publish.
    fn prime_live(
        shards: &mut [OnlineAnalyzer],
        analyzer_config: &AnalyzerConfig,
        split_tallies: bool,
        epoch: Epoch,
    ) -> LiveView {
        let mut view = LiveView::new(analyzer_config, shards.len(), split_tallies);
        let mut delta = ShardDelta::default();
        for (index, shard) in shards.iter_mut().enumerate() {
            shard.enable_delta_tracking();
            delta.clear();
            shard.extract_delta(&mut delta);
            delta.epoch = epoch;
            view.apply_delta(index, &delta);
        }
        view
    }

    /// Offers one block-layer event to the monitor; a completed
    /// transaction is batched toward the shards.
    pub fn push(&mut self, event: IoEvent) {
        if let Some(transaction) = self.monitor.push(event) {
            self.enqueue(transaction);
        }
    }

    /// Enqueues an already-windowed transaction, bypassing the monitor
    /// (replay and benchmark path).
    pub fn push_transaction(&mut self, transaction: Transaction) {
        self.enqueue(transaction);
    }

    fn enqueue(&mut self, transaction: Transaction) {
        self.stats.transactions += 1;
        self.batch.push(transaction);
        if self.batch.len() >= self.config.batch_size {
            self.flush_batch();
        }
    }

    /// Dispatches the open batch (blocking while rings are full;
    /// blocked time is accounted in [`PipelineStats::stall_nanos`]).
    /// Called automatically at batch-size granularity and by
    /// [`finish`](IngestPipeline::finish); call it directly to cap
    /// latency when the event stream pauses. With a controller
    /// attached, window sampling — and any resulting resize — happens
    /// here, at the batch boundary.
    pub fn flush_batch(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        self.dispatch_batch();
    }

    /// Dispatches an **empty** batch: advances the batch sequence — and
    /// therefore the publish cadence — without carrying any
    /// transactions. Lets a paused event stream reach its next epoch
    /// boundary so shard workers get a work item to publish on (they
    /// only tick between work items; an idle worker never publishes).
    /// Shard state is unaffected: an empty batch routes empty work
    /// lists and broadcasts an empty transaction slice.
    pub fn heartbeat(&mut self) {
        self.flush_batch();
        self.dispatch_batch();
    }

    /// Closes the monitor's open transaction window — emitting its
    /// transaction, if any — and dispatches the open batch. This is
    /// the end-of-stream half of [`finish`](IngestPipeline::finish)
    /// without tearing the pipeline down: after it, every pushed event
    /// is visible to the shards (and, once the publish cadence catches
    /// up, to the live view). Events pushed afterwards start a fresh
    /// window, exactly as an offline oracle would see two separately
    /// flushed streams.
    pub fn flush_window(&mut self) {
        if let Some(transaction) = self.monitor.flush() {
            self.enqueue(transaction);
        }
        self.flush_batch();
    }

    /// Parks the pipeline: flushes the open batch, quiesces the pool at
    /// the sequence barrier (joining every worker thread) and drains
    /// the shard tables into a partition-invariant
    /// [`SynopsisSnapshot`] — the resize protocol's storage form, so
    /// results after a park/resume cycle are count-identical to never
    /// having parked. The monitor's open window and all cumulative
    /// stats are preserved, and the live view keeps answering queries
    /// at its quiesce-exact epoch while the threads are down. Any
    /// subsequent dispatch ([`push`](IngestPipeline::push),
    /// [`heartbeat`](IngestPipeline::heartbeat),
    /// [`resize`](IngestPipeline::resize),
    /// [`finish`](IngestPipeline::finish)) re-seeds the snapshot and
    /// re-spawns the pool transparently. No-op when already parked.
    ///
    /// This is the tenant runtime's idle-quiesce verb: a parked tenant
    /// holds no threads and no ring buffers, only its synopsis.
    ///
    /// # Panics
    ///
    /// Panics under broadcast dispatch with more than one shard (each
    /// broadcast shard re-derives its partition from the full stream,
    /// so its table state is not re-seedable through the snapshot).
    pub fn park(&mut self) {
        if self.parked.is_some() {
            return;
        }
        assert!(
            matches!(self.config.dispatch, Dispatch::Routed { .. }) || self.config.shard_count == 1,
            "parking requires routed dispatch (broadcast shard state is not re-seedable)"
        );
        self.flush_batch();
        let pool = self.pool.take().expect("pipeline already finished");
        let mut analyzers = pool.quiesce(&mut self.stats, self.live.as_mut());
        // The quiesce folded every *published* delta; changes since the
        // last epoch boundary are still pending inside the shards.
        // Extract them now so the parked view answers queries at the
        // park boundary exactly, not up to one interval behind.
        if let Some(view) = self.live.as_mut() {
            let mut delta = ShardDelta::default();
            for (index, shard) in analyzers.iter_mut().enumerate() {
                delta.clear();
                shard.extract_delta(&mut delta);
                delta.epoch = Epoch::new(self.stats.batches);
                view.apply_delta(index, &delta);
            }
        }
        self.parked = Some(SynopsisSnapshot::drain(analyzers));
    }

    /// Whether the pipeline is parked (no worker threads running).
    /// Whether this pipeline's topology supports parking: routed
    /// dispatch (partition-invariant snapshots) or a single broadcast
    /// shard. Multi-shard broadcast state is not re-seedable, so
    /// [`park`](IngestPipeline::park) would panic.
    pub fn can_park(&self) -> bool {
        matches!(self.config.dispatch, Dispatch::Routed { .. }) || self.config.shard_count == 1
    }

    pub fn is_parked(&self) -> bool {
        self.parked.is_some()
    }

    /// Re-seeds the parked snapshot across the current shard count and
    /// re-spawns the pool, re-priming the live mirrors so the view
    /// stays exact (and warm) across the gap. No-op unless parked.
    fn ensure_running(&mut self) {
        let Some(snapshot) = self.parked.take() else {
            return;
        };
        let mut analyzers = snapshot.reseed(&self.analyzer_config, self.config.shard_count);
        if self.live.is_some() {
            self.live = Some(Self::prime_live(
                &mut analyzers,
                &self.analyzer_config,
                self.split_tallies,
                Epoch::new(self.stats.batches),
            ));
        }
        self.pool = Some(StagePool::spawn(
            analyzers,
            &self.config,
            &self.analyzer_config,
            self.stats.batches,
        ));
    }

    fn dispatch_batch(&mut self) {
        self.ensure_running();
        let pool = self.pool.as_mut().expect("pipeline already finished");
        let sequence = pool.sequence;
        pool.sequence += 1;
        pool.window_batches += 1;
        self.stats.batches += 1;
        let batch_size = self.config.batch_size;
        let stats = &mut self.stats;
        let counters = Arc::clone(&pool.counters);
        match &mut pool.front_end {
            FrontEnd::Broadcast { senders } => {
                let batch: Batch = Arc::new(std::mem::replace(
                    &mut self.batch,
                    Vec::with_capacity(batch_size),
                ));
                for (shard, sender) in senders.iter().enumerate() {
                    send_counting_stalls(
                        sender,
                        ShardWork::Broadcast(Arc::clone(&batch)),
                        &mut stats.stalls,
                        &mut stats.stall_nanos,
                    );
                    counters.shard_ring_high[shard]
                        .fetch_max(sender.occupancy() as u64, Ordering::Relaxed);
                }
            }
            FrontEnd::Inline(routing) => {
                let started = Instant::now();
                routing.router.route_into(&self.batch, &mut routing.staged);
                self.batch.clear();
                let (mut stalls, mut stall_nanos) = (0u64, 0u64);
                for (shard, (sender, staged)) in routing
                    .senders
                    .iter()
                    .zip(routing.staged.iter_mut())
                    .enumerate()
                {
                    // Refill the stage from this shard's return ring;
                    // the prefill guarantees a recycled list is waiting
                    // (see the circulation bound in `spawn`).
                    let refill = routing.returns[shard].try_recv().unwrap_or_default();
                    let work = std::mem::replace(staged, refill);
                    send_counting_stalls(
                        sender,
                        ShardWork::Routed(work),
                        &mut stalls,
                        &mut stall_nanos,
                    );
                    counters.shard_ring_high[shard]
                        .fetch_max(sender.occupancy() as u64, Ordering::Relaxed);
                }
                stats.stalls += stalls;
                stats.stall_nanos += stall_nanos;
                // The inline router's busy time lives on the caller's
                // thread; its ring-blocked share is front-end stall.
                let busy = (started.elapsed().as_nanos() as u64).saturating_sub(stall_nanos);
                counters.router_busy_nanos[0].fetch_add(busy, Ordering::Relaxed);
            }
            FrontEnd::Parallel(routing) => {
                let router = router_for_batch(sequence, routing.batch_senders.len());
                // Swap in a recycled batch buffer before shipping the
                // full one to its router: this router's return ring
                // first, then any other (the prefill guarantees one is
                // waiting somewhere).
                let mut replacement = routing.batch_returns[router].try_recv();
                if replacement.is_none() {
                    for (ring, returns) in routing.batch_returns.iter().enumerate() {
                        if ring == router {
                            continue;
                        }
                        replacement = returns.try_recv();
                        if replacement.is_some() {
                            break;
                        }
                    }
                }
                let replacement = replacement.unwrap_or_else(|| Vec::with_capacity(batch_size));
                let batch = std::mem::replace(&mut self.batch, replacement);
                send_counting_stalls(
                    &routing.batch_senders[router],
                    batch,
                    &mut stats.stalls,
                    &mut stats.stall_nanos,
                );
                counters.batch_ring_high[router].fetch_max(
                    routing.batch_senders[router].occupancy() as u64,
                    Ordering::Relaxed,
                );
            }
        }
        self.controller_tick();
    }

    /// With a controller attached: closes the observation window every
    /// `interval_batches` dispatched batches, feeds it a sample and
    /// applies any resize it issues.
    fn controller_tick(&mut self) {
        let Some(controller) = self.controller.as_mut() else {
            return;
        };
        let pool = self.pool.as_mut().expect("pipeline already finished");
        if pool.window_batches < controller.config().interval_batches {
            return;
        }
        pool.window_batches = 0;
        let topology = Topology::new(self.config.shard_count, self.config.routers);
        let sample = pool.sample_window(topology);
        if let Some(target) = controller.observe(&sample) {
            self.resize(target.shards, target.routers);
        }
    }

    /// The monitor front-end (window state, latency average, stats).
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Folds every published shard delta into the live view and
    /// recycles the buffers, then reports the view's consistency epoch
    /// (the slowest shard's folded boundary). `None` when publishing is
    /// disabled. Lock-free both ways: the drain is a `try_recv` loop
    /// over the per-shard SPSC rings and the workers never wait on it.
    pub fn poll_live(&mut self) -> Option<Epoch> {
        let view = self.live.as_mut()?;
        if let Some(pool) = self.pool.as_ref() {
            for (shard, rx) in pool.delta_rx.iter().enumerate() {
                while let Some(delta) = rx.try_recv() {
                    view.apply_delta(shard, &delta);
                    let returned = pool.buf_tx[shard].try_send(delta).is_ok();
                    debug_assert!(returned, "buffer ring sized below circulation");
                }
            }
        }
        Some(view.epoch())
    }

    /// The live query view, as last folded by
    /// [`poll_live`](IngestPipeline::poll_live). `None` when publishing
    /// is disabled ([`PipelineConfig::publish_interval`]).
    pub fn live_view(&self) -> Option<&LiveView> {
        self.live.as_ref()
    }

    /// Mutable access to the live view — the allocation-free query
    /// methods ([`LiveView::frequent_pairs_into`],
    /// [`LiveView::top_pairs_into`]) reuse internal scratch and need
    /// `&mut`.
    pub fn live_view_mut(&mut self) -> Option<&mut LiveView> {
        self.live.as_mut()
    }

    /// The ingest frontier: the epoch of the last dispatched batch.
    /// `frontier_epoch() - poll_live()` (in publish intervals — see
    /// [`Epoch::lag_intervals`]) is the view's staleness.
    pub fn frontier_epoch(&self) -> Epoch {
        Epoch::new(self.stats.batches)
    }

    /// Front-end counters. Under inline routing the per-shard vectors
    /// reflect everything dispatched so far; under parallel routing
    /// they are eventually consistent (each router publishes after
    /// routing a batch) and become exact once the stream drains.
    /// Scalars are cumulative across resizes; per-stage vectors cover
    /// the current topology epoch only (see the field docs).
    pub fn stats(&self) -> PipelineStats {
        let mut stats = self.stats.clone();
        let Some(pool) = self.pool.as_ref() else {
            return stats;
        };
        let counters = &pool.counters;
        let load =
            |v: &[AtomicU64]| -> Vec<u64> { v.iter().map(|c| c.load(Ordering::Relaxed)).collect() };
        stats.ring_slots = pool.ring_slots;
        stats.shard_ring_highwater = counters
            .shard_ring_high
            .iter()
            .zip(&pool.highwater_fold)
            .map(|(live, fold)| (*fold).max(live.load(Ordering::Relaxed)))
            .collect();
        stats.batch_ring_highwater = load(&counters.batch_ring_high);
        stats.router_busy_nanos = load(&counters.router_busy_nanos);
        stats.shard_busy_nanos = load(&counters.shard_busy_nanos);
        stats.epoch_publishes += counters.epoch_publishes.load(Ordering::Relaxed);
        stats.epoch_publish_skips += counters.epoch_publish_skips.load(Ordering::Relaxed);
        match &pool.front_end {
            FrontEnd::Broadcast { .. } => {}
            FrontEnd::Inline(routing) => {
                let routed = routing.router.stats();
                stats.routed_transactions = routed.routed_transactions.clone();
                stats.routed_ops = routed.routed_ops.clone();
                stats.split_records += routed.split_records;
            }
            FrontEnd::Parallel(_) => {
                stats.routed_transactions = load(&counters.routed_transactions);
                stats.routed_ops = load(&counters.routed_ops);
                stats.split_records += counters.split_records.load(Ordering::Relaxed);
                stats.routing_stalls += counters.routing_stalls.load(Ordering::Relaxed);
                stats.routing_stall_nanos += counters.routing_stall_nanos.load(Ordering::Relaxed);
            }
        }
        stats
    }

    /// Number of shard workers in the current topology.
    pub fn shard_count(&self) -> usize {
        self.config.shard_count
    }

    /// The current (live) topology.
    pub fn topology(&self) -> Topology {
        Topology::new(self.config.shard_count, self.config.routers)
    }

    /// Every resize applied so far, in order.
    pub fn resize_events(&self) -> &[ResizeEvent] {
        &self.resize_events
    }

    /// Resizes the stage pools online to `shards` shard workers and
    /// `routers` routers, via quiesce → snapshot → re-seed (see the
    /// module docs). Blocks the caller for the quiesce window; the
    /// merged results are count-identical to never having resized.
    /// Returns `false` (and does nothing) if the topology is unchanged.
    ///
    /// A router-only change is the cheap path: shard tables are handed
    /// to the new pool untouched. A shard-count change drains the
    /// tables into a [`SynopsisSnapshot`] and re-seeds them across the
    /// new shard count.
    ///
    /// # Panics
    ///
    /// Panics under broadcast dispatch (each broadcast shard re-derives
    /// its partition from the full stream, so its table state is not
    /// re-partitionable), or if `shards == 0` or `routers == 0`.
    pub fn resize(&mut self, shards: usize, routers: usize) -> bool {
        assert!(
            matches!(self.config.dispatch, Dispatch::Routed { .. }),
            "resize requires routed dispatch"
        );
        assert!(shards > 0, "need at least one shard");
        assert!(routers > 0, "need at least one router");
        if shards == self.config.shard_count && routers == self.config.routers {
            return false;
        }
        // Ship the open batch under the old topology first: the resize
        // happens at a clean batch boundary. A parked pipeline is
        // resumed first — the resize protocol needs a live pool.
        self.ensure_running();
        self.flush_batch();
        let from = self.topology();
        let started = Instant::now();
        let pool = self.pool.take().expect("pipeline already finished");
        let mut analyzers = pool.quiesce(&mut self.stats, self.live.as_mut());
        let reseeded = shards != self.config.shard_count;
        if reseeded {
            let snapshot = SynopsisSnapshot::drain(analyzers);
            analyzers = snapshot.reseed(&self.analyzer_config, shards);
            // The mirror set must match the new shard count: re-prime a
            // fresh view from the re-seeded tables, so it stays exact
            // (and warm) across the resize. A router-only resize keeps
            // the view as-is — no table state moved, and the quiesce
            // drain above already folded every in-flight delta.
            if self.live.is_some() {
                self.live = Some(Self::prime_live(
                    &mut analyzers,
                    &self.analyzer_config,
                    self.split_tallies,
                    Epoch::new(self.stats.batches),
                ));
            }
        }
        self.config.shard_count = shards;
        self.config.routers = routers;
        self.pool = Some(StagePool::spawn(
            analyzers,
            &self.config,
            &self.analyzer_config,
            self.stats.batches,
        ));
        let nanos = started.elapsed().as_nanos() as u64;
        self.stats.resizes += 1;
        self.stats.resize_nanos += nanos;
        self.resize_events.push(ResizeEvent {
            batch: self.stats.batches,
            from,
            to: Topology::new(shards, routers),
            nanos,
            reseeded,
        });
        true
    }

    /// Flushes the monitor and the open batch, closes the rings
    /// (routers drain first, then the shards), joins every worker and
    /// reassembles the shards into a queryable [`ShardedAnalyzer`].
    ///
    /// # Panics
    ///
    /// Propagates a router or shard worker's panic, if one occurred.
    pub fn finish(mut self) -> ShardedAnalyzer {
        self.ensure_running();
        if let Some(transaction) = self.monitor.flush() {
            self.enqueue(transaction);
        }
        self.flush_batch();
        let pool = self.pool.take().expect("pipeline already finished");
        let shards = pool.quiesce(&mut self.stats, self.live.as_mut());
        if matches!(self.config.dispatch, Dispatch::Routed { .. }) {
            // Routed shards never count transactions; the front-end's
            // (cumulative) count is authoritative.
            ShardedAnalyzer::from_routed_shards(
                self.analyzer_config.clone(),
                shards,
                self.stats.transactions,
                self.split_tallies,
            )
        } else {
            // Broadcast shards each counted the full transaction stream
            // themselves; from_shards takes shard 0's count.
            ShardedAnalyzer::from_shards(self.analyzer_config.clone(), shards)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdac_synopsis::OnlineAnalyzer;
    use rtdac_types::{Extent, IoOp, Timestamp};
    use std::time::Duration;

    fn event(us: u64, block: u64) -> IoEvent {
        IoEvent::new(
            Timestamp::from_micros(us),
            1,
            IoOp::Read,
            Extent::new(block, 1).unwrap(),
            Duration::from_micros(40),
        )
    }

    fn events() -> Vec<IoEvent> {
        // Correlated bursts (two extents close in time) separated by
        // window-breaking gaps.
        let mut out = Vec::new();
        for i in 0..500u64 {
            let base = i * 10_000;
            out.push(event(base, 10 + (i % 5)));
            out.push(event(base + 20, 500 + (i % 5)));
        }
        out
    }

    fn dispatch_modes() -> Vec<Dispatch> {
        vec![
            Dispatch::Broadcast,
            Dispatch::Routed { split: None },
            Dispatch::Routed {
                split: Some(SplitConfig::default()),
            },
        ]
    }

    #[test]
    fn pipeline_matches_sequential_analysis() {
        let monitor_config =
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(100)));
        let analyzer_config = AnalyzerConfig::with_capacity(4096);

        // Sequential ground truth: same monitor, single-threaded analyzer.
        let transactions = Monitor::new(monitor_config.clone()).into_transactions(events());
        let mut single = OnlineAnalyzer::new(analyzer_config.clone());
        for t in &transactions {
            single.process(t);
        }
        let expected = single.snapshot().frequent_pairs(1);
        assert!(!expected.is_empty());

        for dispatch in dispatch_modes() {
            for shards in [1usize, 2, 4] {
                for routers in [1usize, 2] {
                    let mut pipeline = IngestPipeline::new(
                        monitor_config.clone(),
                        analyzer_config.clone(),
                        PipelineConfig::with_shards(shards)
                            .routers(routers)
                            .batch_size(16)
                            .ring_capacity(4)
                            .dispatch(dispatch.clone()),
                    );
                    for e in events() {
                        pipeline.push(e);
                    }
                    let analyzer = pipeline.finish();
                    assert_eq!(
                        analyzer.snapshot().frequent_pairs(1),
                        expected,
                        "{shards} shards, {routers} routers, {dispatch:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn routed_shard_state_matches_broadcast_exactly() {
        // With splitting off, routed dispatch must leave every shard's
        // tables bit-for-bit identical to broadcast (tiny tables force
        // eviction churn, so record order matters) — for any router
        // count, thanks to the sequence-ordered fan-in.
        let monitor_config =
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(100)));
        let analyzer_config = AnalyzerConfig::with_capacity(8).item_capacity(4);
        for shards in [1usize, 2, 4, 8] {
            let run = |dispatch: Dispatch, routers: usize| {
                let mut pipeline = IngestPipeline::new(
                    monitor_config.clone(),
                    analyzer_config.clone(),
                    PipelineConfig::with_shards(shards)
                        .routers(routers)
                        .batch_size(8)
                        .dispatch(dispatch),
                );
                for e in events() {
                    pipeline.push(e);
                }
                pipeline.finish()
            };
            let broadcast = run(Dispatch::Broadcast, 1);
            for routers in [1usize, 2] {
                let routed = run(Dispatch::Routed { split: None }, routers);
                for (i, (b, r)) in broadcast.shards().iter().zip(routed.shards()).enumerate() {
                    assert_eq!(
                        b.snapshot(),
                        r.snapshot(),
                        "shard {i} of {shards}, {routers} routers"
                    );
                }
                assert_eq!(broadcast.stats(), routed.stats());
            }
        }
    }

    #[test]
    fn partial_batch_is_flushed_on_finish() {
        let mut pipeline = IngestPipeline::new(
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(100))),
            AnalyzerConfig::with_capacity(64),
            // Batch size far above the transaction count: nothing would
            // ship without the finish() flush.
            PipelineConfig::with_shards(2).batch_size(1024),
        );
        pipeline.push(event(0, 1));
        pipeline.push(event(10, 2));
        let analyzer = pipeline.finish();
        assert_eq!(analyzer.snapshot().pairs.len(), 1);
    }

    #[test]
    fn stats_count_batches_and_transactions() {
        let mut pipeline = IngestPipeline::new(
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(10))),
            AnalyzerConfig::with_capacity(64),
            PipelineConfig::with_shards(1).batch_size(2),
        );
        for i in 0..8u64 {
            // 1 ms apart: every event closes the previous transaction.
            pipeline.push(event(i * 1000, i));
        }
        let stats = pipeline.stats();
        assert_eq!(stats.transactions, 7); // the 8th is still open
        assert_eq!(stats.batches, 3); // batches of 2, one pending
        assert_eq!(stats.routed_transactions, vec![6]); // routed = flushed
        pipeline.finish();
    }

    #[test]
    fn backpressure_does_not_deadlock_and_is_accounted() {
        for dispatch in dispatch_modes() {
            for routers in [1usize, 2] {
                // Tiny rings and batches: every stage must block and
                // resume rather than drop or deadlock.
                let mut pipeline = IngestPipeline::new(
                    MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(10))),
                    AnalyzerConfig::with_capacity(1024),
                    PipelineConfig::with_shards(2)
                        .routers(routers)
                        .batch_size(1)
                        .ring_capacity(1)
                        .dispatch(dispatch.clone()),
                );
                for i in 0..2_000u64 {
                    pipeline.push(event(i * 1000, i % 50));
                }
                let stats = pipeline.stats();
                // Stall accounting only: every stall charged some
                // blocked time, at each stage.
                assert!(stats.stalls == 0 || stats.stall_nanos > 0);
                assert!(stats.routing_stalls == 0 || stats.routing_stall_nanos > 0);
                let analyzer = pipeline.finish();
                assert_eq!(
                    analyzer.stats().transactions,
                    2_000,
                    "{dispatch:?}, {routers} routers"
                );
            }
        }
    }

    #[test]
    fn routed_pipeline_counts_per_shard_work() {
        let mut pipeline = IngestPipeline::new(
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(100))),
            AnalyzerConfig::with_capacity(4096),
            PipelineConfig::with_shards(4).batch_size(16),
        );
        for e in events() {
            pipeline.push(e);
        }
        pipeline.flush_batch(); // the 500th transaction is still open
        let stats = pipeline.stats();
        // Each 2-extent transaction is one pair + two item records on
        // exactly one shard.
        assert_eq!(stats.routed_transactions.len(), 4);
        assert_eq!(stats.routed_transactions.iter().sum::<u64>(), 499);
        assert_eq!(stats.routed_ops.iter().sum::<u64>(), 499 * 3);
        assert_eq!(stats.split_records, 0);
        pipeline.finish();
    }

    #[test]
    fn parallel_router_counters_converge_to_exact_totals() {
        // The live atomics are eventually consistent; once the routers
        // drain they must equal exactly what one router would report.
        let mut pipeline = IngestPipeline::new(
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(100))),
            AnalyzerConfig::with_capacity(4096),
            PipelineConfig::with_shards(4).routers(2).batch_size(16),
        );
        for e in events() {
            pipeline.push(e);
        }
        pipeline.flush_batch();
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut stats = pipeline.stats();
        while stats.routed_transactions.iter().sum::<u64>() < 499 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
            stats = pipeline.stats();
        }
        assert_eq!(stats.routed_transactions.iter().sum::<u64>(), 499);
        assert_eq!(stats.routed_ops.iter().sum::<u64>(), 499 * 3);
        pipeline.finish();
    }

    #[test]
    fn undersized_ring_reports_saturated_highwater() {
        // A one-slot ring under a continuous stream must show a
        // high-water mark at capacity: the shard stage saturated and
        // applied backpressure — exactly the controller's grow signal.
        let mut pipeline = IngestPipeline::new(
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(10))),
            AnalyzerConfig::with_capacity(1024),
            PipelineConfig::with_shards(1)
                .batch_size(1)
                .ring_capacity(1),
        );
        for i in 0..2_000u64 {
            pipeline.push(event(i * 1000, i % 50));
        }
        let stats = pipeline.stats();
        assert_eq!(stats.ring_slots, 1);
        assert_eq!(stats.shard_ring_highwater, vec![1]);
        // The busy split is populated alongside: one shard, one
        // (inline) router, both with service time on the books.
        assert_eq!(stats.shard_busy_nanos.len(), 1);
        assert!(stats.shard_busy_nanos[0] > 0);
        assert_eq!(stats.router_busy_nanos.len(), 1);
        assert!(stats.router_busy_nanos[0] > 0);
        pipeline.finish();
    }

    #[test]
    fn resize_matches_never_resized_pipeline() {
        // Grow shards and routers mid-stream, then shrink below the
        // starting point: frequent pairs and cumulative stats must be
        // identical to never having resized.
        let monitor_config =
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(100)));
        let analyzer_config = AnalyzerConfig::with_capacity(4096);
        let stream = events();

        let mut baseline = IngestPipeline::new(
            monitor_config.clone(),
            analyzer_config.clone(),
            PipelineConfig::with_shards(2).batch_size(16),
        );
        for e in stream.clone() {
            baseline.push(e);
        }
        let baseline = baseline.finish();
        let expected = baseline.snapshot().frequent_pairs(1);

        let mut pipeline = IngestPipeline::new(
            monitor_config,
            analyzer_config,
            PipelineConfig::with_shards(2).batch_size(16),
        );
        let third = stream.len() / 3;
        for (i, e) in stream.into_iter().enumerate() {
            if i == third {
                assert!(pipeline.resize(4, 2)); // grow both stages
            } else if i == 2 * third {
                assert!(pipeline.resize(1, 1)); // shrink below start
            }
            pipeline.push(e);
        }
        assert_eq!(pipeline.topology(), Topology::new(1, 1));
        let stats = pipeline.stats();
        assert_eq!(stats.resizes, 2);
        // 500 two-event bursts; the last transaction is still open.
        assert_eq!(stats.transactions, 499);
        let resize_log = pipeline.resize_events().to_vec();
        assert_eq!(resize_log.len(), 2);
        assert_eq!(resize_log[0].from, Topology::new(2, 1));
        assert_eq!(resize_log[0].to, Topology::new(4, 2));
        assert!(resize_log[0].reseeded);
        assert_eq!(resize_log[1].to, Topology::new(1, 1));

        let analyzer = pipeline.finish();
        assert_eq!(analyzer.snapshot().frequent_pairs(1), expected);
        assert_eq!(analyzer.stats().transactions, 500);
        assert_eq!(analyzer.stats().pairs, baseline.stats().pairs);
    }

    #[test]
    fn router_only_resize_skips_reseeding() {
        let mut pipeline = IngestPipeline::new(
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(100))),
            AnalyzerConfig::with_capacity(4096),
            PipelineConfig::with_shards(2).batch_size(16),
        );
        for e in events() {
            pipeline.push(e);
        }
        assert!(!pipeline.resize(2, 1), "same topology is a no-op");
        assert!(pipeline.resize(2, 2), "router-only change applies");
        assert!(!pipeline.resize_events()[0].reseeded);
        assert_eq!(pipeline.topology(), Topology::new(2, 2));
        let analyzer = pipeline.finish();
        assert_eq!(analyzer.stats().transactions, 500);
    }

    #[test]
    #[should_panic(expected = "routed dispatch")]
    fn resize_panics_under_broadcast() {
        let mut pipeline = IngestPipeline::new(
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(100))),
            AnalyzerConfig::with_capacity(64),
            PipelineConfig::with_shards(2).broadcast(),
        );
        pipeline.resize(4, 1);
    }

    /// Polls the live view until it covers `target`, issuing heartbeat
    /// batches so idle workers get publish opportunities.
    fn drain_live_to(pipeline: &mut IngestPipeline, target: Epoch) -> Epoch {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let epoch = pipeline.poll_live().expect("publishing enabled");
            if epoch >= target {
                return epoch;
            }
            assert!(
                Instant::now() < deadline,
                "live view never reached {target}"
            );
            pipeline.heartbeat();
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    #[test]
    fn live_view_matches_quiesced_snapshot() {
        // A LiveView read must be bit-exact to a quiesced snapshot at
        // the same boundary: feed identical pre-windowed transactions
        // to a publishing pipeline and an oracle, drain the view to the
        // ingest frontier, and compare against the oracle's quiesced
        // capture — across dispatch modes and topologies, with tiny
        // tables to force delta-visible eviction churn.
        let monitor_config =
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(100)));
        let transactions = Monitor::new(monitor_config.clone()).into_transactions(events());
        for dispatch in dispatch_modes() {
            for (shards, routers) in [(1usize, 1usize), (2, 2), (4, 1)] {
                let analyzer_config = AnalyzerConfig::with_capacity(64).item_capacity(32);
                let build = |publish: usize| {
                    IngestPipeline::new(
                        monitor_config.clone(),
                        analyzer_config.clone(),
                        PipelineConfig::with_shards(shards)
                            .routers(routers)
                            .batch_size(16)
                            .dispatch(dispatch.clone())
                            .publish_interval(publish),
                    )
                };
                let mut live = build(4);
                let mut oracle = build(0);
                assert!(oracle.poll_live().is_none());
                assert!(oracle.live_view().is_none());
                for t in &transactions {
                    live.push_transaction(t.clone());
                    oracle.push_transaction(t.clone());
                }
                live.flush_batch();
                let target = live.frontier_epoch();
                drain_live_to(&mut live, target);
                let expected = SynopsisSnapshot::capture(oracle.finish().shards());
                let view = live.live_view_mut().unwrap();
                assert_eq!(
                    view.snapshot(),
                    expected,
                    "{shards} shards, {routers} routers, {dispatch:?}"
                );
                let stats = live.stats();
                assert!(stats.epoch_publishes >= shards as u64);
                live.finish();
            }
        }
    }

    #[test]
    fn live_view_survives_resizes() {
        // Query-during-resize: the view must stay exact across a grow
        // (re-seeded mirrors) and a router-only change (mirrors carried
        // over), matching an oracle replaying the identical history.
        let monitor_config =
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(100)));
        let analyzer_config = AnalyzerConfig::with_capacity(512);
        let transactions = Monitor::new(monitor_config.clone()).into_transactions(events());
        let build = |publish: usize| {
            IngestPipeline::new(
                monitor_config.clone(),
                analyzer_config.clone(),
                PipelineConfig::with_shards(2)
                    .batch_size(8)
                    .publish_interval(publish),
            )
        };
        let mut live = build(2);
        let mut oracle = build(0);
        let third = transactions.len() / 3;
        for (i, t) in transactions.iter().enumerate() {
            if i == third {
                assert!(live.resize(4, 2));
                assert!(oracle.resize(4, 2));
                // Immediately after a re-seeding resize the re-primed
                // view is already exact — queryable before the new
                // pool publishes anything.
                let pairs = live.live_view_mut().unwrap().frequent_pairs(1);
                assert!(!pairs.is_empty());
            } else if i == 2 * third {
                assert!(live.resize(4, 1)); // router-only: cheap path
                assert!(oracle.resize(4, 1));
            }
            live.push_transaction(t.clone());
            oracle.push_transaction(t.clone());
            if i % 64 == 0 {
                live.poll_live();
            }
        }
        live.flush_batch();
        let target = live.frontier_epoch();
        drain_live_to(&mut live, target);
        let expected = SynopsisSnapshot::capture(oracle.finish().shards());
        assert_eq!(live.live_view_mut().unwrap().snapshot(), expected);
        live.finish();
    }

    #[test]
    fn heartbeats_do_not_change_results() {
        let monitor_config =
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(100)));
        let analyzer_config = AnalyzerConfig::with_capacity(4096);
        let transactions = Monitor::new(monitor_config.clone()).into_transactions(events());
        let run = |beats: bool| {
            let mut pipeline = IngestPipeline::new(
                monitor_config.clone(),
                analyzer_config.clone(),
                PipelineConfig::with_shards(2).routers(2).batch_size(16),
            );
            for (i, t) in transactions.iter().enumerate() {
                pipeline.push_transaction(t.clone());
                if beats && i % 50 == 0 {
                    pipeline.heartbeat();
                }
            }
            SynopsisSnapshot::capture(pipeline.finish().shards())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn park_resume_preserves_results() {
        // Parking mid-stream (threads joined, tables drained to a
        // snapshot) and resuming on the next push must yield results
        // count-identical to never having parked — the same guarantee
        // the resize protocol gives, through the same machinery.
        let monitor_config =
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(100)));
        let analyzer_config = AnalyzerConfig::with_capacity(4096);
        let transactions = Monitor::new(monitor_config.clone()).into_transactions(events());
        let run = |parks: bool| {
            let mut pipeline = IngestPipeline::new(
                monitor_config.clone(),
                analyzer_config.clone(),
                PipelineConfig::with_shards(2).batch_size(16),
            );
            for (i, t) in transactions.iter().enumerate() {
                pipeline.push_transaction(t.clone());
                if parks && i % 100 == 0 {
                    pipeline.park();
                    assert!(pipeline.is_parked());
                }
            }
            pipeline.finish().frequent_pairs(1)
        };
        let parked = run(true);
        assert!(!parked.is_empty());
        assert_eq!(parked, run(false));
    }

    #[test]
    fn parked_pipeline_answers_live_queries_and_resumes_exact() {
        // While parked the live view must keep answering queries at
        // its quiesce-exact boundary (every in-flight delta folded by
        // the quiesce), and after resuming + draining, the view must
        // again match a quiesced capture.
        let monitor_config =
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(100)));
        let analyzer_config = AnalyzerConfig::with_capacity(512);
        let transactions = Monitor::new(monitor_config.clone()).into_transactions(events());
        let mid = transactions.len() / 2;
        let mut pipeline = IngestPipeline::new(
            monitor_config,
            analyzer_config.clone(),
            PipelineConfig::with_shards(2)
                .batch_size(8)
                .publish_interval(2),
        );
        for t in &transactions[..mid] {
            pipeline.push_transaction(t.clone());
        }
        pipeline.park();
        // Quiesce folded everything: parked view == parked tables.
        let mut oracle = OnlineAnalyzer::new(analyzer_config);
        for t in &transactions[..mid] {
            oracle.process(t);
        }
        // The live view totally orders ties by pair; re-sort the
        // oracle (ties in table order) the same way before comparing.
        let canonical = |mut pairs: Vec<(rtdac_types::ExtentPair, u32)>| {
            pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            pairs
        };
        let parked_pairs = pipeline
            .live_view_mut()
            .expect("publishing enabled")
            .frequent_pairs(1);
        assert_eq!(parked_pairs, canonical(oracle.frequent_pairs(1)));
        // Resume by pushing the rest; the view stays live.
        for t in &transactions[mid..] {
            pipeline.push_transaction(t.clone());
            oracle.process(t);
        }
        assert!(!pipeline.is_parked());
        let frontier = pipeline.frontier_epoch();
        drain_live_to(&mut pipeline, frontier);
        let live_pairs = pipeline
            .live_view_mut()
            .expect("publishing enabled")
            .frequent_pairs(1);
        assert_eq!(live_pairs, canonical(oracle.frequent_pairs(1)));
        pipeline.finish();
    }

    #[test]
    fn adaptive_controller_grows_saturated_pipeline() {
        // One-slot rings saturate on every batch, so the occupancy
        // rule must walk the shard pool up to its bound — and the
        // result must still match the sequential analysis.
        let analyzer_config = AnalyzerConfig::with_capacity(4096);
        let monitor_config =
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(10)));
        let controller = ControllerConfig::default()
            .shard_bounds(1, 4)
            .router_bounds(1, 1) // pin R: only the occupancy rule acts
            .interval_batches(8)
            .confirm_windows(1)
            .cooldown_windows(1);
        let mut pipeline = IngestPipeline::new(
            monitor_config.clone(),
            analyzer_config.clone(),
            PipelineConfig::with_shards(1)
                .batch_size(1)
                .ring_capacity(1)
                .adaptive(controller),
        );
        let stream: Vec<_> = (0..2_000u64).map(|i| event(i * 1000, i % 50)).collect();
        for e in stream.clone() {
            pipeline.push(e);
        }
        assert_eq!(pipeline.topology(), Topology::new(4, 1));
        assert!(pipeline.stats().resizes >= 2);

        let transactions = Monitor::new(monitor_config).into_transactions(stream);
        let mut single = OnlineAnalyzer::new(analyzer_config);
        for t in &transactions {
            single.process(t);
        }
        let analyzer = pipeline.finish();
        assert_eq!(
            analyzer.snapshot().frequent_pairs(1),
            single.snapshot().frequent_pairs(1)
        );
    }
}
