//! The batched, sharded ingestion front-end: block events in, a merged
//! correlation synopsis out, with the per-shard synopsis work running on
//! dedicated worker threads.
//!
//! ```text
//!  events ─▶ Monitor ─▶ batch ─▶ Router ─▶ RoutedBatch ─┬─▶ ring 0 ─▶ worker 0 (WorkList 0)
//!                               (dedup + hash ONCE)     ├─▶ ring 1 ─▶ worker 1 (WorkList 1)
//!                                                       └─▶ ring N ─▶ worker N (WorkList N)
//! ```
//!
//! Two dispatch modes, selected by [`Dispatch`]:
//!
//! * **[`Dispatch::Routed`]** (the default) — the front-end [`Router`]
//!   deduplicates each transaction and hashes each pair exactly once,
//!   partitioning the records into per-shard [`WorkList`](crate::WorkList)s
//!   (see [`RoutedBatch`]). A shard ring only receives batches that
//!   carry work for that shard, and a worker applies its list verbatim
//!   via [`OnlineAnalyzer::process_routed`] — no re-dedup, no
//!   re-hashing, no skipping the other shards' pairs. Total CPU across
//!   shards is O(stream), not O(stream × shards). Optional
//!   [`SplitConfig`] spreads hot pairs round-robin; the merged analyzer
//!   then sums partial tallies (`ShardedAnalyzer::from_routed_shards`).
//! * **[`Dispatch::Broadcast`]** — the PR-1 behaviour, kept for
//!   comparison benchmarks: every shard receives every batch and runs
//!   [`OnlineAnalyzer::process_partition`], re-deduplicating and
//!   re-hashing the full stream to discard the (N−1)/N of pairs it does
//!   not own.
//!
//! Batches amortize ring traffic either way; rings are bounded, so a
//! slow shard applies backpressure to the front-end instead of growing
//! an unbounded queue. Time the front-end spends blocked on a full ring
//! is accounted separately in [`PipelineStats::stall_nanos`] — it is
//! queueing delay, not shard service time.
//!
//! [`IngestPipeline::finish`] flushes the monitor and the open batch,
//! closes the rings (workers drain, then exit) and reassembles the
//! shards into a [`ShardedAnalyzer`](rtdac_synopsis::ShardedAnalyzer)
//! for querying — with splitting off, results are identical to feeding
//! the same events through the single-threaded [`OnlineAnalyzer`]; with
//! splitting on, tallies are still exact (summed at merge time) and
//! ordering is stable.
//!
//! # Examples
//!
//! ```
//! use rtdac_monitor::{IngestPipeline, MonitorConfig, PipelineConfig};
//! use rtdac_synopsis::AnalyzerConfig;
//! use rtdac_types::{Extent, IoEvent, IoOp, Timestamp};
//! use std::time::Duration;
//!
//! let mut pipeline = IngestPipeline::new(
//!     MonitorConfig::default(),
//!     AnalyzerConfig::with_capacity(1024),
//!     PipelineConfig::with_shards(2),
//! );
//! for i in 0..100u64 {
//!     for block in [10, 900] {
//!         pipeline.push(IoEvent::new(
//!             Timestamp::from_millis(i * 50),
//!             1,
//!             IoOp::Read,
//!             Extent::new(block, 4).unwrap(),
//!             Duration::from_micros(40),
//!         ));
//!     }
//! }
//! let analyzer = pipeline.finish();
//! assert_eq!(analyzer.frequent_pairs(50).len(), 1);
//! ```
//!
//! [`OnlineAnalyzer`]: rtdac_synopsis::OnlineAnalyzer
//! [`OnlineAnalyzer::process_partition`]: rtdac_synopsis::OnlineAnalyzer::process_partition
//! [`OnlineAnalyzer::process_routed`]: rtdac_synopsis::OnlineAnalyzer::process_routed

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use rtdac_synopsis::{AnalyzerConfig, ShardedAnalyzer};
use rtdac_types::{IoEvent, Transaction};

use crate::monitor::{Monitor, MonitorConfig};
use crate::router::{RoutedBatch, Router, RouterConfig, SplitConfig};
use crate::spsc;

/// How the front-end hands work to the shards.
#[derive(Clone, Debug, PartialEq)]
pub enum Dispatch {
    /// Every shard receives every batch and re-derives its own partition
    /// (dedup + hash replicated per shard). Kept for comparison; routed
    /// dispatch supersedes it.
    Broadcast,
    /// The front-end routes each record to its owning shard exactly once
    /// via a [`Router`]; `split` optionally spreads hot pairs across
    /// shards.
    Routed {
        /// Hot-pair splitting; `None` routes every pair by hash.
        split: Option<SplitConfig>,
    },
}

impl Default for Dispatch {
    fn default() -> Self {
        Dispatch::Routed { split: None }
    }
}

/// Shape of the parallel pipeline: how many shards, how transactions are
/// batched, how deep each shard's ring is, and how work is dispatched.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineConfig {
    /// Number of shard worker threads.
    pub shard_count: usize,
    /// Transactions per batch.
    pub batch_size: usize,
    /// Batches each shard ring can buffer before the front-end blocks
    /// (bounded: a slow shard applies backpressure instead of growing an
    /// unbounded queue).
    pub ring_capacity: usize,
    /// Dispatch mode (default: routed, no splitting).
    pub dispatch: Dispatch,
}

impl PipelineConfig {
    /// A pipeline with `shard_count` shards, routed dispatch, and the
    /// default batch size (64 transactions) and ring depth (64 batches).
    ///
    /// # Panics
    ///
    /// Panics if `shard_count == 0`.
    pub fn with_shards(shard_count: usize) -> Self {
        assert!(shard_count > 0, "need at least one shard");
        PipelineConfig {
            shard_count,
            batch_size: 64,
            ring_capacity: 64,
            dispatch: Dispatch::default(),
        }
    }

    /// Sets the transactions-per-batch granularity.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Sets the per-shard ring depth in batches.
    ///
    /// # Panics
    ///
    /// Panics if `ring_capacity == 0`.
    pub fn ring_capacity(mut self, ring_capacity: usize) -> Self {
        assert!(ring_capacity > 0, "ring capacity must be positive");
        self.ring_capacity = ring_capacity;
        self
    }

    /// Selects the dispatch mode.
    pub fn dispatch(mut self, dispatch: Dispatch) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// Shorthand: broadcast dispatch (the pre-routing behaviour).
    pub fn broadcast(self) -> Self {
        self.dispatch(Dispatch::Broadcast)
    }

    /// Shorthand: routed dispatch with hot-pair splitting enabled.
    pub fn split(self, split: SplitConfig) -> Self {
        self.dispatch(Dispatch::Routed { split: Some(split) })
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::with_shards(4)
    }
}

/// Lifetime counters of an [`IngestPipeline`]'s front-end.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Transactions enqueued toward the shards.
    pub transactions: u64,
    /// Batches dispatched to the shard rings.
    pub batches: u64,
    /// Ring-full backpressure events: sends that found a shard ring full
    /// and had to block.
    pub stalls: u64,
    /// Total nanoseconds the front-end spent blocked on full rings.
    /// Queueing delay, not shard service time — benchmarks that measure
    /// per-batch shard latency subtract this.
    pub stall_nanos: u64,
    /// Routed dispatch only: transactions routed to each shard (a
    /// transaction counts for every shard that received at least one of
    /// its records). Empty under broadcast.
    pub routed_transactions: Vec<u64>,
    /// Routed dispatch only: table records (items + pairs) routed to
    /// each shard — the deterministic per-shard work metric. Empty under
    /// broadcast.
    pub routed_ops: Vec<u64>,
    /// Pair records dealt round-robin by hot-pair splitting (0 without
    /// splitting).
    pub split_records: u64,
}

type Batch = Arc<Vec<Transaction>>;

/// A shard ring item: one batch, in the dispatch mode's shape.
enum ShardWork {
    /// The full batch; the worker partitions it itself.
    Broadcast(Batch),
    /// A routed batch; the worker applies only its own
    /// [`WorkList`](crate::WorkList).
    Routed(Arc<RoutedBatch>),
}

/// The multi-threaded ingestion pipeline: monitor front-end, routed (or
/// broadcast) batches over SPSC rings, one synopsis shard per worker
/// thread.
pub struct IngestPipeline {
    monitor: Monitor,
    analyzer_config: AnalyzerConfig,
    shard_count: usize,
    batch_size: usize,
    batch: Vec<Transaction>,
    /// `Some` in routed mode; `None` under broadcast.
    router: Option<Router>,
    /// Whether merged tallies must be summed per pair (splitting was
    /// enabled, so a pair's tally may be spread across shards).
    split_tallies: bool,
    senders: Vec<spsc::Sender<ShardWork>>,
    workers: Vec<JoinHandle<rtdac_synopsis::OnlineAnalyzer>>,
    stats: PipelineStats,
}

impl IngestPipeline {
    /// Builds the pipeline and spawns one worker thread per shard.
    pub fn new(
        monitor_config: MonitorConfig,
        analyzer_config: AnalyzerConfig,
        pipeline_config: PipelineConfig,
    ) -> Self {
        let shard_count = pipeline_config.shard_count;
        assert!(shard_count > 0, "need at least one shard");
        let router = match &pipeline_config.dispatch {
            Dispatch::Broadcast => None,
            Dispatch::Routed { split } => Some(Router::new(
                RouterConfig::new(shard_count)
                    .op_filter(analyzer_config.op_filter)
                    .split_opt(split.clone()),
            )),
        };
        let split_tallies = matches!(
            &pipeline_config.dispatch,
            Dispatch::Routed { split: Some(_) }
        );
        let shards = ShardedAnalyzer::new(analyzer_config.clone(), shard_count).into_shards();
        let mut senders = Vec::with_capacity(shard_count);
        let mut workers = Vec::with_capacity(shard_count);
        for (index, mut shard) in shards.into_iter().enumerate() {
            let (tx, rx) = spsc::channel::<ShardWork>(pipeline_config.ring_capacity);
            senders.push(tx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("rtdac-shard-{index}"))
                    .spawn(move || {
                        while let Some(work) = rx.recv() {
                            match work {
                                ShardWork::Broadcast(batch) => {
                                    for transaction in batch.iter() {
                                        shard.process_partition(transaction, index, shard_count);
                                    }
                                }
                                ShardWork::Routed(batch) => {
                                    batch.per_shard[index].apply(&mut shard);
                                }
                            }
                        }
                        shard
                    })
                    .expect("spawning shard worker"),
            );
        }
        IngestPipeline {
            monitor: Monitor::new(monitor_config),
            analyzer_config,
            shard_count,
            batch_size: pipeline_config.batch_size,
            batch: Vec::with_capacity(pipeline_config.batch_size),
            router,
            split_tallies,
            senders,
            workers,
            stats: PipelineStats::default(),
        }
    }

    /// Offers one block-layer event to the monitor; a completed
    /// transaction is batched toward the shards.
    pub fn push(&mut self, event: IoEvent) {
        if let Some(transaction) = self.monitor.push(event) {
            self.enqueue(transaction);
        }
    }

    /// Enqueues an already-windowed transaction, bypassing the monitor
    /// (replay and benchmark path).
    pub fn push_transaction(&mut self, transaction: Transaction) {
        self.enqueue(transaction);
    }

    fn enqueue(&mut self, transaction: Transaction) {
        self.stats.transactions += 1;
        self.batch.push(transaction);
        if self.batch.len() >= self.batch_size {
            self.flush_batch();
        }
    }

    /// Dispatches the open batch to the shard rings (blocking while
    /// rings are full; blocked time is accounted in
    /// [`PipelineStats::stall_nanos`]). Called automatically at
    /// batch-size granularity and by [`finish`](IngestPipeline::finish);
    /// call it directly to cap latency when the event stream pauses.
    pub fn flush_batch(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        self.stats.batches += 1;
        let batch = std::mem::take(&mut self.batch);
        self.batch.reserve(self.batch_size);
        match &mut self.router {
            None => {
                let batch: Batch = Arc::new(batch);
                for i in 0..self.senders.len() {
                    Self::send_with_stall_accounting(
                        &self.senders[i],
                        ShardWork::Broadcast(Arc::clone(&batch)),
                        &mut self.stats,
                    );
                }
            }
            Some(router) => {
                let routed = Arc::new(router.route(batch));
                for (i, sender) in self.senders.iter().enumerate() {
                    // Shards with no work in this batch are skipped: in
                    // routed mode ring traffic tracks owned work, not
                    // shard count.
                    if routed.per_shard[i].is_empty() {
                        continue;
                    }
                    Self::send_with_stall_accounting(
                        sender,
                        ShardWork::Routed(Arc::clone(&routed)),
                        &mut self.stats,
                    );
                }
            }
        }
    }

    /// Sends one work item, separating ring-full backpressure from the
    /// fast path: a `try_send` that fails falls back to the blocking
    /// `send`, and the blocked time is charged to `stall_nanos`.
    fn send_with_stall_accounting(
        sender: &spsc::Sender<ShardWork>,
        work: ShardWork,
        stats: &mut PipelineStats,
    ) {
        if let Err(work) = sender.try_send(work) {
            let blocked = Instant::now();
            // A send fails only if the worker died; its panic surfaces
            // when finish() joins.
            let _ = sender.send(work);
            stats.stall_nanos += blocked.elapsed().as_nanos() as u64;
            stats.stalls += 1;
        }
    }

    /// The monitor front-end (window state, latency average, stats).
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Front-end counters. Under routed dispatch the per-shard vectors
    /// reflect everything dispatched so far.
    pub fn stats(&self) -> PipelineStats {
        let mut stats = self.stats.clone();
        if let Some(router) = &self.router {
            let routed = router.stats();
            stats.routed_transactions = routed.routed_transactions.clone();
            stats.routed_ops = routed.routed_ops.clone();
            stats.split_records = routed.split_records;
        }
        stats
    }

    /// Number of shard workers.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Flushes the monitor and the open batch, closes the rings, joins
    /// the workers and reassembles their shards into a queryable
    /// [`ShardedAnalyzer`].
    ///
    /// # Panics
    ///
    /// Propagates a shard worker's panic, if one occurred.
    pub fn finish(mut self) -> ShardedAnalyzer {
        if let Some(transaction) = self.monitor.flush() {
            self.enqueue(transaction);
        }
        self.flush_batch();
        // Dropping the senders closes every ring; workers drain and
        // return their shards.
        self.senders.clear();
        let shards: Vec<_> = self
            .workers
            .drain(..)
            .map(|w| w.join().expect("shard worker panicked"))
            .collect();
        match &self.router {
            // Broadcast shards each counted the full transaction stream
            // themselves; from_shards takes shard 0's count.
            None => ShardedAnalyzer::from_shards(self.analyzer_config.clone(), shards),
            // Routed shards never count transactions; the front-end's
            // count is authoritative.
            Some(_) => ShardedAnalyzer::from_routed_shards(
                self.analyzer_config.clone(),
                shards,
                self.stats.transactions,
                self.split_tallies,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdac_synopsis::OnlineAnalyzer;
    use rtdac_types::{Extent, IoOp, Timestamp};
    use std::time::Duration;

    fn event(us: u64, block: u64) -> IoEvent {
        IoEvent::new(
            Timestamp::from_micros(us),
            1,
            IoOp::Read,
            Extent::new(block, 1).unwrap(),
            Duration::from_micros(40),
        )
    }

    fn events() -> Vec<IoEvent> {
        // Correlated bursts (two extents close in time) separated by
        // window-breaking gaps.
        let mut out = Vec::new();
        for i in 0..500u64 {
            let base = i * 10_000;
            out.push(event(base, 10 + (i % 5)));
            out.push(event(base + 20, 500 + (i % 5)));
        }
        out
    }

    fn dispatch_modes() -> Vec<Dispatch> {
        vec![
            Dispatch::Broadcast,
            Dispatch::Routed { split: None },
            Dispatch::Routed {
                split: Some(SplitConfig::default()),
            },
        ]
    }

    #[test]
    fn pipeline_matches_sequential_analysis() {
        let monitor_config =
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(100)));
        let analyzer_config = AnalyzerConfig::with_capacity(4096);

        // Sequential ground truth: same monitor, single-threaded analyzer.
        let transactions = Monitor::new(monitor_config.clone()).into_transactions(events());
        let mut single = OnlineAnalyzer::new(analyzer_config.clone());
        for t in &transactions {
            single.process(t);
        }
        let expected = single.snapshot().frequent_pairs(1);
        assert!(!expected.is_empty());

        for dispatch in dispatch_modes() {
            for shards in [1usize, 2, 4] {
                let mut pipeline = IngestPipeline::new(
                    monitor_config.clone(),
                    analyzer_config.clone(),
                    PipelineConfig::with_shards(shards)
                        .batch_size(16)
                        .ring_capacity(4)
                        .dispatch(dispatch.clone()),
                );
                for e in events() {
                    pipeline.push(e);
                }
                let analyzer = pipeline.finish();
                assert_eq!(
                    analyzer.snapshot().frequent_pairs(1),
                    expected,
                    "{shards} shards, {dispatch:?}"
                );
            }
        }
    }

    #[test]
    fn routed_shard_state_matches_broadcast_exactly() {
        // With splitting off, routed dispatch must leave every shard's
        // tables bit-for-bit identical to broadcast (tiny tables force
        // eviction churn, so record order matters).
        let monitor_config =
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(100)));
        let analyzer_config = AnalyzerConfig::with_capacity(8).item_capacity(4);
        for shards in [1usize, 2, 4, 8] {
            let run = |dispatch: Dispatch| {
                let mut pipeline = IngestPipeline::new(
                    monitor_config.clone(),
                    analyzer_config.clone(),
                    PipelineConfig::with_shards(shards)
                        .batch_size(8)
                        .dispatch(dispatch),
                );
                for e in events() {
                    pipeline.push(e);
                }
                pipeline.finish()
            };
            let broadcast = run(Dispatch::Broadcast);
            let routed = run(Dispatch::Routed { split: None });
            for (i, (b, r)) in broadcast.shards().iter().zip(routed.shards()).enumerate() {
                assert_eq!(b.snapshot(), r.snapshot(), "shard {i} of {shards}");
            }
            assert_eq!(broadcast.stats(), routed.stats());
        }
    }

    #[test]
    fn partial_batch_is_flushed_on_finish() {
        let mut pipeline = IngestPipeline::new(
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(100))),
            AnalyzerConfig::with_capacity(64),
            // Batch size far above the transaction count: nothing would
            // ship without the finish() flush.
            PipelineConfig::with_shards(2).batch_size(1024),
        );
        pipeline.push(event(0, 1));
        pipeline.push(event(10, 2));
        let analyzer = pipeline.finish();
        assert_eq!(analyzer.snapshot().pairs.len(), 1);
    }

    #[test]
    fn stats_count_batches_and_transactions() {
        let mut pipeline = IngestPipeline::new(
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(10))),
            AnalyzerConfig::with_capacity(64),
            PipelineConfig::with_shards(1).batch_size(2),
        );
        for i in 0..8u64 {
            // 1 ms apart: every event closes the previous transaction.
            pipeline.push(event(i * 1000, i));
        }
        let stats = pipeline.stats();
        assert_eq!(stats.transactions, 7); // the 8th is still open
        assert_eq!(stats.batches, 3); // batches of 2, one pending
        assert_eq!(stats.routed_transactions, vec![6]); // routed = flushed
        pipeline.finish();
    }

    #[test]
    fn backpressure_does_not_deadlock_and_is_accounted() {
        for dispatch in dispatch_modes() {
            // Tiny rings and batches: the front-end must block and resume
            // rather than drop or deadlock.
            let mut pipeline = IngestPipeline::new(
                MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(10))),
                AnalyzerConfig::with_capacity(1024),
                PipelineConfig::with_shards(2)
                    .batch_size(1)
                    .ring_capacity(1)
                    .dispatch(dispatch.clone()),
            );
            for i in 0..2_000u64 {
                pipeline.push(event(i * 1000, i % 50));
            }
            let stats = pipeline.stats();
            // Stall accounting only: every stall charged some blocked time.
            assert!(stats.stalls == 0 || stats.stall_nanos > 0);
            let analyzer = pipeline.finish();
            assert_eq!(analyzer.stats().transactions, 2_000, "{dispatch:?}");
        }
    }

    #[test]
    fn routed_pipeline_counts_per_shard_work() {
        let mut pipeline = IngestPipeline::new(
            MonitorConfig::new(crate::WindowPolicy::Static(Duration::from_micros(100))),
            AnalyzerConfig::with_capacity(4096),
            PipelineConfig::with_shards(4).batch_size(16),
        );
        for e in events() {
            pipeline.push(e);
        }
        pipeline.flush_batch(); // the 500th transaction is still open
        let stats = pipeline.stats();
        // Each 2-extent transaction is one pair + two item records on
        // exactly one shard.
        assert_eq!(stats.routed_transactions.len(), 4);
        assert_eq!(stats.routed_transactions.iter().sum::<u64>(), 499);
        assert_eq!(stats.routed_ops.iter().sum::<u64>(), 499 * 3);
        assert_eq!(stats.split_records, 0);
        pipeline.finish();
    }
}
