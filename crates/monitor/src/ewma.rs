use std::time::Duration;

/// Exponentially weighted moving average of I/O latency, used to size the
/// dynamic transaction window.
///
/// The paper sets the window to "double the average I/O latency" and notes
/// the Linux kernel maintains the same statistic for hybrid polling
/// (§III-B); an EWMA is the standard way such a running average is kept.
///
/// # Examples
///
/// ```
/// use rtdac_monitor::LatencyEwma;
/// use std::time::Duration;
///
/// let mut ewma = LatencyEwma::new(0.125);
/// ewma.observe(Duration::from_micros(100));
/// assert_eq!(ewma.average(), Some(Duration::from_micros(100)));
/// ewma.observe(Duration::from_micros(200));
/// // 0.875 * 100 + 0.125 * 200 = 112.5 µs
/// assert_eq!(ewma.average(), Some(Duration::from_nanos(112_500)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyEwma {
    alpha: f64,
    average_ns: Option<f64>,
    samples: u64,
}

impl LatencyEwma {
    /// Creates an EWMA with smoothing factor `alpha` (weight of each new
    /// sample). The first sample initializes the average directly.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < alpha <= 1.0`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA smoothing factor must be in (0, 1]"
        );
        LatencyEwma {
            alpha,
            average_ns: None,
            samples: 0,
        }
    }

    /// Feeds one latency observation.
    pub fn observe(&mut self, latency: Duration) {
        let sample = latency.as_nanos() as f64;
        self.average_ns = Some(match self.average_ns {
            None => sample,
            Some(avg) => avg + self.alpha * (sample - avg),
        });
        self.samples += 1;
    }

    /// The current average, or `None` before any observation.
    pub fn average(&self) -> Option<Duration> {
        self.average_ns.map(|ns| Duration::from_nanos(ns as u64))
    }

    /// Number of observations so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

impl Default for LatencyEwma {
    /// A conventional 1/8 smoothing factor (as used by e.g. TCP RTT
    /// estimation and the kernel's I/O poll statistics).
    fn default() -> Self {
        LatencyEwma::new(0.125)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = LatencyEwma::new(0.5);
        assert_eq!(e.average(), None);
        e.observe(Duration::from_micros(40));
        assert_eq!(e.average(), Some(Duration::from_micros(40)));
        assert_eq!(e.samples(), 1);
    }

    #[test]
    fn converges_toward_constant_input() {
        let mut e = LatencyEwma::new(0.25);
        e.observe(Duration::from_micros(1000));
        for _ in 0..100 {
            e.observe(Duration::from_micros(50));
        }
        let avg = e.average().unwrap();
        assert!(avg >= Duration::from_micros(50));
        assert!(avg < Duration::from_micros(51));
    }

    #[test]
    #[should_panic(expected = "smoothing factor")]
    fn rejects_zero_alpha() {
        LatencyEwma::new(0.0);
    }

    #[test]
    #[should_panic(expected = "smoothing factor")]
    fn rejects_alpha_above_one() {
        LatencyEwma::new(1.5);
    }
}
