//! A bounded single-producer/single-consumer ring buffer on `std::sync`
//! atomics — the channel between the ingestion front-end and each shard
//! worker of the parallel pipeline.
//!
//! No external crates (the workspace builds offline), no locks, no
//! allocation after construction: a power-of-two slot array, a head index
//! owned by the consumer, a tail index owned by the producer, and
//! acquire/release ordering on each so a slot's contents are visible
//! before its index. Each endpoint caches the other's index and re-reads
//! it only when the cache says full/empty, so an uncontended push/pop is
//! one atomic store plus one (cached) load.
//!
//! # Examples
//!
//! ```
//! use rtdac_monitor::spsc;
//!
//! let (tx, rx) = spsc::channel::<u64>(8);
//! let worker = std::thread::spawn(move || {
//!     let mut sum = 0;
//!     while let Some(v) = rx.recv() {
//!         sum += v;
//!     }
//!     sum
//! });
//! for v in 1..=10 {
//!     tx.send(v).unwrap();
//! }
//! drop(tx); // closes the channel; recv drains then returns None
//! assert_eq!(worker.join().unwrap(), 55);
//! ```

use std::cell::{Cell, UnsafeCell};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sleep length for long-idle ring waits (see the `recv` backoff).
/// Long enough that an idle worker stops competing for scheduler
/// quanta, short enough to be invisible next to batch service times.
const IDLE_SLEEP: Duration = Duration::from_micros(50);

struct Ring<T> {
    /// Slot storage; slot `i % capacity` is written by the producer and
    /// read by the consumer, never both at once (the indices partition
    /// ownership).
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot to read (consumer-owned; producer reads it).
    head: AtomicUsize,
    /// Next slot to write (producer-owned; consumer reads it).
    tail: AtomicUsize,
    /// Set when either endpoint drops.
    closed: AtomicBool,
    /// `capacity - 1`; capacity is a power of two so masking replaces
    /// modulo.
    mask: usize,
}

// SAFETY: the ring is shared between exactly one producer and one
// consumer; each slot is accessed by one side at a time (ownership is
// handed over through the acquire/release index publications), so `T:
// Send` suffices.
unsafe impl<T: Send> Sync for Ring<T> {}
unsafe impl<T: Send> Send for Ring<T> {}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Only the last Arc owner reaches this; any items the consumer
        // never received must be dropped here.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for i in head..tail {
            // SAFETY: slots in [head, tail) hold initialized values not
            // yet taken by the consumer.
            unsafe {
                (*self.slots[i & self.mask].get()).assume_init_drop();
            }
        }
    }
}

/// Error returned by [`Sender::send`] when the consumer is gone; gives
/// the rejected value back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// The producing endpoint. Dropping it closes the channel: the consumer
/// drains what remains, then sees `None`.
pub struct Sender<T> {
    ring: Arc<Ring<T>>,
    /// Producer-local cache of the consumer's head, refreshed only when
    /// the ring looks full.
    cached_head: Cell<usize>,
}

/// The consuming endpoint. Dropping it closes the channel: subsequent
/// sends fail and buffered items are dropped with the ring.
pub struct Receiver<T> {
    ring: Arc<Ring<T>>,
    /// Consumer-local cache of the producer's tail, refreshed only when
    /// the ring looks empty.
    cached_tail: Cell<usize>,
}

/// Creates a bounded SPSC channel with at least `capacity` slots
/// (rounded up to a power of two).
///
/// # Panics
///
/// Panics if `capacity == 0`.
pub fn channel<T: Send>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "capacity must be positive");
    let capacity = capacity.next_power_of_two();
    let slots = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(Ring {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
        mask: capacity - 1,
    });
    (
        Sender {
            ring: Arc::clone(&ring),
            cached_head: Cell::new(0),
        },
        Receiver {
            ring,
            cached_tail: Cell::new(0),
        },
    )
}

impl<T: Send> Sender<T> {
    /// Attempts to enqueue without blocking. `Err` returns the value:
    /// either the ring is full (`is_closed() == false`) or the consumer
    /// is gone.
    pub fn try_send(&self, value: T) -> Result<(), T> {
        if self.ring.closed.load(Ordering::Acquire) {
            return Err(value);
        }
        let tail = self.ring.tail.load(Ordering::Relaxed);
        if tail - self.cached_head.get() > self.ring.mask {
            // Looks full through the cache; refresh from the consumer.
            self.cached_head.set(self.ring.head.load(Ordering::Acquire));
            if tail - self.cached_head.get() > self.ring.mask {
                return Err(value);
            }
        }
        // SAFETY: the slot at `tail` is outside [head, tail), so the
        // consumer is not touching it; we are the only producer.
        unsafe {
            (*self.ring.slots[tail & self.ring.mask].get()).write(value);
        }
        // Release-publish the slot before advancing the index.
        self.ring.tail.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Enqueues, spinning (with yields) while the ring is full. Fails
    /// only if the consumer has dropped.
    pub fn send(&self, mut value: T) -> Result<(), SendError<T>> {
        let mut spins = 0u32;
        loop {
            match self.try_send(value) {
                Ok(()) => return Ok(()),
                Err(v) if self.ring.closed.load(Ordering::Acquire) => {
                    return Err(SendError(v));
                }
                Err(v) => {
                    value = v;
                    spins += 1;
                    if spins < 64 {
                        std::hint::spin_loop();
                    } else {
                        // Unlike recv(), the producer only yields and
                        // never sleeps: the consumer may be mid-nap (it
                        // saw an empty ring just before we filled it),
                        // and if the producer napped too every thread
                        // could be asleep at once — dead wall time on a
                        // saturated host. Yielding keeps one runnable
                        // thread while the consumer wakes.
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// Whether the other endpoint has dropped.
    pub fn is_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire)
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

impl<T: Send> Receiver<T> {
    /// Attempts to dequeue without blocking; `None` means currently
    /// empty (not necessarily closed).
    pub fn try_recv(&self) -> Option<T> {
        let head = self.ring.head.load(Ordering::Relaxed);
        if head == self.cached_tail.get() {
            // Looks empty through the cache; refresh from the producer.
            self.cached_tail.set(self.ring.tail.load(Ordering::Acquire));
            if head == self.cached_tail.get() {
                return None;
            }
        }
        // SAFETY: head < tail, so this slot holds a value the producer
        // published (acquire on tail ordered the write before this read);
        // we are the only consumer.
        let value = unsafe { (*self.ring.slots[head & self.ring.mask].get()).assume_init_read() };
        // Release the slot back to the producer.
        self.ring.head.store(head + 1, Ordering::Release);
        Some(value)
    }

    /// Dequeues, spinning (with yields) while the ring is empty. `None`
    /// means the producer dropped *and* the ring has been drained — the
    /// channel's end-of-stream.
    pub fn recv(&self) -> Option<T> {
        let mut spins = 0u32;
        loop {
            if let Some(value) = self.try_recv() {
                return Some(value);
            }
            if self.ring.closed.load(Ordering::Acquire) {
                // Closed: one final drain pass (the producer may have
                // pushed between our try_recv and the closed check).
                return self.try_recv();
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else if spins < 128 {
                std::thread::yield_now();
            } else {
                // Long-idle: sleep instead of yielding. A tight
                // yield loop keeps the thread runnable, and with more
                // workers than cores the scheduler round-robins every
                // idle worker through its quantum — burning CPU the
                // busy threads need. The ring buffers batches, so the
                // extra wake-up latency costs no throughput.
                std::thread::sleep(IDLE_SLEEP);
            }
        }
    }

    /// Whether the other endpoint has dropped (items may still remain).
    pub fn is_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire)
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn fifo_order_within_capacity() {
        let (tx, rx) = channel::<u32>(4);
        for v in 0..4 {
            tx.try_send(v).unwrap();
        }
        for v in 0..4 {
            assert_eq!(rx.try_recv(), Some(v));
        }
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn wraparound_preserves_order() {
        let (tx, rx) = channel::<u32>(4);
        // Drive the indices far past the capacity so masking wraps many
        // times.
        for round in 0..100u32 {
            for v in 0..3 {
                tx.try_send(round * 3 + v).unwrap();
            }
            for v in 0..3 {
                assert_eq!(rx.try_recv(), Some(round * 3 + v));
            }
        }
    }

    #[test]
    fn full_ring_rejects_then_accepts() {
        let (tx, rx) = channel::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(3));
        assert_eq!(rx.try_recv(), Some(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_recv(), Some(2));
        assert_eq!(rx.try_recv(), Some(3));
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = channel::<u32>(3);
        for v in 0..4 {
            tx.try_send(v).unwrap(); // 3 rounds up to 4 slots
        }
        assert_eq!(tx.try_send(4), Err(4));
    }

    #[test]
    fn producer_drop_lets_consumer_drain() {
        let (tx, rx) = channel::<u32>(8);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None); // stays closed
    }

    #[test]
    fn consumer_drop_fails_send() {
        let (tx, rx) = channel::<u32>(8);
        drop(rx);
        assert!(tx.is_closed());
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn undelivered_items_are_dropped_on_shutdown() {
        #[derive(Debug)]
        struct Counted<'a>(&'a AtomicUsize);
        impl Drop for Counted<'_> {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = AtomicUsize::new(0);
        {
            let (tx, rx) = channel::<Counted>(8);
            tx.try_send(Counted(&drops)).unwrap();
            tx.try_send(Counted(&drops)).unwrap();
            tx.try_send(Counted(&drops)).unwrap();
            let received = rx.try_recv().unwrap();
            drop(received);
            assert_eq!(drops.load(Ordering::SeqCst), 1);
            drop(tx);
            drop(rx); // two items still buffered
        }
        assert_eq!(drops.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn cross_thread_stream_arrives_intact() {
        let (tx, rx) = channel::<u64>(16);
        let producer = std::thread::spawn(move || {
            for v in 0..10_000u64 {
                tx.send(v).unwrap();
            }
        });
        let mut expected = 0u64;
        while let Some(v) = rx.recv() {
            assert_eq!(v, expected);
            expected += 1;
        }
        producer.join().unwrap();
        assert_eq!(expected, 10_000);
    }
}
