//! A bounded single-producer/single-consumer ring buffer on `std::sync`
//! atomics — the channel between the ingestion front-end and each shard
//! worker of the parallel pipeline.
//!
//! No external crates (the workspace builds offline), a lock-free hot
//! path, no allocation after construction: a power-of-two slot array, a
//! head index owned by the consumer, a tail index owned by the producer,
//! and acquire/release ordering on each so a slot's contents are visible
//! before its index. Each endpoint caches the other's index and re-reads
//! it only when the cache says full/empty, so an uncontended push/pop is
//! one atomic store plus one (cached) load.
//!
//! Blocking waits (`send` on a full ring, `recv` on an empty one) spin
//! briefly, then **park** until the opposite endpoint publishes — an
//! event-driven wake, not a poll. The handshake is Dekker-style: the
//! waiter raises a `waiting` flag before its final re-check, the
//! publisher stores its index before reading the flag, and SeqCst fences
//! order the two, so a publication can never slip between re-check and
//! park (a 1 ms `park_timeout` backstops the proof). Parking matters two
//! ways: an idle worker stops competing for scheduler quanta, and —
//! unlike the sleep-polling tier it replaced — a batch arriving while
//! the worker waits pays one unpark, not the remainder of a poll period,
//! which is what kept routed p99 service latency in the milliseconds.
//!
//! # Examples
//!
//! ```
//! use rtdac_monitor::spsc;
//!
//! let (tx, rx) = spsc::channel::<u64>(8);
//! let worker = std::thread::spawn(move || {
//!     let mut sum = 0;
//!     while let Some(v) = rx.recv() {
//!         sum += v;
//!     }
//!     sum
//! });
//! for v in 1..=10 {
//!     tx.send(v).unwrap();
//! }
//! drop(tx); // closes the channel; recv drains then returns None
//! assert_eq!(worker.join().unwrap(), 55);
//! ```

use std::cell::{Cell, UnsafeCell};
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::Thread;
use std::time::Duration;

/// Safety-net cap on a single park while waiting on the ring. Wake-ups
/// are event-driven (the opposite endpoint unparks on publish and on
/// close), so this timeout never bounds latency — it only bounds the
/// damage of a hypothetically lost wake-up, and an idle parked thread
/// costs one spurious wake per millisecond instead of the steady
/// scheduler churn a sleep-polling loop would.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// One endpoint's park/wake handshake. The would-be waiter registers its
/// thread handle and raises `waiting` *before* re-checking the ring; the
/// opposite endpoint publishes its index (or the closed flag) *before*
/// reading `waiting`. The two SeqCst fences order those four accesses
/// Dekker-style: either the waiter's re-check sees the publication, or
/// the publisher sees `waiting` and unparks — a publication can never
/// slip between the final re-check and the park.
struct Waiter {
    waiting: AtomicBool,
    /// The waiter's thread handle, registered once on first park. The
    /// mutex is uncontended except at the instant of a wake.
    thread: Mutex<Option<Thread>>,
}

impl Waiter {
    fn new() -> Self {
        Waiter {
            waiting: AtomicBool::new(false),
            thread: Mutex::new(None),
        }
    }

    /// Announces intent to park. The caller must re-check the ring (and
    /// the closed flag) after this before actually parking.
    fn prepare(&self) {
        {
            let mut slot = self.thread.lock().expect("waiter mutex");
            if slot.is_none() {
                *slot = Some(std::thread::current());
            }
        }
        self.waiting.store(true, Ordering::Relaxed);
        fence(Ordering::SeqCst);
    }

    /// Parks the current thread (bounded by [`PARK_TIMEOUT`]). Tolerates
    /// spurious and stale unparks; the caller loops and re-checks.
    fn park(&self) {
        std::thread::park_timeout(PARK_TIMEOUT);
    }

    /// Withdraws the intent to park (the re-check found work, or a park
    /// returned).
    fn stand_down(&self) {
        self.waiting.store(false, Ordering::Relaxed);
    }

    /// Wakes the endpoint if it is parked or committing to park. Callers
    /// publish their store (ring index or closed flag) first; the fence
    /// pairs with the one in [`Waiter::prepare`].
    fn wake(&self) {
        fence(Ordering::SeqCst);
        if self.waiting.swap(false, Ordering::Relaxed) {
            if let Some(thread) = self.thread.lock().expect("waiter mutex").as_ref() {
                thread.unpark();
            }
        }
    }
}

struct Ring<T> {
    /// Slot storage; slot `i % capacity` is written by the producer and
    /// read by the consumer, never both at once (the indices partition
    /// ownership).
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot to read (consumer-owned; producer reads it).
    head: AtomicUsize,
    /// Next slot to write (producer-owned; consumer reads it).
    tail: AtomicUsize,
    /// Set when either endpoint drops.
    closed: AtomicBool,
    /// `capacity - 1`; capacity is a power of two so masking replaces
    /// modulo.
    mask: usize,
    /// Park/wake handshake for a consumer blocked on an empty ring.
    consumer: Waiter,
    /// Park/wake handshake for a producer blocked on a full ring.
    producer: Waiter,
}

// SAFETY: the ring is shared between exactly one producer and one
// consumer; each slot is accessed by one side at a time (ownership is
// handed over through the acquire/release index publications), so `T:
// Send` suffices.
unsafe impl<T: Send> Sync for Ring<T> {}
unsafe impl<T: Send> Send for Ring<T> {}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Only the last Arc owner reaches this; any items the consumer
        // never received must be dropped here.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for i in head..tail {
            // SAFETY: slots in [head, tail) hold initialized values not
            // yet taken by the consumer.
            unsafe {
                (*self.slots[i & self.mask].get()).assume_init_drop();
            }
        }
    }
}

/// Error returned by [`Sender::send`] when the consumer is gone; gives
/// the rejected value back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// The producing endpoint. Dropping it closes the channel: the consumer
/// drains what remains, then sees `None`.
pub struct Sender<T> {
    ring: Arc<Ring<T>>,
    /// Producer-local cache of the consumer's head, refreshed only when
    /// the ring looks full.
    cached_head: Cell<usize>,
}

/// The consuming endpoint. Dropping it closes the channel: subsequent
/// sends fail and buffered items are dropped with the ring.
pub struct Receiver<T> {
    ring: Arc<Ring<T>>,
    /// Consumer-local cache of the producer's tail, refreshed only when
    /// the ring looks empty.
    cached_tail: Cell<usize>,
}

/// Creates a bounded SPSC channel with at least `capacity` slots
/// (rounded up to a power of two).
///
/// # Panics
///
/// Panics if `capacity == 0`.
pub fn channel<T: Send>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "capacity must be positive");
    let capacity = capacity.next_power_of_two();
    let slots = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(Ring {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
        mask: capacity - 1,
        consumer: Waiter::new(),
        producer: Waiter::new(),
    });
    (
        Sender {
            ring: Arc::clone(&ring),
            cached_head: Cell::new(0),
        },
        Receiver {
            ring,
            cached_tail: Cell::new(0),
        },
    )
}

impl<T: Send> Sender<T> {
    /// Attempts to enqueue without blocking. `Err` returns the value:
    /// either the ring is full (`is_closed() == false`) or the consumer
    /// is gone.
    pub fn try_send(&self, value: T) -> Result<(), T> {
        if self.ring.closed.load(Ordering::Acquire) {
            return Err(value);
        }
        let tail = self.ring.tail.load(Ordering::Relaxed);
        if tail - self.cached_head.get() > self.ring.mask {
            // Looks full through the cache; refresh from the consumer.
            self.cached_head.set(self.ring.head.load(Ordering::Acquire));
            if tail - self.cached_head.get() > self.ring.mask {
                return Err(value);
            }
        }
        // SAFETY: the slot at `tail` is outside [head, tail), so the
        // consumer is not touching it; we are the only producer.
        unsafe {
            (*self.ring.slots[tail & self.ring.mask].get()).write(value);
        }
        // Release-publish the slot before advancing the index, then wake
        // a consumer that may be parked on the empty ring.
        self.ring.tail.store(tail + 1, Ordering::Release);
        self.ring.consumer.wake();
        Ok(())
    }

    /// Enqueues, blocking while the ring is full: a short spin/yield
    /// ladder, then an event-driven park until the consumer frees a
    /// slot. Fails only if the consumer has dropped.
    pub fn send(&self, mut value: T) -> Result<(), SendError<T>> {
        let mut spins = 0u32;
        loop {
            match self.try_send(value) {
                Ok(()) => return Ok(()),
                Err(v) if self.ring.closed.load(Ordering::Acquire) => {
                    return Err(SendError(v));
                }
                Err(v) => {
                    value = v;
                    spins += 1;
                    if spins < 64 {
                        std::hint::spin_loop();
                    } else if spins < 128 {
                        std::thread::yield_now();
                    } else {
                        // Park until the consumer pops (it unparks us) —
                        // prepare/re-check/park so a pop cannot slip past
                        // unnoticed. Parking (vs yield-spinning) matters
                        // with more threads than cores: a runnable
                        // spinner eats the scheduler quantum the consumer
                        // needs to drain the ring.
                        self.ring.producer.prepare();
                        match self.try_send(value) {
                            Ok(()) => {
                                self.ring.producer.stand_down();
                                return Ok(());
                            }
                            Err(v) if self.ring.closed.load(Ordering::Acquire) => {
                                self.ring.producer.stand_down();
                                return Err(SendError(v));
                            }
                            Err(v) => {
                                value = v;
                                self.ring.producer.park();
                                self.ring.producer.stand_down();
                            }
                        }
                    }
                }
            }
        }
    }

    /// Whether the other endpoint has dropped.
    pub fn is_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire)
    }

    /// Occupied slot count at this instant — a fresh (relaxed) read of
    /// both indices, exact up to the race with a concurrent pop. The
    /// pipeline samples this right after each send to maintain the
    /// ring high-water marks the adaptive controller watches.
    pub fn occupancy(&self) -> usize {
        self.ring
            .tail
            .load(Ordering::Relaxed)
            .wrapping_sub(self.ring.head.load(Ordering::Relaxed))
    }

    /// The ring's actual slot count (requested capacity rounded up to
    /// a power of two) — the denominator for occupancy fractions.
    pub fn slot_capacity(&self) -> usize {
        self.ring.mask + 1
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
        // A consumer parked on the empty ring must observe the close.
        self.ring.consumer.wake();
    }
}

impl<T: Send> Receiver<T> {
    /// Attempts to dequeue without blocking; `None` means currently
    /// empty (not necessarily closed).
    pub fn try_recv(&self) -> Option<T> {
        let head = self.ring.head.load(Ordering::Relaxed);
        if head == self.cached_tail.get() {
            // Looks empty through the cache; refresh from the producer.
            self.cached_tail.set(self.ring.tail.load(Ordering::Acquire));
            if head == self.cached_tail.get() {
                return None;
            }
        }
        // SAFETY: head < tail, so this slot holds a value the producer
        // published (acquire on tail ordered the write before this read);
        // we are the only consumer.
        let value = unsafe { (*self.ring.slots[head & self.ring.mask].get()).assume_init_read() };
        // Release the slot back to the producer, then wake a producer
        // that may be parked on the full ring.
        self.ring.head.store(head + 1, Ordering::Release);
        self.ring.producer.wake();
        Some(value)
    }

    /// Dequeues, blocking while the ring is empty: a short spin/yield
    /// ladder, then an event-driven park until the producer publishes.
    /// `None` means the producer dropped *and* the ring has been
    /// drained — the channel's end-of-stream.
    pub fn recv(&self) -> Option<T> {
        let mut spins = 0u32;
        loop {
            if let Some(value) = self.try_recv() {
                return Some(value);
            }
            if self.ring.closed.load(Ordering::Acquire) {
                // Closed: one final drain pass (the producer may have
                // pushed between our try_recv and the closed check).
                return self.try_recv();
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else if spins < 128 {
                std::thread::yield_now();
            } else {
                // Long-idle: park until the producer publishes (it
                // unparks us). A sleep-polling tier here put its full
                // poll period into the service-latency tail whenever a
                // batch arrived mid-nap; an event-driven wake costs one
                // unpark instead, and an idle worker leaves the
                // scheduler alone entirely.
                self.ring.consumer.prepare();
                if let Some(value) = self.try_recv() {
                    self.ring.consumer.stand_down();
                    return Some(value);
                }
                if self.ring.closed.load(Ordering::Acquire) {
                    self.ring.consumer.stand_down();
                    return self.try_recv();
                }
                self.ring.consumer.park();
                self.ring.consumer.stand_down();
            }
        }
    }

    /// Whether the other endpoint has dropped (items may still remain).
    pub fn is_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire)
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.ring.closed.store(true, Ordering::Release);
        // A producer parked on the full ring must observe the close.
        self.ring.producer.wake();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn fifo_order_within_capacity() {
        let (tx, rx) = channel::<u32>(4);
        for v in 0..4 {
            tx.try_send(v).unwrap();
        }
        for v in 0..4 {
            assert_eq!(rx.try_recv(), Some(v));
        }
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn wraparound_preserves_order() {
        let (tx, rx) = channel::<u32>(4);
        // Drive the indices far past the capacity so masking wraps many
        // times.
        for round in 0..100u32 {
            for v in 0..3 {
                tx.try_send(round * 3 + v).unwrap();
            }
            for v in 0..3 {
                assert_eq!(rx.try_recv(), Some(round * 3 + v));
            }
        }
    }

    #[test]
    fn full_ring_rejects_then_accepts() {
        let (tx, rx) = channel::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(3));
        assert_eq!(rx.try_recv(), Some(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_recv(), Some(2));
        assert_eq!(rx.try_recv(), Some(3));
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = channel::<u32>(3);
        for v in 0..4 {
            tx.try_send(v).unwrap(); // 3 rounds up to 4 slots
        }
        assert_eq!(tx.try_send(4), Err(4));
    }

    #[test]
    fn producer_drop_lets_consumer_drain() {
        let (tx, rx) = channel::<u32>(8);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None); // stays closed
    }

    #[test]
    fn consumer_drop_fails_send() {
        let (tx, rx) = channel::<u32>(8);
        drop(rx);
        assert!(tx.is_closed());
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn undelivered_items_are_dropped_on_shutdown() {
        #[derive(Debug)]
        struct Counted<'a>(&'a AtomicUsize);
        impl Drop for Counted<'_> {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = AtomicUsize::new(0);
        {
            let (tx, rx) = channel::<Counted>(8);
            tx.try_send(Counted(&drops)).unwrap();
            tx.try_send(Counted(&drops)).unwrap();
            tx.try_send(Counted(&drops)).unwrap();
            let received = rx.try_recv().unwrap();
            drop(received);
            assert_eq!(drops.load(Ordering::SeqCst), 1);
            drop(tx);
            drop(rx); // two items still buffered
        }
        assert_eq!(drops.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn parked_consumer_wakes_on_send() {
        // The consumer outlasts the spin/yield ladder and parks; a send
        // must unpark it promptly (well inside the test timeout, without
        // relying on the park_timeout backstop alone).
        let (tx, rx) = channel::<u32>(4);
        let consumer = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(20)); // let it park
        tx.try_send(99).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(99));
    }

    #[test]
    fn parked_consumer_wakes_on_close() {
        let (tx, rx) = channel::<u32>(4);
        let consumer = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn parked_producer_wakes_on_recv_and_on_close() {
        // Fill the ring so the producer's blocking send parks.
        let (tx, rx) = channel::<u32>(2);
        tx.try_send(0).unwrap();
        tx.try_send(1).unwrap();
        let producer = std::thread::spawn(move || {
            tx.send(2).unwrap(); // parks until a pop frees a slot
            tx.send(3) // parks until the receiver drops
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Some(0));
        std::thread::sleep(Duration::from_millis(20)); // let send(3) park
        drop(rx);
        assert_eq!(producer.join().unwrap(), Err(SendError(3)));
    }

    #[test]
    fn occupancy_tracks_sends_and_recvs() {
        let (tx, rx) = channel::<u32>(3); // rounds up to 4 slots
        assert_eq!(tx.slot_capacity(), 4);
        assert_eq!(tx.occupancy(), 0);
        for v in 0..4 {
            tx.try_send(v).unwrap();
        }
        assert_eq!(tx.occupancy(), 4); // saturated
        rx.try_recv().unwrap();
        assert_eq!(tx.occupancy(), 3);
        while rx.try_recv().is_some() {}
        assert_eq!(tx.occupancy(), 0);
    }

    #[test]
    fn cross_thread_stream_arrives_intact() {
        let (tx, rx) = channel::<u64>(16);
        let producer = std::thread::spawn(move || {
            for v in 0..10_000u64 {
                tx.send(v).unwrap();
            }
        });
        let mut expected = 0u64;
        while let Some(v) = rx.recv() {
            assert_eq!(v, expected);
            expected += 1;
        }
        producer.join().unwrap();
        assert_eq!(expected, 10_000);
    }
}
