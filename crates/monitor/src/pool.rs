//! The elastic stage pool: the worker threads, SPSC ring matrix and
//! buffer-recycling machinery behind [`IngestPipeline`]. One
//! [`StagePool`] is one topology epoch — `IngestPipeline` (and, above
//! it, the tenant runtime) owns the lifecycle: spawn, quiesce at a
//! sequence barrier, re-seed, re-spawn. The protocol and its
//! correctness argument live in the `pipeline` module docs and
//! DESIGN.md §11/§15.
//!
//! [`IngestPipeline`]: crate::IngestPipeline
//! [`StagePool`]: crate::pool::StagePool

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use rtdac_synopsis::{AnalyzerConfig, LiveView, OnlineAnalyzer, ShardDelta};
use rtdac_types::{Epoch, Topology, Transaction};

use crate::controller::WindowSample;
use crate::pipeline::{Dispatch, PipelineConfig, PipelineStats};
use crate::router::{Router, RouterConfig, WorkList};
use crate::spsc;

pub(crate) type Batch = Arc<Vec<Transaction>>;

/// A shard ring item: one batch, in the dispatch mode's shape.
pub(crate) enum ShardWork {
    /// The full batch; the worker partitions it itself.
    Broadcast(Batch),
    /// This shard's share of one routed batch. The worker applies it,
    /// clears it, and recycles the buffer to the router that filled it.
    Routed(WorkList),
}

/// Live counters shared between the pool's workers and
/// [`IngestPipeline::stats`]. Eventually consistent while the pipeline
/// runs (each worker publishes at batch granularity) and exact once
/// the pool quiesces. One instance per pool epoch: vectors are sized
/// to the epoch's topology.
pub(crate) struct PoolCounters {
    pub(crate) routed_transactions: Vec<AtomicU64>,
    pub(crate) routed_ops: Vec<AtomicU64>,
    pub(crate) split_records: AtomicU64,
    pub(crate) routing_stalls: AtomicU64,
    pub(crate) routing_stall_nanos: AtomicU64,
    /// Per shard: high-water occupancy of its work rings, sampled
    /// producer-side after each send. Swapped to zero by the
    /// controller's window sampler (the epoch maximum is folded into
    /// `StagePool::highwater_fold`).
    pub(crate) shard_ring_high: Vec<AtomicU64>,
    /// Per router (parallel routing): high-water occupancy of its
    /// batch ring.
    pub(crate) batch_ring_high: Vec<AtomicU64>,
    /// Per router: cumulative busy (service) nanoseconds this epoch.
    pub(crate) router_busy_nanos: Vec<AtomicU64>,
    /// Per shard: cumulative busy (service) nanoseconds this epoch.
    pub(crate) shard_busy_nanos: Vec<AtomicU64>,
    /// Deltas published toward the live view this pool epoch.
    pub(crate) epoch_publishes: AtomicU64,
    /// Publish ticks deferred for lack of a recycled buffer.
    pub(crate) epoch_publish_skips: AtomicU64,
}

impl PoolCounters {
    /// `router_slots` is the router-stage width (0 under broadcast,
    /// which has no routing stage).
    fn new(shard_count: usize, router_slots: usize) -> Self {
        let zeros = |n: usize| (0..n).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        PoolCounters {
            routed_transactions: zeros(shard_count),
            routed_ops: zeros(shard_count),
            split_records: AtomicU64::new(0),
            routing_stalls: AtomicU64::new(0),
            routing_stall_nanos: AtomicU64::new(0),
            shard_ring_high: zeros(shard_count),
            batch_ring_high: zeros(router_slots),
            router_busy_nanos: zeros(router_slots),
            shard_busy_nanos: zeros(shard_count),
            epoch_publishes: AtomicU64::new(0),
            epoch_publish_skips: AtomicU64::new(0),
        }
    }
}

/// The front-end's dispatch machinery, by mode and router count.
pub(crate) enum FrontEnd {
    /// Broadcast: every shard gets the whole batch behind an `Arc`.
    Broadcast {
        senders: Vec<spsc::Sender<ShardWork>>,
    },
    /// Routed, one router, running inline on the caller's thread.
    Inline(Box<InlineRouting>),
    /// Routed, `R >= 2` router worker threads fed round-robin.
    Parallel(ParallelRouting),
}

/// Inline routing state: the router plus the per-shard staging lists
/// and recycling rings.
pub(crate) struct InlineRouting {
    pub(crate) router: Router,
    pub(crate) senders: Vec<spsc::Sender<ShardWork>>,
    /// Cleared work lists flowing back from the shards, one ring per
    /// shard (buffers never migrate between shards, so each one's
    /// capacity plateaus at its own shard's demand).
    pub(crate) returns: Vec<spsc::Receiver<WorkList>>,
    /// One staging list per shard, swapped out as lists ship.
    pub(crate) staged: Vec<WorkList>,
}

/// Parallel routing state: batch rings to R router workers and the
/// emptied batch buffers flowing back.
pub(crate) struct ParallelRouting {
    pub(crate) batch_senders: Vec<spsc::Sender<Vec<Transaction>>>,
    pub(crate) batch_returns: Vec<spsc::Receiver<Vec<Transaction>>>,
    pub(crate) handles: Vec<JoinHandle<Router>>,
}

/// Sends one item, separating ring-full backpressure from the fast
/// path: a failed `try_send` falls back to the blocking `send`, and the
/// blocked time is charged to the caller's stall counters.
pub(crate) fn send_counting_stalls<T: Send>(
    sender: &spsc::Sender<T>,
    value: T,
    stalls: &mut u64,
    stall_nanos: &mut u64,
) {
    if let Err(value) = sender.try_send(value) {
        let blocked = Instant::now();
        // A send fails only if the receiving worker died; its panic
        // surfaces when finish() joins.
        let _ = sender.send(value);
        *stall_nanos += blocked.elapsed().as_nanos() as u64;
        *stalls += 1;
    }
}

/// Body of one parallel router worker: batches in (a round-robin slice
/// of the stream, in order), one `WorkList` per shard out — to *every*
/// shard, empty or not, because the sequence-ordered fan-in consumes
/// exactly one entry per batch per ring.
fn router_worker(
    index: usize,
    mut router: Router,
    batches: spsc::Receiver<Vec<Transaction>>,
    batch_return: spsc::Sender<Vec<Transaction>>,
    work_senders: Vec<spsc::Sender<ShardWork>>,
    work_returns: Vec<spsc::Receiver<WorkList>>,
    counters: Arc<PoolCounters>,
) -> Router {
    let shard_count = work_senders.len();
    let mut staged: Vec<WorkList> = (0..shard_count).map(|_| WorkList::default()).collect();
    let mut reported_splits = 0u64;
    while let Some(mut batch) = batches.recv() {
        let started = Instant::now();
        router.route_into(&batch, &mut staged);
        batch.clear();
        // Hand the emptied batch buffer back to the front-end; if the
        // return ring is full or gone the buffer is simply dropped.
        let _ = batch_return.try_send(batch);
        let (mut stalls, mut stall_nanos) = (0u64, 0u64);
        for (shard, sender) in work_senders.iter().enumerate() {
            // Refill the stage from this shard's return ring before
            // swapping the routed list out. Buffers never migrate
            // between (router, shard) cycles, so each one's capacity
            // plateaus at its cycle's demand.
            let refill = work_returns[shard].try_recv().unwrap_or_default();
            let work = std::mem::replace(&mut staged[shard], refill);
            counters.routed_transactions[shard]
                .fetch_add(work.txns.len() as u64, Ordering::Relaxed);
            counters.routed_ops[shard].fetch_add(work.ops(), Ordering::Relaxed);
            send_counting_stalls(
                sender,
                ShardWork::Routed(work),
                &mut stalls,
                &mut stall_nanos,
            );
            counters.shard_ring_high[shard].fetch_max(sender.occupancy() as u64, Ordering::Relaxed);
        }
        if stalls > 0 {
            counters.routing_stalls.fetch_add(stalls, Ordering::Relaxed);
            counters
                .routing_stall_nanos
                .fetch_add(stall_nanos, Ordering::Relaxed);
        }
        let splits = router.stats().split_records;
        counters
            .split_records
            .fetch_add(splits - reported_splits, Ordering::Relaxed);
        reported_splits = splits;
        // Busy = service time: the batch window minus time blocked on
        // full shard rings (that part is queueing, charged above).
        let busy = (started.elapsed().as_nanos() as u64).saturating_sub(stall_nanos);
        counters.router_busy_nanos[index].fetch_add(busy, Ordering::Relaxed);
    }
    router
}

/// One epoch of the elastic worker pools: the routers and shard
/// workers for a fixed topology, their shared counters, and the
/// per-epoch batch sequence. [`IngestPipeline::resize`] quiesces the
/// current pool and spawns a fresh one.
pub(crate) struct StagePool {
    pub(crate) front_end: FrontEnd,
    pub(crate) workers: Vec<JoinHandle<OnlineAnalyzer>>,
    pub(crate) counters: Arc<PoolCounters>,
    /// Slot count of every work ring this epoch.
    pub(crate) ring_slots: u64,
    /// Batches dispatched this epoch: the dealing sequence for
    /// `router_for_batch` and the shard fan-in. Restarts at zero each
    /// epoch so the round-robin merge starts aligned for any new R.
    pub(crate) sequence: u64,
    /// Batches dispatched since the last controller window sample.
    pub(crate) window_batches: u64,
    /// Epoch-maximum ring high-water marks, folded in when the window
    /// sampler swaps the live atomics to zero (so `stats()` stays an
    /// epoch maximum even with a controller sampling windows).
    pub(crate) highwater_fold: Vec<u64>,
    /// Cumulative busy nanos at the last window sample, per router.
    pub(crate) prev_router_busy: Vec<u64>,
    /// Cumulative busy nanos at the last window sample, per shard.
    pub(crate) prev_shard_busy: Vec<u64>,
    /// Per shard, publishing only: published deltas flowing to the
    /// reader ([`IngestPipeline::poll_live`] drains these).
    pub(crate) delta_rx: Vec<spsc::Receiver<Box<ShardDelta>>>,
    /// Per shard, publishing only: recycled delta buffers flowing back
    /// to the worker.
    pub(crate) buf_tx: Vec<spsc::Sender<Box<ShardDelta>>>,
}

impl StagePool {
    /// Spawns the router and shard workers for one topology epoch,
    /// seeding the shard workers with `shards` (fresh ones at
    /// construction, re-seeded ones after a resize). Every return ring
    /// is prefilled to the forward bound so the pool is allocation-free
    /// from its very first batch.
    /// `epoch_base` is the pipeline's cumulative batch count at spawn:
    /// worker batch counters restart each pool epoch, so published
    /// epochs are offset by the base to stay monotone across resizes.
    pub(crate) fn spawn(
        shards: Vec<OnlineAnalyzer>,
        pipeline_config: &PipelineConfig,
        analyzer_config: &AnalyzerConfig,
        epoch_base: u64,
    ) -> Self {
        let shard_count = shards.len();
        debug_assert_eq!(shard_count, pipeline_config.shard_count);
        let routed = matches!(&pipeline_config.dispatch, Dispatch::Routed { .. });
        // Broadcast has a single feeder regardless of the router knob.
        let feeders = if routed { pipeline_config.routers } else { 1 };
        let ring_capacity = pipeline_config.ring_capacity;
        // Buffer recycling is provably mint-free: a (producer, consumer)
        // cycle over a forward ring of (power-of-two) capacity C can
        // hold at most C + 2 buffers outside its return ring — C
        // queued, one staged at the producer, one in the consumer's
        // hands. Each return ring is therefore *prefilled* with C + 2
        // empty buffers at construction (total circulation C + 3 with
        // the initial stage), so whenever the producer refills, at
        // least one recycled buffer is waiting: the `unwrap_or_default`
        // mint fallbacks below are dead code in steady *and* cold
        // state. Return rings are sized so a recycled buffer is never
        // dropped for lack of space (dropping one would shrink
        // circulation below the forward bound and force a mint). The
        // rings rotate FIFO, so every buffer in a cycle is exercised —
        // and its capacity grown to the cycle's demand — within one
        // full rotation.
        let forward_bound = ring_capacity.next_power_of_two() + 2;
        let return_capacity = ring_capacity.next_power_of_two() * 2 + 2;

        let counters = Arc::new(PoolCounters::new(
            shard_count,
            if routed { feeders } else { 0 },
        ));

        // Channel matrix: one work ring per (feeder, shard), and in
        // routed mode a matching return ring recycling cleared lists.
        let mut work_tx: Vec<Vec<spsc::Sender<ShardWork>>> = (0..feeders)
            .map(|_| Vec::with_capacity(shard_count))
            .collect();
        let mut ret_rx: Vec<Vec<spsc::Receiver<WorkList>>> = (0..feeders)
            .map(|_| Vec::with_capacity(shard_count))
            .collect();
        let publish_interval = pipeline_config.publish_interval_batches as u64;
        let mut delta_rx = Vec::new();
        let mut buf_tx = Vec::new();
        let mut workers = Vec::with_capacity(shard_count);
        for (index, mut shard) in shards.into_iter().enumerate() {
            // Delta publishing: one forward ring (worker → reader) and
            // one return ring (reader → worker), with `publish_buffers`
            // boxes circulating. Both rings hold the whole circulation,
            // so neither side's try_send can ever fail — the worker
            // never blocks on the reader and no delta is ever dropped.
            let publish = (publish_interval > 0).then(|| {
                shard.enable_delta_tracking();
                let buffers = pipeline_config.publish_buffers;
                let (d_tx, d_rx) = spsc::channel::<Box<ShardDelta>>(buffers);
                let (b_tx, b_rx) = spsc::channel::<Box<ShardDelta>>(buffers);
                for _ in 0..buffers {
                    // Preallocated to the shard's hard delta bounds, so
                    // extraction never grows a buffer mid-stream no
                    // matter how many epochs merged while it was away.
                    let mut buf = Box::<ShardDelta>::default();
                    shard.preallocate_delta(&mut buf);
                    let sent = b_tx.try_send(buf).is_ok();
                    debug_assert!(sent, "buffer ring sized below its prefill");
                }
                delta_rx.push(d_rx);
                buf_tx.push(b_tx);
                (d_tx, b_rx)
            });
            let mut rings = Vec::with_capacity(feeders);
            let mut returns = Vec::with_capacity(feeders);
            for feeder in 0..feeders {
                let (tx, rx) = spsc::channel::<ShardWork>(ring_capacity);
                work_tx[feeder].push(tx);
                rings.push(rx);
                if routed {
                    let (return_tx, return_rx) = spsc::channel::<WorkList>(return_capacity);
                    for _ in 0..forward_bound {
                        let sent = return_tx.try_send(WorkList::default()).is_ok();
                        debug_assert!(sent, "return ring sized below its prefill");
                    }
                    returns.push(return_tx);
                    ret_rx[feeder].push(return_rx);
                }
            }
            let worker_counters = Arc::clone(&counters);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("rtdac-shard-{index}"))
                    .spawn(move || {
                        // Sequence-ordered fan-in: batch n arrives on
                        // ring n % feeders and each ring is FIFO, so
                        // reading the rings round-robin replays the
                        // exact global batch order. A closed-and-empty
                        // ring at the expected slot means batch n was
                        // never dispatched; the sequence counter is
                        // monotone, so no later batch exists anywhere
                        // and the worker is done — this is the quiesce
                        // barrier the resize protocol drains to.
                        let feeders = rings.len();
                        let mut next = 0usize;
                        // Publish cadence: batches applied this pool
                        // epoch, plus whether an epoch tick is still
                        // waiting for a recycled buffer.
                        let mut batches = 0u64;
                        let mut publish_due = false;
                        loop {
                            let ring = next % feeders;
                            let Some(work) = rings[ring].recv() else {
                                break;
                            };
                            let started = Instant::now();
                            match work {
                                ShardWork::Broadcast(batch) => {
                                    for transaction in batch.iter() {
                                        shard.process_partition(transaction, index, shard_count);
                                    }
                                }
                                ShardWork::Routed(mut work) => {
                                    work.apply(&mut shard);
                                    work.clear();
                                    // Recycle the buffer to the router
                                    // that filled it; a closed ring
                                    // (shutdown) just drops it.
                                    let _ = returns[ring].try_send(work);
                                }
                            }
                            batches += 1;
                            if let Some((delta_tx, buf_rx)) = publish.as_ref() {
                                if batches.is_multiple_of(publish_interval) {
                                    if publish_due {
                                        // A whole interval passed with
                                        // the reader still holding every
                                        // buffer: this epoch merges into
                                        // the next publish.
                                        worker_counters
                                            .epoch_publish_skips
                                            .fetch_add(1, Ordering::Relaxed);
                                    }
                                    publish_due = true;
                                }
                                if publish_due {
                                    if let Some(mut buf) = buf_rx.try_recv() {
                                        buf.clear();
                                        shard.extract_delta(&mut buf);
                                        buf.epoch = Epoch::new(epoch_base + batches);
                                        let sent = delta_tx.try_send(buf).is_ok();
                                        debug_assert!(
                                            sent,
                                            "delta ring sized below buffer circulation"
                                        );
                                        worker_counters
                                            .epoch_publishes
                                            .fetch_add(1, Ordering::Relaxed);
                                        publish_due = false;
                                    }
                                }
                            }
                            worker_counters.shard_busy_nanos[index]
                                .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            next += 1;
                        }
                        shard
                    })
                    .expect("spawning shard worker"),
            );
        }

        let front_end = match &pipeline_config.dispatch {
            Dispatch::Broadcast => FrontEnd::Broadcast {
                senders: work_tx.pop().expect("one broadcast feeder"),
            },
            Dispatch::Routed { split } => {
                let router_config = RouterConfig::new(shard_count)
                    .op_filter(analyzer_config.op_filter)
                    .split_opt(split.clone());
                if feeders == 1 {
                    FrontEnd::Inline(Box::new(InlineRouting {
                        router: Router::new(router_config),
                        senders: work_tx.pop().expect("one inline feeder"),
                        returns: ret_rx.pop().expect("one inline feeder"),
                        staged: (0..shard_count).map(|_| WorkList::default()).collect(),
                    }))
                } else {
                    let mut batch_senders = Vec::with_capacity(feeders);
                    let mut batch_returns = Vec::with_capacity(feeders);
                    let mut handles = Vec::with_capacity(feeders);
                    for (index, (work_senders, work_returns)) in
                        work_tx.drain(..).zip(ret_rx.drain(..)).enumerate()
                    {
                        let (batch_tx, batch_rx) = spsc::channel::<Vec<Transaction>>(ring_capacity);
                        // Batch buffers migrate between router cycles
                        // (the front-end grabs a replacement from any
                        // return ring), so each ring is sized for the
                        // whole circulation, not just its own cycle's.
                        let (return_tx, return_rx) =
                            spsc::channel::<Vec<Transaction>>(feeders * forward_bound + 1);
                        for _ in 0..forward_bound {
                            let sent = return_tx
                                .try_send(Vec::with_capacity(pipeline_config.batch_size))
                                .is_ok();
                            debug_assert!(sent, "batch return ring sized below its prefill");
                        }
                        batch_senders.push(batch_tx);
                        batch_returns.push(return_rx);
                        let router = Router::new(router_config.clone());
                        let counters = Arc::clone(&counters);
                        handles.push(
                            std::thread::Builder::new()
                                .name(format!("rtdac-router-{index}"))
                                .spawn(move || {
                                    router_worker(
                                        index,
                                        router,
                                        batch_rx,
                                        return_tx,
                                        work_senders,
                                        work_returns,
                                        counters,
                                    )
                                })
                                .expect("spawning router worker"),
                        );
                    }
                    FrontEnd::Parallel(ParallelRouting {
                        batch_senders,
                        batch_returns,
                        handles,
                    })
                }
            }
        };

        let router_slots = counters.router_busy_nanos.len();
        StagePool {
            front_end,
            workers,
            counters,
            ring_slots: ring_capacity.next_power_of_two() as u64,
            sequence: 0,
            window_batches: 0,
            highwater_fold: vec![0; shard_count],
            prev_router_busy: vec![0; router_slots],
            prev_shard_busy: vec![0; shard_count],
            delta_rx,
            buf_tx,
        }
    }

    /// Drains the pool to the sequence barrier and returns the shard
    /// analyzers. Dropping the front-end closes the batch rings;
    /// routers route everything already dispatched and exit, which
    /// closes the shard rings; shard workers apply everything and
    /// return their state. Routing-stage scalars are folded into
    /// `stats`' cumulative base; per-stage vectors die with the epoch.
    pub(crate) fn quiesce(
        self,
        stats: &mut PipelineStats,
        live: Option<&mut LiveView>,
    ) -> Vec<OnlineAnalyzer> {
        let StagePool {
            front_end,
            workers,
            counters,
            delta_rx,
            ..
        } = self;
        match front_end {
            FrontEnd::Broadcast { senders } => drop(senders),
            FrontEnd::Inline(routing) => {
                let split_records = routing.router.stats().split_records;
                // Dropping the routing state closes the shard rings.
                drop(routing);
                stats.split_records += split_records;
            }
            FrontEnd::Parallel(routing) => {
                // Closing the batch rings drains the routers; router
                // exit closes the shard rings. After the join the live
                // atomics are exact.
                drop(routing.batch_senders);
                drop(routing.batch_returns);
                for handle in routing.handles {
                    handle.join().expect("router worker panicked");
                }
                stats.routing_stalls += counters.routing_stalls.load(Ordering::Relaxed);
                stats.routing_stall_nanos += counters.routing_stall_nanos.load(Ordering::Relaxed);
                stats.split_records += counters.split_records.load(Ordering::Relaxed);
            }
        }
        let shards: Vec<OnlineAnalyzer> = workers
            .into_iter()
            .map(|w| w.join().expect("shard worker panicked"))
            .collect();
        stats.epoch_publishes += counters.epoch_publishes.load(Ordering::Relaxed);
        stats.epoch_publish_skips += counters.epoch_publish_skips.load(Ordering::Relaxed);
        // Fold deltas still in flight into the live view before the
        // rings drop: after the joins every published delta is in its
        // ring, so this drain is complete and the view loses nothing
        // across a resize.
        if let Some(view) = live {
            for (shard, rx) in delta_rx.iter().enumerate() {
                while let Some(delta) = rx.try_recv() {
                    view.apply_delta(shard, &delta);
                }
            }
        }
        shards
    }

    /// Samples one controller window: swaps the ring high-water marks
    /// to zero (folding the epoch maximum aside for `stats()`) and
    /// takes the busy-time deltas since the previous sample, reduced to
    /// the busiest single ring / router / shard.
    pub(crate) fn sample_window(&mut self, topology: Topology) -> WindowSample {
        let mut shard_ring_high = 0u64;
        for (fold, live) in self
            .highwater_fold
            .iter_mut()
            .zip(&self.counters.shard_ring_high)
        {
            let window = live.swap(0, Ordering::Relaxed);
            *fold = (*fold).max(window);
            shard_ring_high = shard_ring_high.max(window);
        }
        let mut router_busy_nanos = 0u64;
        for (prev, live) in self
            .prev_router_busy
            .iter_mut()
            .zip(&self.counters.router_busy_nanos)
        {
            let total = live.load(Ordering::Relaxed);
            router_busy_nanos = router_busy_nanos.max(total - *prev);
            *prev = total;
        }
        let mut shard_busy_nanos = 0u64;
        for (prev, live) in self
            .prev_shard_busy
            .iter_mut()
            .zip(&self.counters.shard_busy_nanos)
        {
            let total = live.load(Ordering::Relaxed);
            shard_busy_nanos = shard_busy_nanos.max(total - *prev);
            *prev = total;
        }
        WindowSample {
            topology,
            ring_slots: self.ring_slots,
            shard_ring_high,
            router_busy_nanos,
            shard_busy_nanos,
        }
    }
}
