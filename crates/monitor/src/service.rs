//! The `rtdacd` service loop: a std-only TCP daemon serving the
//! [`TenantRuntime`] over the framed wire protocol
//! (`rtdac_types::wire`).
//!
//! One connection binds to one tenant (`Open`) and then interleaves
//! ingest frames — raw blktrace-codec bytes, fed straight into a
//! [`BlktraceEventSource`] whose chunked decoder reassembles records
//! across frame boundaries — with query frames answered from the
//! tenant's `LiveView`. Ingest is zero-copy from the decode buffer
//! into the pipeline; queries never quiesce the shard workers.
//!
//! Error containment: a *protocol* error (bad magic, unknown kind,
//! oversized length, malformed blktrace bytes) drops only the
//! offending connection. The bound tenant's pipeline has absorbed a
//! valid prefix of the stream and stays consistent; other tenants
//! never notice. *Command* errors (no tenant bound, tenant cap,
//! eviction races) are reported in-band and leave the connection
//! usable.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use rtdac_types::wire::{
    decode_pair_query, encode_pairs, encode_stats, encode_tenant_list, read_frame, write_frame,
    Frame, FrameKind, WireError, WireStats,
};
use rtdac_types::EventSource;

use crate::pipeline::IngestPipeline;
use crate::stream::BlktraceEventSource;
use crate::tenant::{Tenant, TenantRuntime, TenantRuntimeConfig};

/// Daemon configuration on top of the tenant runtime's.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Fleet sizing and lifecycle policy.
    pub runtime: TenantRuntimeConfig,
    /// Latency assigned to issue events whose completion never
    /// arrives, matching the offline readers' default.
    pub default_latency: Duration,
    /// How often the accept loop sweeps for idle tenants to park.
    pub idle_sweep: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            runtime: TenantRuntimeConfig::default(),
            default_latency: Duration::from_micros(100),
            idle_sweep: Duration::from_secs(1),
        }
    }
}

/// How long a query waits for the live view to reach the ingest
/// frontier after `IngestEnd` before reporting an error.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// Read timeout while a frame is in flight (half-open protection).
const MID_FRAME_TIMEOUT: Duration = Duration::from_secs(5);

/// Poll granularity of the accept loop and idle connections.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Bytes of framed ingest buffered ahead of the decoder.
struct FeedState {
    buf: VecDeque<u8>,
    eof: bool,
}

/// The `Read` the blktrace decoder pulls from: frame payloads go in
/// on one `Rc` handle, the decoder reads from the other. An empty
/// buffer is `WouldBlock` — *not* EOF — so the decoder parks with its
/// partial-record state intact until the next ingest frame arrives;
/// `IngestEnd` turns emptiness into a clean EOF.
#[derive(Clone)]
struct ChunkFeed(Rc<RefCell<FeedState>>);

impl ChunkFeed {
    fn new() -> Self {
        ChunkFeed(Rc::new(RefCell::new(FeedState {
            buf: VecDeque::new(),
            eof: false,
        })))
    }

    fn push(&self, bytes: &[u8]) {
        self.0.borrow_mut().buf.extend(bytes);
    }

    fn end(&self) {
        self.0.borrow_mut().eof = true;
    }
}

impl Read for ChunkFeed {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let mut state = self.0.borrow_mut();
        if state.buf.is_empty() {
            return if state.eof {
                Ok(0)
            } else {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "awaiting frames"))
            };
        }
        let (front, _) = state.buf.as_slices();
        let n = front.len().min(out.len());
        out[..n].copy_from_slice(&front[..n]);
        state.buf.drain(..n);
        Ok(n)
    }
}

/// Per-connection state: the bound tenant plus this connection's
/// ingest session (decoder + D/C pairing window).
struct Connection {
    runtime: Arc<TenantRuntime>,
    shutdown: Arc<AtomicBool>,
    default_latency: Duration,
    tenant: Option<Arc<Mutex<Tenant>>>,
    feed: ChunkFeed,
    source: BlktraceEventSource<ChunkFeed>,
    /// Events this connection has pushed into its tenant.
    events: u64,
}

/// A response plus whether the connection must close afterwards.
struct Reply {
    frame: (FrameKind, Vec<u8>),
    hangup: bool,
}

impl Reply {
    fn ok(kind: FrameKind, payload: Vec<u8>) -> Self {
        Reply {
            frame: (kind, payload),
            hangup: false,
        }
    }

    fn ack() -> Self {
        Reply::ok(FrameKind::Ack, Vec::new())
    }

    /// Command-level error: reported in-band, connection stays up.
    fn error(message: String) -> Self {
        Reply::ok(FrameKind::Error, message.into_bytes())
    }

    /// Protocol-level error: reported, then the connection drops.
    fn fatal(message: String) -> Self {
        Reply {
            frame: (FrameKind::Error, message.into_bytes()),
            hangup: true,
        }
    }
}

impl Connection {
    fn new(
        runtime: Arc<TenantRuntime>,
        shutdown: Arc<AtomicBool>,
        default_latency: Duration,
    ) -> Self {
        let feed = ChunkFeed::new();
        let source = BlktraceEventSource::new(feed.clone(), default_latency);
        Connection {
            runtime,
            shutdown,
            default_latency,
            tenant: None,
            feed,
            source,
            events: 0,
        }
    }

    /// Drains every decodable event into the pipeline. `WouldBlock`
    /// means the decoder needs more frames — not an error.
    fn pump(&mut self, pipeline: &mut IngestPipeline) -> io::Result<()> {
        loop {
            match self.source.next_event() {
                Ok(Some(event)) => {
                    pipeline.push(event);
                    self.events += 1;
                }
                Ok(None) => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }

    /// Runs `f` on the bound tenant's pipeline, mapping the unbound /
    /// evicted cases to command errors.
    fn with_pipeline<T>(
        &mut self,
        touch: bool,
        f: impl FnOnce(&mut Self, &mut IngestPipeline) -> Result<T, Reply>,
    ) -> Result<T, Reply> {
        let Some(tenant) = self.tenant.clone() else {
            return Err(Reply::error("no tenant bound; send Open first".into()));
        };
        let mut tenant = tenant.lock().expect("tenant poisoned");
        let pipeline = if touch {
            tenant.pipeline()
        } else {
            tenant.peek_mut()
        };
        match pipeline {
            Ok(pipeline) => f(self, pipeline),
            Err(e) => Err(Reply::error(e.to_string())),
        }
    }

    /// Waits until the live view has folded deltas up to the
    /// pipeline's current frontier, driving the publish cadence with
    /// heartbeats while the stream is paused.
    fn drain_live(pipeline: &mut IngestPipeline) -> Result<(), Reply> {
        if pipeline.live_view().is_none() {
            return Ok(());
        }
        let target = pipeline.frontier_epoch();
        let deadline = Instant::now() + DRAIN_DEADLINE;
        loop {
            if pipeline.poll_live().is_some_and(|epoch| epoch >= target) {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(Reply::error("live view drain timed out".into()));
            }
            pipeline.heartbeat();
            thread::sleep(Duration::from_micros(200));
        }
    }

    fn handle(&mut self, frame: Frame) -> Reply {
        match frame.kind {
            FrameKind::Open => {
                let Ok(id) = std::str::from_utf8(&frame.payload) else {
                    return Reply::fatal("tenant id is not utf-8".into());
                };
                match self.runtime.open(id) {
                    Ok(tenant) => {
                        self.tenant = Some(tenant);
                        // A fresh ingest session per binding: decoder
                        // and pairing window reset, the tenant's
                        // pipeline state persists.
                        self.feed = ChunkFeed::new();
                        self.source =
                            BlktraceEventSource::new(self.feed.clone(), self.default_latency);
                        self.events = 0;
                        Reply::ack()
                    }
                    Err(e) => Reply::error(e.to_string()),
                }
            }
            FrameKind::Ingest => {
                self.feed.push(&frame.payload);
                match self.with_pipeline(true, |conn, pipeline| {
                    conn.pump(pipeline)
                        .map_err(|e| Reply::fatal(format!("ingest decode failed: {e}")))
                }) {
                    Ok(()) => Reply::ok(FrameKind::Ack, self.events.to_le_bytes().to_vec()),
                    Err(reply) => reply,
                }
            }
            FrameKind::Flush => match self.with_pipeline(true, |_, pipeline| {
                pipeline.flush_batch();
                Ok(())
            }) {
                Ok(()) => Reply::ack(),
                Err(reply) => reply,
            },
            FrameKind::IngestEnd => {
                self.feed.end();
                match self.with_pipeline(true, |conn, pipeline| {
                    conn.pump(pipeline)
                        .map_err(|e| Reply::fatal(format!("ingest decode failed: {e}")))?;
                    pipeline.flush_window();
                    Self::drain_live(pipeline)
                }) {
                    Ok(()) => Reply::ok(FrameKind::Ack, self.events.to_le_bytes().to_vec()),
                    Err(reply) => reply,
                }
            }
            FrameKind::QueryTopK => {
                let Ok(bytes) = <[u8; 4]>::try_from(&frame.payload[..]) else {
                    return Reply::fatal("top-k payload must be a u32".into());
                };
                let k = u32::from_le_bytes(bytes) as usize;
                self.query(|view| {
                    let mut pairs = Vec::new();
                    view.top_pairs_into(k, &mut pairs);
                    pairs
                })
            }
            FrameKind::QueryFrequent => {
                let Ok(bytes) = <[u8; 4]>::try_from(&frame.payload[..]) else {
                    return Reply::fatal("frequent-pairs payload must be a u32".into());
                };
                let min_tally = u32::from_le_bytes(bytes);
                self.query(|view| view.frequent_pairs(min_tally))
            }
            FrameKind::QueryPair => {
                let pair = match decode_pair_query(&frame.payload) {
                    Ok(pair) => pair,
                    Err(e) => return Reply::fatal(e.to_string()),
                };
                match self.with_pipeline(false, |_, pipeline| {
                    pipeline.poll_live();
                    let Some(view) = pipeline.live_view() else {
                        return Err(Reply::error("live queries disabled for this tenant".into()));
                    };
                    let tally = view.pair_tally(&pair);
                    let mut payload = vec![u8::from(tally.is_some())];
                    payload.extend_from_slice(&tally.unwrap_or(0).to_le_bytes());
                    Ok(payload)
                }) {
                    Ok(payload) => Reply::ok(FrameKind::Tally, payload),
                    Err(reply) => reply,
                }
            }
            FrameKind::QueryStats => {
                let events = self.events;
                match self.with_pipeline(false, |_, pipeline| {
                    pipeline.poll_live();
                    let stats = pipeline.stats();
                    Ok(WireStats {
                        events: events.max(pipeline.monitor().stats().events),
                        transactions: stats.transactions,
                        batches: stats.batches,
                        view_epoch: pipeline
                            .live_view()
                            .map_or(0, |view| view.epoch().batches()),
                        parked: pipeline.is_parked(),
                    })
                }) {
                    Ok(stats) => Reply::ok(FrameKind::Stats, encode_stats(&stats)),
                    Err(reply) => reply,
                }
            }
            FrameKind::ListTenants => Reply::ok(
                FrameKind::TenantList,
                encode_tenant_list(&self.runtime.tenant_ids()),
            ),
            FrameKind::Evict => {
                let Ok(id) = std::str::from_utf8(&frame.payload) else {
                    return Reply::fatal("tenant id is not utf-8".into());
                };
                match self.runtime.evict(id) {
                    Some(_) => Reply::ack(),
                    None => Reply::error(format!("unknown tenant: {id}")),
                }
            }
            FrameKind::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                Reply {
                    frame: (FrameKind::Ack, Vec::new()),
                    hangup: true,
                }
            }
            // Response kinds arriving at the server are protocol abuse.
            _ => Reply::fatal(format!("unexpected frame kind {:?}", frame.kind)),
        }
    }

    /// Shared shape of the pair-report queries: poll the view to its
    /// latest published epoch, then answer from it.
    fn query(
        &mut self,
        f: impl FnOnce(&mut rtdac_synopsis::LiveView) -> Vec<(rtdac_types::ExtentPair, u32)>,
    ) -> Reply {
        match self.with_pipeline(false, |_, pipeline| {
            pipeline.poll_live();
            let Some(view) = pipeline.live_view_mut() else {
                return Err(Reply::error("live queries disabled for this tenant".into()));
            };
            Ok(f(view))
        }) {
            Ok(pairs) => Reply::ok(FrameKind::Pairs, encode_pairs(&pairs)),
            Err(reply) => reply,
        }
    }
}

/// Serves connections on `listener` until a `Shutdown` frame arrives,
/// then drains every tenant and returns. Each connection gets its own
/// thread; the accept loop doubles as the idle-park sweeper.
pub fn serve(listener: TcpListener, config: ServiceConfig) -> io::Result<()> {
    let runtime = Arc::new(TenantRuntime::new(config.runtime.clone()));
    let shutdown = Arc::new(AtomicBool::new(false));
    listener.set_nonblocking(true)?;
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    let mut last_sweep = Instant::now();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let runtime = Arc::clone(&runtime);
                let shutdown = Arc::clone(&shutdown);
                let default_latency = config.default_latency;
                workers.push(thread::spawn(move || {
                    // A broken connection already cleaned up after
                    // itself; nothing to report.
                    let _ = handle_connection(stream, runtime, shutdown, default_latency);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(POLL_INTERVAL);
            }
            Err(e) => return Err(e),
        }
        workers.retain(|w| !w.is_finished());
        if last_sweep.elapsed() >= config.idle_sweep {
            runtime.park_idle();
            last_sweep = Instant::now();
        }
    }
    for worker in workers {
        let _ = worker.join();
    }
    runtime.shutdown();
    Ok(())
}

/// One connection's read-dispatch-write loop.
fn handle_connection(
    mut stream: TcpStream,
    runtime: Arc<TenantRuntime>,
    shutdown: Arc<AtomicBool>,
    default_latency: Duration,
) -> io::Result<()> {
    let mut connection = Connection::new(runtime, shutdown, default_latency);
    loop {
        // Wait for the next frame at poll granularity so a daemon
        // shutdown (or this client going away) is noticed promptly,
        // then read the frame with the longer mid-frame timeout.
        stream.set_read_timeout(Some(POLL_INTERVAL))?;
        match stream.peek(&mut [0u8; 1]) {
            Ok(0) => return Ok(()), // client closed
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if connection.shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        stream.set_read_timeout(Some(MID_FRAME_TIMEOUT))?;
        let reply = match read_frame(&mut stream) {
            Ok(frame) => connection.handle(frame),
            Err(WireError::Io(e)) => return Err(e),
            // Protocol garbage: answer once, then hang up. The
            // stream position is undefined, so reading on would only
            // misparse.
            Err(e) => Reply::fatal(e.to_string()),
        };
        let (kind, payload) = reply.frame;
        write_frame(&mut stream, kind, &payload)?;
        stream.flush()?;
        if reply.hangup {
            return Ok(());
        }
    }
}
