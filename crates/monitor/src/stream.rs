//! Streaming blktrace ingestion and full-pipeline-speed replay.
//!
//! [`blktrace::read_events`](crate::blktrace::read_events) slurps the
//! whole file into memory, decodes record-at-a-time and patches
//! latencies retroactively — fine as an oracle, hopeless for multi-GB
//! captures. This module is the production path:
//!
//! * [`BlktraceReader`] pulls fixed-size chunks into one reusable
//!   buffer and decodes 40-byte records in place, handling records that
//!   straddle chunk boundaries (the tail of a partial record is slid to
//!   the buffer front before the next refill);
//! * [`BlktraceEventSource`] performs the D/C pairing *online* with a
//!   bounded in-flight window: issues are held until their completion
//!   arrives (resolving the measured latency) and then emitted in
//!   stream order. An issue whose completion has not arrived by the
//!   time `max_inflight` later issues are pending — or by end of
//!   stream — is emitted with the default latency, exactly like the
//!   oracle's unmatched-issue rule. For any capture whose outstanding
//!   queue depth fits the window (real block layers are bounded by the
//!   device queue), the emitted events are **identical** to the
//!   oracle's.
//! * [`replay`] drives an [`IngestPipeline`] straight from any
//!   [`EventSource`] at full speed or at recorded-timestamp pacing —
//!   the paper's accelerated-replay knob, but from disk.
//!
//! After warm-up (chunk buffer, pending ring and pairing map at their
//! high-water marks), pulling the next event allocates nothing; the
//! `zero_alloc` suite holds the whole decode hot path to that.

use std::collections::VecDeque;
use std::io::{self, Read};
use std::time::{Duration, Instant};

use rtdac_types::{EventSource, Extent, FxHashMap, IoEvent, Timestamp};

use crate::blktrace::{Action, BlktraceRecord, RECORD_BYTES};
use crate::pipeline::IngestPipeline;

/// Default chunk size for [`BlktraceReader`]: 64 KiB, a comfortable
/// read(2) granularity that still fits L2.
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// Default bound on issues held awaiting completion before they are
/// force-emitted with the default latency. Real device queues are a few
/// hundred deep; 64 Ki outstanding means pathological input, not a real
/// capture.
pub const DEFAULT_MAX_INFLIGHT: usize = 64 * 1024;

/// Chunked zero-copy reader for the blktrace-style binary stream: one
/// fixed buffer, records decoded in place, partial records carried
/// across refills.
pub struct BlktraceReader<R: Read> {
    reader: R,
    buf: Vec<u8>,
    /// Valid bytes in `buf`.
    filled: usize,
    /// Bytes already decoded.
    pos: usize,
    eof: bool,
    records: u64,
    bytes: u64,
}

impl<R: Read> BlktraceReader<R> {
    /// Wraps `reader` with the default chunk size.
    pub fn new(reader: R) -> Self {
        Self::with_chunk_bytes(reader, DEFAULT_CHUNK_BYTES)
    }

    /// Wraps `reader` with a custom chunk size (tests use tiny, odd
    /// sizes to force records to straddle every refill).
    pub fn with_chunk_bytes(reader: R, chunk_bytes: usize) -> Self {
        BlktraceReader {
            reader,
            buf: vec![0; chunk_bytes.max(RECORD_BYTES)],
            filled: 0,
            pos: 0,
            eof: false,
            records: 0,
            bytes: 0,
        }
    }

    /// Records decoded so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Raw bytes consumed so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes
    }

    /// Decodes the next record, or returns `None` at a clean end of
    /// stream.
    ///
    /// # Errors
    ///
    /// `InvalidData` on a bad magic/action or a stream that ends inside
    /// a record (truncation).
    pub fn next_record(&mut self) -> io::Result<Option<BlktraceRecord>> {
        while self.filled - self.pos < RECORD_BYTES {
            if self.eof {
                return if self.filled == self.pos {
                    Ok(None)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "truncated blktrace stream: {} trailing bytes \
                             (records are {RECORD_BYTES} bytes)",
                            self.filled - self.pos
                        ),
                    ))
                };
            }
            // Slide the partial record (if any) to the front — this is
            // the chunk-boundary straddle — then refill the rest.
            self.buf.copy_within(self.pos..self.filled, 0);
            self.filled -= self.pos;
            self.pos = 0;
            match self.reader.read(&mut self.buf[self.filled..]) {
                Ok(0) => self.eof = true,
                Ok(n) => {
                    self.filled += n;
                    self.bytes += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        let record = BlktraceRecord::decode(
            self.buf[self.pos..self.pos + RECORD_BYTES]
                .try_into()
                .expect("exact record slice"),
        )?;
        self.pos += RECORD_BYTES;
        self.records += 1;
        Ok(Some(record))
    }
}

/// An issue waiting in the emission queue for its completion.
struct Pending {
    event: IoEvent,
    resolved: bool,
}

/// Streaming D/C pairing over a [`BlktraceReader`]: yields issue events
/// in stream order with recovered latencies, holding at most
/// `max_inflight` unresolved issues.
pub struct BlktraceEventSource<R: Read> {
    records: BlktraceReader<R>,
    default_latency: Duration,
    max_inflight: usize,
    /// Issues not yet emitted, oldest first. Sequence number of the
    /// front element is `front_seq`.
    pending: VecDeque<Pending>,
    front_seq: u64,
    /// (sector, blocks, pid) → sequence numbers of unresolved issues,
    /// FIFO — the same pairing rule as the oracle. Stale entries
    /// (issues force-emitted past the window) are skipped lazily.
    inflight: FxHashMap<(u64, u32, u32), VecDeque<u64>>,
    done: bool,
}

impl<R: Read> BlktraceEventSource<R> {
    /// Streams `reader` with the default chunk size and in-flight
    /// window. Unmatched issues get `default_latency`, like the oracle.
    pub fn new(reader: R, default_latency: Duration) -> Self {
        Self::with_limits(
            reader,
            default_latency,
            DEFAULT_CHUNK_BYTES,
            DEFAULT_MAX_INFLIGHT,
        )
    }

    /// Full-control constructor: chunk size and in-flight bound.
    pub fn with_limits(
        reader: R,
        default_latency: Duration,
        chunk_bytes: usize,
        max_inflight: usize,
    ) -> Self {
        BlktraceEventSource {
            records: BlktraceReader::with_chunk_bytes(reader, chunk_bytes),
            default_latency,
            max_inflight: max_inflight.max(1),
            pending: VecDeque::new(),
            front_seq: 0,
            inflight: FxHashMap::default(),
            done: false,
        }
    }

    /// Raw bytes consumed so far.
    pub fn bytes_read(&self) -> u64 {
        self.records.bytes_read()
    }

    fn emit_front(&mut self) -> IoEvent {
        let front = self.pending.pop_front().expect("front exists");
        self.front_seq += 1;
        front.event
    }
}

impl<R: Read> EventSource for BlktraceEventSource<R> {
    fn next_event(&mut self) -> io::Result<Option<IoEvent>> {
        loop {
            // Emit whenever the front issue's latency is settled, or
            // the window overflows (its completion is too far away to
            // wait for — fall back to the default latency).
            if let Some(front) = self.pending.front() {
                if front.resolved || self.pending.len() > self.max_inflight || self.done {
                    return Ok(Some(self.emit_front()));
                }
            } else if self.done {
                return Ok(None);
            }
            match self.records.next_record()? {
                None => {
                    self.done = true;
                }
                Some(record) => {
                    let key = (record.sector, record.blocks, record.pid);
                    match record.action {
                        Action::Issue => {
                            let extent =
                                Extent::new(record.sector, record.blocks.max(1)).map_err(|e| {
                                    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
                                })?;
                            let seq = self.front_seq + self.pending.len() as u64;
                            self.pending.push_back(Pending {
                                event: IoEvent::new(
                                    Timestamp::from_nanos(record.time_ns),
                                    record.pid,
                                    record.op,
                                    extent,
                                    self.default_latency,
                                ),
                                resolved: false,
                            });
                            self.inflight.entry(key).or_default().push_back(seq);
                        }
                        Action::Complete => {
                            if let Some(queue) = self.inflight.get_mut(&key) {
                                // Skip issues already force-emitted.
                                while queue.front().is_some_and(|&s| s < self.front_seq) {
                                    queue.pop_front();
                                }
                                if let Some(seq) = queue.pop_front() {
                                    let idx = (seq - self.front_seq) as usize;
                                    let pending = self.pending.get_mut(idx).expect("seq in window");
                                    let issued = pending.event.timestamp.as_nanos();
                                    pending.event.latency =
                                        Duration::from_nanos(record.time_ns.saturating_sub(issued));
                                    pending.resolved = true;
                                }
                                // Orphan completions are dropped, as
                                // blkparse does.
                            }
                        }
                    }
                }
            }
        }
    }
}

/// How [`replay`] paces events into the pipeline.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum ReplayPacing {
    /// Push events as fast as they decode — the throughput experiment.
    FullSpeed,
    /// Honor recorded timestamps compressed by `speedup` (the paper's
    /// accelerated replay): event at trace time *t* is pushed no
    /// earlier than wall time *t / speedup* after the first event.
    Recorded { speedup: f64 },
}

/// What [`replay`] measured.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct ReplayStats {
    /// Events pushed into the pipeline.
    pub events: u64,
    /// Wall-clock seconds for the whole replay (decode + push + any
    /// pacing waits).
    pub elapsed_secs: f64,
}

impl ReplayStats {
    /// Sustained event rate of the replay.
    pub fn events_per_sec(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.events as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }
}

/// Drives `pipeline` from `source` until end of stream. The pipeline is
/// *not* finished — the caller keeps it and can replay further sources
/// into it before harvesting the analyzer.
///
/// # Errors
///
/// Propagates the first decode/read error; events already pushed stay
/// pushed.
pub fn replay<S: EventSource>(
    source: &mut S,
    pipeline: &mut IngestPipeline,
    pacing: ReplayPacing,
) -> io::Result<ReplayStats> {
    let start = Instant::now();
    let mut events = 0u64;
    let mut base: Option<Timestamp> = None;
    while let Some(event) = source.next_event()? {
        if let ReplayPacing::Recorded { speedup } = pacing {
            let base = *base.get_or_insert(event.timestamp);
            let due = event
                .timestamp
                .saturating_since(base)
                .div_f64(speedup.max(1e-9));
            let now = start.elapsed();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        pipeline.push(event);
        events += 1;
    }
    pipeline.flush_batch();
    Ok(ReplayStats {
        events,
        elapsed_secs: start.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blktrace::{read_events, write_trace};
    use rtdac_types::{IoOp, IoRequest, Trace};

    fn sample_trace(n: u64) -> Trace {
        let mut trace = Trace::new("t");
        for i in 0..n {
            trace.push(
                IoRequest::new(
                    Timestamp::from_micros(i * 50),
                    7,
                    if i % 3 == 0 { IoOp::Write } else { IoOp::Read },
                    Extent::new((i % 17) * 64, 8).unwrap(),
                )
                .with_latency(Duration::from_micros(120 + (i % 9) * 10)),
            );
        }
        trace
    }

    fn drain<R: Read>(mut source: BlktraceEventSource<R>) -> Vec<IoEvent> {
        let mut events = Vec::new();
        while let Some(event) = source.next_event().unwrap() {
            events.push(event);
        }
        events
    }

    #[test]
    fn streaming_matches_oracle_exactly() {
        let trace = sample_trace(500);
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let oracle = read_events(buf.as_slice(), Duration::from_micros(9)).unwrap();
        let streamed = drain(BlktraceEventSource::new(
            buf.as_slice(),
            Duration::from_micros(9),
        ));
        assert_eq!(streamed, oracle);
    }

    #[test]
    fn straddling_records_decode_exactly() {
        // A chunk size that is not a multiple of RECORD_BYTES forces a
        // partial record at (almost) every refill.
        let trace = sample_trace(300);
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let oracle = read_events(buf.as_slice(), Duration::ZERO).unwrap();
        for chunk in [RECORD_BYTES + 1, 57, 97, 41] {
            let streamed = drain(BlktraceEventSource::with_limits(
                buf.as_slice(),
                Duration::ZERO,
                chunk,
                DEFAULT_MAX_INFLIGHT,
            ));
            assert_eq!(streamed, oracle, "chunk {chunk}");
        }
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let trace = sample_trace(20);
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let mut source = BlktraceEventSource::new(buf.as_slice(), Duration::ZERO);
        let err = loop {
            match source.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("truncation went unnoticed"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn overflowing_window_falls_back_to_default_latency() {
        // Three identical issues, completions only after all of them:
        // with max_inflight=1 the first issues overflow and take the
        // default latency; the last pairs normally.
        let mut records = Vec::new();
        for i in 0..3u64 {
            records.extend_from_slice(
                &BlktraceRecord {
                    time_ns: i * 1_000,
                    sector: 64,
                    blocks: 8,
                    pid: 1,
                    action: Action::Issue,
                    op: IoOp::Read,
                }
                .encode(),
            );
        }
        for i in 0..3u64 {
            records.extend_from_slice(
                &BlktraceRecord {
                    time_ns: 10_000 + i * 1_000,
                    sector: 64,
                    blocks: 8,
                    pid: 1,
                    action: Action::Complete,
                    op: IoOp::Read,
                }
                .encode(),
            );
        }
        let events = drain(BlktraceEventSource::with_limits(
            records.as_slice(),
            Duration::from_micros(1),
            DEFAULT_CHUNK_BYTES,
            1,
        ));
        assert_eq!(events.len(), 3);
        // With a window of 1, the first two issues are forced out
        // before their completions arrive.
        assert_eq!(events[0].latency, Duration::from_micros(1));
        assert_eq!(events[1].latency, Duration::from_micros(1));
        // The last issue is still pending at EOF drain time, and its
        // completion arrived before the stream ended.
        assert_eq!(events[2].latency, Duration::from_micros(8));
    }

    #[test]
    fn reader_counts_records_and_bytes() {
        let trace = sample_trace(10);
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let mut reader = BlktraceReader::with_chunk_bytes(buf.as_slice(), 64);
        while reader.next_record().unwrap().is_some() {}
        assert_eq!(reader.records(), 20); // 10 issues + 10 completes
        assert_eq!(reader.bytes_read(), buf.len() as u64);
    }
}
