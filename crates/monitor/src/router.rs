//! Routed batch dispatch: compute each transaction's pair set **once**
//! at the front-end and partition it into per-shard work lists, instead
//! of broadcasting every batch to every shard and letting each shard
//! re-deduplicate and re-hash the full stream.
//!
//! ```text
//!            ┌───────────── Router ─────────────┐
//!  batch ───▶│ dedup once · hash each pair once │──▶ RoutedBatch
//!            │ hot-pair tally · round-robin split│      ├─ WorkList shard 0
//!            └──────────────────────────────────┘      ├─ WorkList shard 1
//!                                                      └─ WorkList shard N
//! ```
//!
//! A [`WorkList`] is the exact record sequence its shard must apply:
//! per routed transaction, the item records (deduplicated arrival order)
//! followed by the owned pair records (canonical `(i, j)` enumeration
//! order) — the same order `OnlineAnalyzer::process_partition` produces,
//! so [`WorkList::apply`] leaves a shard's tables bit-for-bit identical
//! to broadcast dispatch while doing only O(owned work) per shard.
//!
//! **Hot-pair splitting.** `fx_hash` partitions the pair space evenly,
//! but a Zipf-hot pair serializes on its owning shard. With
//! [`SplitConfig`] enabled the router keeps a small decayed top-K tally
//! of pair hashes; once a pair's share of recent pair records crosses
//! [`SplitConfig::hot_fraction`], its records are dealt round-robin
//! across all shards instead of hashed. Each split record carries its
//! member-extent item records along (the demotion hook stays
//! shard-local), and the merge paths of
//! [`ShardedAnalyzer`](rtdac_synopsis::ShardedAnalyzer) sum the per-shard
//! partial tallies, so totals are exact — see
//! `ShardedAnalyzer::from_routed_shards`.
//!
//! # Examples
//!
//! ```
//! use rtdac_monitor::{Router, RouterConfig};
//! use rtdac_synopsis::{AnalyzerConfig, ShardedAnalyzer};
//! use rtdac_types::{Extent, Timestamp, Transaction};
//!
//! let mut router = Router::new(RouterConfig::new(2));
//! let txn = Transaction::from_extents(
//!     Timestamp::ZERO,
//!     [Extent::new(1, 1)?, Extent::new(9, 1)?],
//! );
//! let batch = router.route(vec![txn]);
//! // Exactly one shard owns the pair's work.
//! let owners = batch.per_shard.iter().filter(|w| !w.is_empty()).count();
//! assert_eq!(owners, 1);
//! # Ok::<(), rtdac_types::ExtentError>(())
//! ```

use std::sync::Arc;

use rtdac_synopsis::OnlineAnalyzer;
use rtdac_types::{
    fx_hash, shard_for_hash, shard_of_extent, Extent, ExtentPair, InlineVec, IoOp, Transaction,
};

/// Dedup scratch capacity; transactions are capped at 8 requests by the
/// monitor (hand-built ones spill transparently).
const TXN_SCRATCH: usize = 8;

/// Hot-pair splitting knobs of a [`Router`].
#[derive(Clone, Debug, PartialEq)]
pub struct SplitConfig {
    /// A pair is *hot* — and its records are spread round-robin across
    /// all shards — once its decayed tally reaches this fraction of the
    /// decayed total of recent pair records (default 0.10).
    pub hot_fraction: f64,
    /// Slots in the top-K tracker (default 16). Only pairs heavy enough
    /// to hold a slot can be classified hot, so K bounds both memory and
    /// the number of simultaneously split pairs.
    pub tracker_slots: usize,
    /// Pair records between tally halvings (default 4096). Halving makes
    /// the tally a sliding estimate, so a pair that *was* hot decays back
    /// to hash routing when the workload drifts.
    pub decay_interval: u64,
    /// Pair records observed before any split decision is made (default
    /// 256) — too small a sample would split on noise.
    pub warmup: u64,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            hot_fraction: 0.10,
            tracker_slots: 16,
            decay_interval: 4096,
            warmup: 256,
        }
    }
}

/// Shape of a [`Router`]: shard count, the analyzer's op filter (applied
/// once at the front-end instead of once per shard), and optional
/// hot-pair splitting.
#[derive(Clone, Debug, PartialEq)]
pub struct RouterConfig {
    /// Number of shards work is partitioned across.
    pub shard_count: usize,
    /// Only requests of this direction are routed (mirrors
    /// `AnalyzerConfig::op_filter`; the routed fast path skips shard-side
    /// filtering, so the filter must be applied here).
    pub op_filter: Option<IoOp>,
    /// Hot-pair splitting; `None` routes every pair by hash.
    pub split: Option<SplitConfig>,
}

impl RouterConfig {
    /// A router over `shard_count` shards, no op filter, no splitting.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count == 0`.
    pub fn new(shard_count: usize) -> Self {
        assert!(shard_count > 0, "need at least one shard");
        RouterConfig {
            shard_count,
            op_filter: None,
            split: None,
        }
    }

    /// Restricts routing to one request direction.
    pub fn op_filter(mut self, op: Option<IoOp>) -> Self {
        self.op_filter = op;
        self
    }

    /// Enables hot-pair splitting.
    pub fn split(mut self, split: SplitConfig) -> Self {
        self.split = Some(split);
        self
    }

    /// Sets hot-pair splitting from an optional config.
    pub fn split_opt(mut self, split: Option<SplitConfig>) -> Self {
        self.split = split;
        self
    }
}

/// One shard's share of a routed batch: the exact record sequence to
/// apply, flattened into parallel arrays.
///
/// For each routed transaction, `txns` holds its `(item records, pair
/// records)` counts; the records themselves are consumed in order from
/// `extents` and `pairs`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkList {
    /// `(extent count, pair count)` per transaction routed to this shard.
    pub txns: Vec<(u32, u32)>,
    /// Item records, flattened across transactions.
    pub extents: Vec<Extent>,
    /// Pair records, flattened across transactions.
    pub pairs: Vec<ExtentPair>,
}

impl WorkList {
    /// Whether this shard received no work from the batch.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Total table records (items + pairs) in the list — the per-shard
    /// work metric the load-balance benchmarks report.
    pub fn ops(&self) -> u64 {
        (self.extents.len() + self.pairs.len()) as u64
    }

    /// Empties the list, keeping its buffer capacity. The pipeline
    /// recycles work lists through return rings (shard workers clear and
    /// hand buffers back to their router), so steady state routes with
    /// zero allocation — see `IngestPipeline`.
    pub fn clear(&mut self) {
        self.txns.clear();
        self.extents.clear();
        self.pairs.clear();
    }

    /// Applies the list to a shard: per transaction, the item records
    /// then the pair records, exactly as the broadcast path would have.
    pub fn apply(&self, shard: &mut OnlineAnalyzer) {
        let (mut e, mut p) = (0usize, 0usize);
        for &(extents, pairs) in &self.txns {
            let (ne, np) = (extents as usize, pairs as usize);
            shard.process_routed(&self.extents[e..e + ne], &self.pairs[p..p + np]);
            e += ne;
            p += np;
        }
    }
}

/// A batch routed into per-shard work lists. The transactions ride along
/// refcounted (consumers that need timestamps or request metadata read
/// them without another copy); shard workers index `per_shard` by their
/// own shard number.
#[derive(Clone, Debug)]
pub struct RoutedBatch {
    /// The batch's transactions, shared across shard rings.
    pub txns: Arc<[Transaction]>,
    /// One work list per shard, indexed by shard number.
    pub per_shard: Vec<WorkList>,
}

/// A small decayed top-K tally of pair hashes (Space-Saving over a
/// fixed slot array): `observe` returns the pair's estimated share of
/// recent observations. Halving all counts every `decay_interval`
/// observations keeps the estimate sliding, deterministic and O(K).
#[derive(Clone, Debug)]
struct HotTracker {
    /// `(pair hash, decayed count)`; linear-scanned, K is small.
    slots: Vec<(u64, u64)>,
    /// Decayed total of observations (halved with the slots).
    total: u64,
    /// Observations since the last halving.
    since_decay: u64,
    decay_interval: u64,
}

impl HotTracker {
    fn new(slots: usize, decay_interval: u64) -> Self {
        HotTracker {
            slots: Vec::with_capacity(slots.max(1)),
            total: 0,
            since_decay: 0,
            decay_interval: decay_interval.max(1),
        }
    }

    /// Records one observation of `hash`; returns `(estimated count,
    /// decayed total)`.
    fn observe(&mut self, hash: u64, capacity: usize) -> (u64, u64) {
        self.total += 1;
        self.since_decay += 1;
        if self.since_decay >= self.decay_interval {
            self.since_decay = 0;
            self.total /= 2;
            self.slots.retain_mut(|slot| {
                slot.1 /= 2;
                slot.1 > 0
            });
        }
        let count = if let Some(slot) = self.slots.iter_mut().find(|s| s.0 == hash) {
            slot.1 += 1;
            slot.1
        } else if self.slots.len() < capacity.max(1) {
            self.slots.push((hash, 1));
            1
        } else {
            // Space-Saving replacement: evict the minimum, inherit its
            // count (an overestimate, which only errs toward splitting
            // slightly early — never toward missing a truly hot pair).
            let min = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.1)
                .map(|(i, _)| i)
                .expect("tracker has at least one slot");
            self.slots[min].0 = hash;
            self.slots[min].1 += 1;
            self.slots[min].1
        };
        (count, self.total)
    }
}

/// Per-shard and splitting counters of a [`Router`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Transactions routed to each shard (a transaction counts for a
    /// shard when the shard received at least one of its records).
    pub routed_transactions: Vec<u64>,
    /// Table records (items + pairs) routed to each shard.
    pub routed_ops: Vec<u64>,
    /// Pair records dealt round-robin instead of hashed (0 without
    /// splitting, or while nothing is hot).
    pub split_records: u64,
}

impl RouterStats {
    /// Accumulates another router's counters. The parallel front-end
    /// runs R routers over disjoint round-robin slices of the batch
    /// stream, so their per-shard counts sum losslessly to exactly what
    /// a single router would have reported.
    pub fn merge(&mut self, other: &RouterStats) {
        if self.routed_transactions.len() < other.routed_transactions.len() {
            self.routed_transactions
                .resize(other.routed_transactions.len(), 0);
            self.routed_ops.resize(other.routed_ops.len(), 0);
        }
        for (mine, theirs) in self
            .routed_transactions
            .iter_mut()
            .zip(&other.routed_transactions)
        {
            *mine += theirs;
        }
        for (mine, theirs) in self.routed_ops.iter_mut().zip(&other.routed_ops) {
            *mine += theirs;
        }
        self.split_records += other.split_records;
    }
}

/// The routing stage: consumes batches of transactions, produces
/// [`RoutedBatch`]es. Deterministic — dedup order, pair enumeration
/// order, the unkeyed routing hash, and the round-robin split counter
/// are all functions of the transaction stream alone.
#[derive(Clone, Debug)]
pub struct Router {
    config: RouterConfig,
    tracker: Option<HotTracker>,
    /// Round-robin cursor for split pair records.
    next_split_shard: u64,
    stats: RouterStats,
    /// Reused per-transaction ownership bitmasks, one per shard; word
    /// `w` bit `b` covers deduplicated extent index `64 * w + b`.
    owned: Vec<Vec<u64>>,
    /// Reused per-shard pair-list watermarks (length at the start of the
    /// current transaction).
    pair_marks: Vec<usize>,
}

impl Router {
    /// Creates a router.
    pub fn new(config: RouterConfig) -> Self {
        assert!(config.shard_count > 0, "need at least one shard");
        let tracker = config
            .split
            .as_ref()
            .map(|s| HotTracker::new(s.tracker_slots, s.decay_interval));
        let shard_count = config.shard_count;
        Router {
            config,
            tracker,
            next_split_shard: 0,
            stats: RouterStats {
                routed_transactions: vec![0; shard_count],
                routed_ops: vec![0; shard_count],
                split_records: 0,
            },
            owned: vec![Vec::new(); shard_count],
            pair_marks: vec![0; shard_count],
        }
    }

    /// The configuration the router was built with.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Lifetime routing counters.
    pub fn stats(&self) -> &RouterStats {
        &self.stats
    }

    /// Routes one batch: dedups and hashes every transaction once,
    /// returning freshly allocated per-shard work lists in the shards'
    /// record order. Convenience wrapper over
    /// [`route_into`](Router::route_into), which the pipeline uses with
    /// recycled buffers instead.
    pub fn route(&mut self, batch: Vec<Transaction>) -> RoutedBatch {
        let mut per_shard: Vec<WorkList> = vec![WorkList::default(); self.config.shard_count];
        self.route_into(&batch, &mut per_shard);
        RoutedBatch {
            txns: batch.into(),
            per_shard,
        }
    }

    /// Routes one batch into caller-provided work lists (one per shard,
    /// cleared here; capacity is retained, so pooled buffers make the
    /// routing stage allocation-free in steady state).
    ///
    /// # Panics
    ///
    /// Panics if `per_shard.len()` differs from the configured shard
    /// count.
    pub fn route_into(&mut self, batch: &[Transaction], per_shard: &mut [WorkList]) {
        let n_shards = self.config.shard_count;
        assert_eq!(per_shard.len(), n_shards, "one work list per shard");
        for work in per_shard.iter_mut() {
            work.clear();
        }

        for transaction in batch {
            // Dedup + op filter, once for the whole shard set — same
            // algorithm (and thus same surviving order) as
            // `OnlineAnalyzer::process_partition`.
            let mut scratch: InlineVec<Extent, TXN_SCRATCH> = InlineVec::new();
            let mut sorted: InlineVec<Extent, TXN_SCRATCH> = InlineVec::new();
            for item in transaction.items() {
                if let Some(filter) = self.config.op_filter {
                    if item.op != filter {
                        continue;
                    }
                }
                if let Err(pos) = sorted.as_slice().binary_search(&item.extent) {
                    sorted.insert(pos, item.extent);
                    scratch.push(item.extent);
                }
            }
            let extents = scratch.as_slice();
            let n = extents.len();
            if n == 0 {
                continue;
            }

            let words = n.div_ceil(64);
            for mask in &mut self.owned {
                mask.clear();
                mask.resize(words, 0);
            }
            for (work, mark) in per_shard.iter().zip(&mut self.pair_marks) {
                *mark = work.pairs.len();
            }

            if n == 1 {
                // Pairless transaction: route the lone item record by
                // extent hash.
                self.owned[shard_of_extent(&extents[0], n_shards)][0] |= 1;
            } else {
                for i in 0..n {
                    for j in (i + 1)..n {
                        let pair = ExtentPair::new(extents[i], extents[j])
                            .expect("deduplicated extents are distinct");
                        let hash = fx_hash(&pair);
                        let shard = match self.split_target(hash, n_shards) {
                            Some(split_shard) => {
                                self.stats.split_records += 1;
                                split_shard
                            }
                            None => shard_for_hash(hash, n_shards),
                        };
                        per_shard[shard].pairs.push(pair);
                        self.owned[shard][i / 64] |= 1 << (i % 64);
                        self.owned[shard][j / 64] |= 1 << (j % 64);
                    }
                }
            }

            // Emit per-shard work items: item records in dedup order,
            // then the pair records already appended in (i, j) order.
            for (shard, work) in per_shard.iter_mut().enumerate() {
                let mask = &self.owned[shard];
                let n_pairs = (work.pairs.len() - self.pair_marks[shard]) as u32;
                let mut n_extents = 0u32;
                for (i, &extent) in extents.iter().enumerate() {
                    if mask[i / 64] & (1 << (i % 64)) != 0 {
                        work.extents.push(extent);
                        n_extents += 1;
                    }
                }
                if n_extents > 0 || n_pairs > 0 {
                    work.txns.push((n_extents, n_pairs));
                    self.stats.routed_transactions[shard] += 1;
                    self.stats.routed_ops[shard] += u64::from(n_extents) + u64::from(n_pairs);
                }
            }
        }
    }

    /// Split decision for one pair record: `Some(shard)` deals it
    /// round-robin because the pair is currently hot, `None` routes by
    /// hash. Observes the hash in the tracker either way.
    fn split_target(&mut self, hash: u64, n_shards: usize) -> Option<usize> {
        if n_shards == 1 {
            // With one shard there is nothing to balance; skip the
            // tracker entirely.
            return None;
        }
        let split = self.config.split.as_ref()?;
        let tracker = self.tracker.as_mut().expect("tracker exists with split");
        let (count, total) = tracker.observe(hash, split.tracker_slots);
        if total < split.warmup {
            return None;
        }
        if (count as f64) < split.hot_fraction * (total as f64) {
            return None;
        }
        let shard = (self.next_split_shard % n_shards as u64) as usize;
        self.next_split_shard += 1;
        Some(shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdac_synopsis::{shard_of_pair, AnalyzerConfig, ShardedAnalyzer};
    use rtdac_types::Timestamp;

    fn e(start: u64) -> Extent {
        Extent::new(start, 1).unwrap()
    }

    fn txn(extents: &[Extent]) -> Transaction {
        Transaction::from_extents(Timestamp::ZERO, extents.iter().copied())
    }

    /// A deterministic mixed stream: recurring pairs, triples, singles.
    fn stream(len: u64) -> Vec<Transaction> {
        (0..len)
            .map(|i| match i % 4 {
                0 => txn(&[e(i % 13), e(100 + i % 7)]),
                1 => txn(&[e(i % 5), e(200 + i % 11), e(300 + i % 3)]),
                2 => txn(&[e(400 + i % 17)]),
                _ => txn(&[e(i % 13), e(100 + i % 7), e(500), e(600)]),
            })
            .collect()
    }

    #[test]
    fn routed_apply_matches_sequential_sharded_exactly() {
        // Small tables force eviction churn; per-shard table state must
        // still match the broadcast path bit-for-bit.
        let config = AnalyzerConfig::with_capacity(16).item_capacity(8);
        for shards in [1usize, 2, 3, 4, 8] {
            let mut broadcast = ShardedAnalyzer::new(config.clone(), shards);
            for t in &stream(400) {
                broadcast.process(t);
            }

            let mut router = Router::new(RouterConfig::new(shards));
            let mut routed_shards = ShardedAnalyzer::new(config.clone(), shards).into_shards();
            for chunk in stream(400).chunks(64) {
                let batch = router.route(chunk.to_vec());
                for (shard, work) in routed_shards.iter_mut().zip(&batch.per_shard) {
                    work.apply(shard);
                }
            }

            for (i, (routed, reference)) in routed_shards.iter().zip(broadcast.shards()).enumerate()
            {
                assert_eq!(
                    routed.snapshot(),
                    reference.snapshot(),
                    "shard {i} of {shards} diverged"
                );
            }
        }
    }

    #[test]
    fn pairs_route_to_their_hash_shard_without_splitting() {
        let mut router = Router::new(RouterConfig::new(4));
        let batch = router.route(stream(200));
        for (shard, work) in batch.per_shard.iter().enumerate() {
            for pair in &work.pairs {
                assert_eq!(shard_of_pair(pair, 4), shard, "pair on wrong shard");
            }
        }
    }

    #[test]
    fn op_filter_is_applied_at_the_front_end() {
        let mut t = Transaction::new(Timestamp::ZERO);
        t.push(e(1), IoOp::Write);
        t.push(e(2), IoOp::Read);
        t.push(e(3), IoOp::Write);
        let mut router = Router::new(RouterConfig::new(2).op_filter(Some(IoOp::Write)));
        let batch = router.route(vec![t]);
        let pairs: usize = batch.per_shard.iter().map(|w| w.pairs.len()).sum();
        let extents: usize = batch.per_shard.iter().map(|w| w.extents.len()).sum();
        assert_eq!(pairs, 1); // only the write-write pair
        assert_eq!(extents, 2);
    }

    #[test]
    fn hot_pair_splits_round_robin() {
        let split = SplitConfig {
            hot_fraction: 0.2,
            warmup: 32,
            ..SplitConfig::default()
        };
        let mut router = Router::new(RouterConfig::new(4).split(split));
        // One dominant pair (~every transaction) plus rotating cold pairs.
        let hot = [e(1), e(2)];
        let mut txns = Vec::new();
        for i in 0..2_000u64 {
            txns.push(txn(&hot));
            txns.push(txn(&[e(1_000 + i % 97), e(5_000 + i % 89)]));
        }
        let batch = router.route(txns);
        assert!(
            router.stats().split_records > 1_000,
            "hot pair never split: {:?}",
            router.stats()
        );
        // The hot pair's records land on every shard, roughly evenly.
        let hot_pair = ExtentPair::new(hot[0], hot[1]).unwrap();
        let per_shard: Vec<usize> = batch
            .per_shard
            .iter()
            .map(|w| w.pairs.iter().filter(|p| **p == hot_pair).count())
            .collect();
        assert!(per_shard.iter().all(|&c| c > 0), "skewed: {per_shard:?}");
        let (min, max) = (
            per_shard.iter().min().unwrap(),
            per_shard.iter().max().unwrap(),
        );
        assert!(max - min <= 1 + (per_shard.iter().sum::<usize>() / 3));
    }

    #[test]
    fn split_totals_stay_exact() {
        // Whatever the split decisions, the total number of routed pair
        // records must equal the stream's pair count, and the merged
        // tallies must match the single-threaded analyzer.
        let split = SplitConfig {
            hot_fraction: 0.05,
            warmup: 16,
            ..SplitConfig::default()
        };
        let mut router = Router::new(RouterConfig::new(4).split(split));
        let config = AnalyzerConfig::with_capacity(64 * 1024);
        let mut shards = ShardedAnalyzer::new(config.clone(), 4).into_shards();
        let mut single = rtdac_synopsis::OnlineAnalyzer::new(config.clone());
        let txns = stream(1_000);
        for t in &txns {
            single.process(t);
        }
        for chunk in txns.chunks(64) {
            let batch = router.route(chunk.to_vec());
            for (shard, work) in shards.iter_mut().zip(&batch.per_shard) {
                work.apply(shard);
            }
        }
        let merged = ShardedAnalyzer::from_routed_shards(config, shards, txns.len() as u64, true);
        // The single analyzer breaks tally ties by table recency; the
        // merged view uses the canonical (tally desc, pair asc) order —
        // compare in canonical order.
        let mut expected = single.frequent_pairs(1);
        expected.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        assert_eq!(merged.frequent_pairs(1), expected);
        assert_eq!(merged.stats().pairs, single.stats().pairs);
        assert_eq!(merged.stats().transactions, single.stats().transactions);
    }

    #[test]
    fn tracker_decays_and_bounds_slots() {
        let mut tracker = HotTracker::new(4, 64);
        for i in 0..1_000u64 {
            tracker.observe(i % 9, 4);
        }
        assert!(tracker.slots.len() <= 4);
        // Decay keeps the total bounded near the interval, not the
        // lifetime count.
        assert!(tracker.total < 200, "total {} never decayed", tracker.total);
    }

    #[test]
    fn route_into_reuses_buffers_and_matches_route() {
        // Routing through recycled (dirty, capacity-bearing) buffers
        // must produce the same work lists as fresh allocation.
        let txns = stream(400);
        let mut fresh_router = Router::new(RouterConfig::new(4));
        let mut pooled_router = Router::new(RouterConfig::new(4));
        let mut pooled: Vec<WorkList> = vec![WorkList::default(); 4];
        for chunk in txns.chunks(64) {
            let fresh = fresh_router.route(chunk.to_vec());
            pooled_router.route_into(chunk, &mut pooled);
            assert_eq!(pooled, fresh.per_shard);
        }
        assert_eq!(pooled_router.stats(), fresh_router.stats());
    }

    #[test]
    fn router_stats_merge_sums_round_robin_slices() {
        // Two routers over alternating batches must merge to exactly the
        // single-router counters.
        let txns = stream(512);
        let mut single = Router::new(RouterConfig::new(4));
        let mut split = [
            Router::new(RouterConfig::new(4)),
            Router::new(RouterConfig::new(4)),
        ];
        let mut scratch: Vec<WorkList> = vec![WorkList::default(); 4];
        for (i, chunk) in txns.chunks(64).enumerate() {
            single.route_into(chunk, &mut scratch);
            split[i % 2].route_into(chunk, &mut scratch);
        }
        let mut merged = RouterStats::default();
        merged.merge(split[0].stats());
        merged.merge(split[1].stats());
        assert_eq!(&merged, single.stats());
    }

    #[test]
    fn empty_and_filtered_transactions_route_nowhere() {
        let mut router = Router::new(RouterConfig::new(2).op_filter(Some(IoOp::Write)));
        let mut read_only = Transaction::new(Timestamp::ZERO);
        read_only.push(e(1), IoOp::Read);
        let batch = router.route(vec![Transaction::new(Timestamp::ZERO), read_only]);
        assert!(batch.per_shard.iter().all(|w| w.is_empty()));
        assert_eq!(router.stats().routed_transactions, vec![0, 0]);
    }
}
