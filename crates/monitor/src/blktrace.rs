//! A blktrace-style binary event format.
//!
//! The paper's monitoring module "uses the blktrace API to interpret
//! trace events ... without using blkparse" (§III-C): blktrace emits
//! fixed-size binary records carrying a timestamp, event action, PID,
//! starting sector and size. This module implements a compatible-in-
//! spirit codec — little-endian fixed records with a magic/version
//! header — so traces can be stored and monitored in the same binary
//! shape the real tool produces, and so the "interpret events without
//! blkparse" path is a real code path here too.
//!
//! Like blktrace, the stream carries *issue* (`D`) and *complete* (`C`)
//! actions; per-request latency is reconstructed by pairing them, which
//! is exactly how the paper's dynamic transaction window obtains its
//! latency signal.

use std::io::{self, Read, Write};
use std::time::Duration;

use rtdac_types::{Extent, IoEvent, IoOp, IoRequest, Timestamp, Trace};

/// Record magic, playing the role of blktrace's `BLK_IO_TRACE_MAGIC`
/// (0x65617400 | version).
pub const MAGIC: u32 = 0x6561_7401;

/// Size of one encoded record in bytes.
pub const RECORD_BYTES: usize = 40;

/// The block-layer action a record describes.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Action {
    /// Request issued to the device driver (blktrace `D`). The paper's
    /// monitor listens for exactly these.
    Issue,
    /// Request completed (blktrace `C`). Paired with the issue record to
    /// measure latency.
    Complete,
}

/// One fixed-size binary record.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BlktraceRecord {
    /// Event time, nanoseconds since trace start.
    pub time_ns: u64,
    /// Starting sector (512 B blocks).
    pub sector: u64,
    /// Length in 512 B blocks.
    pub blocks: u32,
    /// Issuing process.
    pub pid: u32,
    /// Issue or complete.
    pub action: Action,
    /// Read or write.
    pub op: IoOp,
}

impl BlktraceRecord {
    /// Encodes the record into its 40-byte wire form.
    pub fn encode(&self) -> [u8; RECORD_BYTES] {
        let mut buf = [0u8; RECORD_BYTES];
        buf[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        let action_bits: u32 = match self.action {
            Action::Issue => 1,
            Action::Complete => 2,
        } | match self.op {
            IoOp::Read => 0,
            IoOp::Write => 1 << 16,
        };
        buf[4..8].copy_from_slice(&action_bits.to_le_bytes());
        buf[8..16].copy_from_slice(&self.time_ns.to_le_bytes());
        buf[16..24].copy_from_slice(&self.sector.to_le_bytes());
        buf[24..28].copy_from_slice(&self.blocks.to_le_bytes());
        buf[28..32].copy_from_slice(&self.pid.to_le_bytes());
        // bytes 32..40 reserved (device id, error), zero like an
        // unerrored single-device trace.
        buf
    }

    /// Decodes a record from its wire form.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic or unknown action bits.
    pub fn decode(buf: &[u8; RECORD_BYTES]) -> io::Result<Self> {
        let magic = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
        if magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad blktrace magic {magic:#x}"),
            ));
        }
        let action_bits = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
        let action = match action_bits & 0xFFFF {
            1 => Action::Issue,
            2 => Action::Complete,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown blktrace action {other}"),
                ));
            }
        };
        let op = if action_bits & (1 << 16) != 0 {
            IoOp::Write
        } else {
            IoOp::Read
        };
        Ok(BlktraceRecord {
            time_ns: u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
            sector: u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes")),
            blocks: u32::from_le_bytes(buf[24..28].try_into().expect("4 bytes")),
            pid: u32::from_le_bytes(buf[28..32].try_into().expect("4 bytes")),
            action,
            op,
        })
    }
}

/// Writes a trace as a binary blktrace-style stream: one issue record
/// per request, plus a complete record when the request carries a
/// recorded latency.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_trace<W: Write>(trace: &Trace, mut writer: W) -> io::Result<()> {
    // Completions of in-flight requests can interleave past later
    // issues; collect and sort all records by time, as the kernel's
    // per-CPU buffers effectively do after merge.
    let mut records: Vec<BlktraceRecord> = Vec::with_capacity(trace.len() * 2);
    for request in trace {
        records.push(BlktraceRecord {
            time_ns: request.time.as_nanos(),
            sector: request.extent.start(),
            blocks: request.extent.len(),
            pid: request.pid,
            action: Action::Issue,
            op: request.op,
        });
        if let Some(latency) = request.latency {
            records.push(BlktraceRecord {
                time_ns: request.time.as_nanos() + latency.as_nanos() as u64,
                sector: request.extent.start(),
                blocks: request.extent.len(),
                pid: request.pid,
                action: Action::Complete,
                op: request.op,
            });
        }
    }
    records.sort_by_key(|r| (r.time_ns, r.action == Action::Complete));
    for record in records {
        writer.write_all(&record.encode())?;
    }
    Ok(())
}

/// Reads a binary blktrace-style stream back into issue events, pairing
/// each issue with its completion to recover the measured latency —
/// the §III-C "interpret trace events without blkparse" path.
///
/// Issues with no matching completion get `default_latency`.
///
/// # Errors
///
/// Returns `InvalidData` on malformed records or a truncated stream.
pub fn read_events<R: Read>(mut reader: R, default_latency: Duration) -> io::Result<Vec<IoEvent>> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    if raw.len() % RECORD_BYTES != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "truncated blktrace stream: {} bytes is not a multiple of {RECORD_BYTES}",
                raw.len()
            ),
        ));
    }

    let mut events: Vec<IoEvent> = Vec::new();
    // In-flight issues awaiting completion, keyed by (sector, blocks,
    // pid); FIFO per key handles repeated requests.
    let mut inflight: std::collections::HashMap<(u64, u32, u32), Vec<usize>> =
        std::collections::HashMap::new();
    for chunk in raw.chunks_exact(RECORD_BYTES) {
        let record = BlktraceRecord::decode(chunk.try_into().expect("exact chunk"))?;
        match record.action {
            Action::Issue => {
                let idx = events.len();
                events.push(IoEvent::new(
                    Timestamp::from_nanos(record.time_ns),
                    record.pid,
                    record.op,
                    Extent::new(record.sector, record.blocks.max(1))
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
                    default_latency,
                ));
                inflight
                    .entry((record.sector, record.blocks, record.pid))
                    .or_default()
                    .push(idx);
            }
            Action::Complete => {
                let key = (record.sector, record.blocks, record.pid);
                if let Some(queue) = inflight.get_mut(&key) {
                    if !queue.is_empty() {
                        let idx = queue.remove(0);
                        let issued = events[idx].timestamp.as_nanos();
                        events[idx].latency =
                            Duration::from_nanos(record.time_ns.saturating_sub(issued));
                    }
                }
                // Orphan completions (issue outside the capture window)
                // are dropped, as blkparse does.
            }
        }
    }
    events.sort_by_key(|e| e.timestamp);
    Ok(events)
}

/// Convenience: converts issue events straight back into a [`Trace`]
/// (e.g. to feed the offline miners from a binary capture).
pub fn events_to_trace(name: &str, events: &[IoEvent]) -> Trace {
    let mut trace = Trace::new(name);
    let mut sorted: Vec<&IoEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.timestamp);
    for event in sorted {
        trace.push(
            IoRequest::new(event.timestamp, event.pid, event.op, event.extent)
                .with_latency(event.latency),
        );
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut trace = Trace::new("t");
        for i in 0..10u64 {
            trace.push(
                IoRequest::new(
                    Timestamp::from_micros(i * 100),
                    42,
                    if i % 3 == 0 { IoOp::Write } else { IoOp::Read },
                    Extent::new(i * 64, 8).unwrap(),
                )
                .with_latency(Duration::from_micros(30 + i)),
            );
        }
        trace
    }

    #[test]
    fn record_round_trip() {
        let record = BlktraceRecord {
            time_ns: 123_456_789,
            sector: 987_654_321,
            blocks: 16,
            pid: 7,
            action: Action::Issue,
            op: IoOp::Write,
        };
        let decoded = BlktraceRecord::decode(&record.encode()).unwrap();
        assert_eq!(decoded, record);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut buf = [0u8; RECORD_BYTES];
        buf[0] = 0xff;
        let err = BlktraceRecord::decode(&buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn decode_rejects_unknown_action() {
        let record = BlktraceRecord {
            time_ns: 0,
            sector: 0,
            blocks: 1,
            pid: 0,
            action: Action::Issue,
            op: IoOp::Read,
        };
        let mut buf = record.encode();
        buf[4] = 9; // action bits
        assert!(BlktraceRecord::decode(&buf).is_err());
    }

    #[test]
    fn stream_round_trip_recovers_latencies() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        assert_eq!(buf.len(), 20 * RECORD_BYTES); // 10 issues + 10 completes

        let events = read_events(buf.as_slice(), Duration::from_micros(1)).unwrap();
        assert_eq!(events.len(), 10);
        for (event, request) in events.iter().zip(trace.iter()) {
            assert_eq!(event.timestamp, request.time);
            assert_eq!(event.extent, request.extent);
            assert_eq!(event.op, request.op);
            assert_eq!(Some(event.latency), request.latency);
        }
    }

    #[test]
    fn issues_without_completion_get_default_latency() {
        let mut trace = Trace::new("t");
        trace.push(IoRequest::new(
            Timestamp::ZERO,
            1,
            IoOp::Read,
            Extent::new(0, 8).unwrap(),
        )); // no recorded latency -> no C record
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        assert_eq!(buf.len(), RECORD_BYTES);
        let events = read_events(buf.as_slice(), Duration::from_micros(55)).unwrap();
        assert_eq!(events[0].latency, Duration::from_micros(55));
    }

    #[test]
    fn interleaved_inflight_requests_pair_correctly() {
        // Two identical requests in flight simultaneously: completions
        // pair FIFO.
        let mut trace = Trace::new("t");
        trace.push(
            IoRequest::new(
                Timestamp::from_micros(0),
                1,
                IoOp::Read,
                Extent::new(0, 8).unwrap(),
            )
            .with_latency(Duration::from_micros(500)),
        );
        trace.push(
            IoRequest::new(
                Timestamp::from_micros(100),
                1,
                IoOp::Read,
                Extent::new(0, 8).unwrap(),
            )
            .with_latency(Duration::from_micros(50)),
        );
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let events = read_events(buf.as_slice(), Duration::ZERO).unwrap();
        // FIFO pairing: the first issue pairs with the *first* completion
        // in time order (the second request's, at t=150), a known
        // ambiguity of identical overlapping requests.
        assert_eq!(events.len(), 2);
        let total: Duration = events.iter().map(|e| e.latency).sum();
        assert_eq!(total, Duration::from_micros(150 + 400));
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        buf.pop();
        assert!(read_events(buf.as_slice(), Duration::ZERO).is_err());
    }

    #[test]
    fn events_to_trace_round_trip() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let events = read_events(buf.as_slice(), Duration::ZERO).unwrap();
        let rebuilt = events_to_trace("t", &events);
        assert_eq!(rebuilt.len(), trace.len());
        assert_eq!(rebuilt.requests()[3].extent, trace.requests()[3].extent);
    }
}
