//! The real-time monitoring module of `rtdac` (§III-B/C of the paper).
//!
//! In the paper this module wraps Linux's *blktrace* to listen for block
//! layer "issue" events; here the event source is any iterator of
//! [`IoEvent`]s (the `rtdac-device` crate's replayer produces them, and a
//! user on Linux can adapt real blktrace output through
//! [`rtdac_types::Trace::read_msr_csv`] or their own converter).
//!
//! The monitor's job is purely structural: group events into
//! [`Transaction`]s by the transaction window, cap transaction size,
//! deduplicate repeats, and filter by PID — everything the paper's
//! monitoring module does between blktrace and the online analyzer.
//!
//! # Examples
//!
//! ```
//! use rtdac_monitor::{Monitor, MonitorConfig, WindowPolicy};
//! use rtdac_types::{Extent, IoEvent, IoOp, Timestamp};
//! use std::time::Duration;
//!
//! let events = (0..4u64).map(|i| IoEvent::new(
//!     Timestamp::from_millis(i * 200),       // 200 ms apart: separate txns
//!     1, IoOp::Read, Extent::new(i * 100, 8).unwrap(),
//!     Duration::from_micros(50),
//! ));
//! let txns = Monitor::new(MonitorConfig::default()).into_transactions(events);
//! assert_eq!(txns.len(), 4);
//! ```
//!
//! [`IoEvent`]: rtdac_types::IoEvent
//! [`Transaction`]: rtdac_types::Transaction

pub mod blktrace;
mod controller;
mod ewma;
mod monitor;
mod pipeline;
pub(crate) mod pool;
mod router;
mod service;
pub mod spsc;
mod stream;
mod tenant;

pub use controller::{AdaptiveController, ControllerConfig, WindowSample};
pub use ewma::LatencyEwma;
pub use monitor::{Monitor, MonitorConfig, MonitorStats, WindowPolicy};
pub use pipeline::{Dispatch, IngestPipeline, PipelineConfig, PipelineStats, ResizeEvent};
pub use router::{RoutedBatch, Router, RouterConfig, RouterStats, SplitConfig, WorkList};
pub use service::{serve, ServiceConfig};
pub use stream::{
    replay, BlktraceEventSource, BlktraceReader, ReplayPacing, ReplayStats, DEFAULT_CHUNK_BYTES,
    DEFAULT_MAX_INFLIGHT,
};
pub use tenant::{Tenant, TenantError, TenantRuntime, TenantRuntimeConfig};
