use std::time::Duration;

use rtdac_types::{FxHashSet, IoEvent, Pid, Timestamp, Transaction};

use crate::ewma::LatencyEwma;

/// How the monitor decides the transaction window length (§III-B).
#[derive(Clone, Debug, PartialEq)]
pub enum WindowPolicy {
    /// A fixed window duration `t`.
    Static(Duration),
    /// The paper's dynamic policy: `multiplier ×` the running average I/O
    /// latency, clamped to `[min, max]`. The paper uses a multiplier of 2.
    Dynamic {
        /// Factor applied to the average latency (paper: 2.0).
        multiplier: f64,
        /// Window used before any latency has been observed, and lower
        /// clamp thereafter.
        min: Duration,
        /// Upper clamp on the window.
        max: Duration,
    },
}

impl WindowPolicy {
    /// The paper's evaluation policy: double the average I/O latency,
    /// clamped between 20 µs and 10 ms.
    pub fn paper_dynamic() -> Self {
        WindowPolicy::Dynamic {
            multiplier: 2.0,
            min: Duration::from_micros(20),
            max: Duration::from_millis(10),
        }
    }
}

/// Configuration for a [`Monitor`].
///
/// # Examples
///
/// ```
/// use rtdac_monitor::{MonitorConfig, WindowPolicy};
/// use std::time::Duration;
///
/// let config = MonitorConfig::new(WindowPolicy::Static(Duration::from_micros(100)))
///     .transaction_limit(8)
///     .dedup(true);
/// assert_eq!(config.transaction_limit, 8);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MonitorConfig {
    /// Transaction window policy.
    pub window: WindowPolicy,
    /// Maximum requests per transaction; overflowing requests start a new
    /// transaction (§III-D2; the paper uses 8).
    pub transaction_limit: usize,
    /// Whether to deduplicate repeated extents within a transaction
    /// (§III-D2; the paper observed repeats in `wdev`).
    pub dedup: bool,
    /// Only events from these PIDs are monitored; `None` admits all
    /// (§III-C's PID/process-group filtering). Fx-hashed: this set is
    /// probed once per event on the ingestion hot path.
    pub pid_filter: Option<FxHashSet<Pid>>,
}

impl MonitorConfig {
    /// Creates a config with the given window policy and the paper's
    /// defaults: transaction limit 8, dedup on, no PID filter.
    pub fn new(window: WindowPolicy) -> Self {
        MonitorConfig {
            window,
            transaction_limit: 8,
            dedup: true,
            pid_filter: None,
        }
    }

    /// Sets the transaction size limit.
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0`.
    pub fn transaction_limit(mut self, limit: usize) -> Self {
        assert!(limit > 0, "transaction limit must be positive");
        self.transaction_limit = limit;
        self
    }

    /// Enables or disables in-transaction deduplication.
    pub fn dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Restricts monitoring to the given PIDs.
    pub fn pid_filter<I: IntoIterator<Item = Pid>>(mut self, pids: I) -> Self {
        self.pid_filter = Some(pids.into_iter().collect());
        self
    }
}

impl Default for MonitorConfig {
    /// The paper's evaluation configuration: dynamic 2× latency window,
    /// limit 8, dedup on.
    fn default() -> Self {
        MonitorConfig::new(WindowPolicy::paper_dynamic())
    }
}

/// Lifetime counters of a [`Monitor`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Events offered to the monitor.
    pub events: u64,
    /// Events dropped by the PID filter.
    pub filtered: u64,
    /// Transactions emitted.
    pub transactions: u64,
    /// Transactions emitted because the size limit was hit (a subset of
    /// `transactions`).
    pub limit_splits: u64,
}

/// The real-time monitoring module: turns a stream of block-layer issue
/// events into [`Transaction`]s for the online analysis module (§III-C).
///
/// Events must be offered in timestamp order (the block layer emits them
/// so). An event whose gap since the previous admitted event exceeds the
/// transaction window closes the current transaction; a transaction that
/// reaches the size limit is emitted and the overflow starts a new one.
///
/// # Examples
///
/// ```
/// use rtdac_monitor::{Monitor, MonitorConfig, WindowPolicy};
/// use rtdac_types::{Extent, IoEvent, IoOp, Timestamp};
/// use std::time::Duration;
///
/// let mut monitor = Monitor::new(MonitorConfig::new(
///     WindowPolicy::Static(Duration::from_micros(100)),
/// ));
/// let ev = |us: u64, block: u64| IoEvent::new(
///     Timestamp::from_micros(us), 1, IoOp::Read,
///     Extent::new(block, 8).unwrap(), Duration::from_micros(40),
/// );
/// assert!(monitor.push(ev(0, 100)).is_none());
/// assert!(monitor.push(ev(50, 200)).is_none());   // same window
/// let txn = monitor.push(ev(500, 300)).unwrap();   // gap 450 µs > 100 µs
/// assert_eq!(txn.len(), 2);
/// let last = monitor.flush().unwrap();
/// assert_eq!(last.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Monitor {
    config: MonitorConfig,
    latency: LatencyEwma,
    current: Option<Transaction>,
    last_event_time: Option<Timestamp>,
    stats: MonitorStats,
}

impl Monitor {
    /// Creates a monitor with the given configuration.
    pub fn new(config: MonitorConfig) -> Self {
        Monitor {
            config,
            latency: LatencyEwma::default(),
            current: None,
            last_event_time: None,
            stats: MonitorStats::default(),
        }
    }

    /// The configuration the monitor was built with.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// The transaction window currently in effect.
    pub fn current_window(&self) -> Duration {
        match &self.config.window {
            WindowPolicy::Static(t) => *t,
            WindowPolicy::Dynamic {
                multiplier,
                min,
                max,
            } => match self.latency.average() {
                None => *min,
                Some(avg) => {
                    let w = Duration::from_nanos((avg.as_nanos() as f64 * multiplier) as u64);
                    w.clamp(*min, *max)
                }
            },
        }
    }

    /// Offers one issue event; returns a completed transaction if this
    /// event closed one.
    ///
    /// At most one transaction is returned per event: an event can either
    /// close the window (the previous transaction is complete) or overflow
    /// the size limit (the full transaction is emitted and the event
    /// starts a fresh one), never both in a way that yields two.
    pub fn push(&mut self, event: IoEvent) -> Option<Transaction> {
        self.stats.events += 1;
        if let Some(filter) = &self.config.pid_filter {
            if !filter.contains(&event.pid) {
                self.stats.filtered += 1;
                return None;
            }
        }

        // Window check against the previous admitted event's timestamp —
        // requests "coincident in time" chain transitively within a
        // transaction, up to the size limit.
        let window = self.current_window();
        let closes_window = match self.last_event_time {
            Some(last) => event.timestamp.saturating_since(last) > window,
            None => false,
        };
        self.last_event_time = Some(event.timestamp);
        self.latency.observe(event.latency);

        let mut emitted = None;
        if closes_window {
            emitted = self.take_current();
        }

        let txn = self
            .current
            .get_or_insert_with(|| Transaction::new(event.timestamp));
        txn.push_at(event.timestamp, event.extent, event.op);

        if txn.len() >= self.config.transaction_limit {
            debug_assert!(
                emitted.is_none(),
                "an event cannot both close a window and overflow the new transaction"
            );
            self.stats.limit_splits += 1;
            emitted = self.take_current();
        }
        emitted
    }

    /// Emits the in-progress transaction, if any. Call at end of stream.
    pub fn flush(&mut self) -> Option<Transaction> {
        self.take_current()
    }

    fn take_current(&mut self) -> Option<Transaction> {
        let mut txn = self.current.take()?;
        if self.config.dedup {
            txn.dedup();
        }
        if txn.is_empty() {
            return None;
        }
        self.stats.transactions += 1;
        Some(txn)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// The monitor's running latency average (drives the dynamic window).
    pub fn average_latency(&self) -> Option<Duration> {
        self.latency.average()
    }

    /// Convenience: runs a whole event stream through a fresh monitor and
    /// returns every transaction, including the final flush.
    ///
    /// ```
    /// use rtdac_monitor::{Monitor, MonitorConfig};
    /// let txns = Monitor::new(MonitorConfig::default()).into_transactions(Vec::new());
    /// assert!(txns.is_empty());
    /// ```
    pub fn into_transactions<I>(mut self, events: I) -> Vec<Transaction>
    where
        I: IntoIterator<Item = IoEvent>,
    {
        let mut out = Vec::new();
        for event in events {
            if let Some(txn) = self.push(event) {
                out.push(txn);
            }
        }
        if let Some(txn) = self.flush() {
            out.push(txn);
        }
        out
    }
}

impl Default for Monitor {
    fn default() -> Self {
        Monitor::new(MonitorConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdac_types::{Extent, IoOp};

    fn ev(us: u64, block: u64) -> IoEvent {
        IoEvent::new(
            Timestamp::from_micros(us),
            1,
            IoOp::Read,
            Extent::new(block, 1).unwrap(),
            Duration::from_micros(40),
        )
    }

    fn ev_pid(us: u64, block: u64, pid: Pid) -> IoEvent {
        IoEvent::new(
            Timestamp::from_micros(us),
            pid,
            IoOp::Read,
            Extent::new(block, 1).unwrap(),
            Duration::from_micros(40),
        )
    }

    fn static_monitor(window_us: u64) -> Monitor {
        Monitor::new(MonitorConfig::new(WindowPolicy::Static(
            Duration::from_micros(window_us),
        )))
    }

    #[test]
    fn groups_events_within_window() {
        let mut m = static_monitor(100);
        assert!(m.push(ev(0, 1)).is_none());
        assert!(m.push(ev(90, 2)).is_none());
        assert!(m.push(ev(180, 3)).is_none()); // chains: 90 µs gap
        let txn = m.push(ev(500, 4)).unwrap();
        assert_eq!(txn.len(), 3);
        assert_eq!(m.flush().unwrap().len(), 1);
        assert!(m.flush().is_none());
    }

    #[test]
    fn exact_window_gap_stays_in_transaction() {
        let mut m = static_monitor(100);
        m.push(ev(0, 1));
        assert!(m.push(ev(100, 2)).is_none()); // gap == window: not greater
        let txn = m.push(ev(201, 3)).unwrap(); // gap 101 > window
        assert_eq!(txn.len(), 2);
    }

    #[test]
    fn size_limit_splits_transaction() {
        let mut m = Monitor::new(
            MonitorConfig::new(WindowPolicy::Static(Duration::from_micros(100)))
                .transaction_limit(3),
        );
        let mut emitted = Vec::new();
        for i in 0..7u64 {
            if let Some(t) = m.push(ev(i, i + 10)) {
                emitted.push(t);
            }
        }
        if let Some(t) = m.flush() {
            emitted.push(t);
        }
        assert_eq!(
            emitted.iter().map(Transaction::len).collect::<Vec<_>>(),
            vec![3, 3, 1]
        );
        assert_eq!(m.stats().limit_splits, 2);
    }

    #[test]
    fn dedup_applied_on_emit() {
        let mut m = static_monitor(100);
        m.push(ev(0, 5));
        m.push(ev(10, 5)); // repeat of the same extent (the wdev case)
        m.push(ev(20, 6));
        let txn = m.push(ev(500, 7)).unwrap();
        assert_eq!(txn.len(), 2);
    }

    #[test]
    fn dedup_can_be_disabled() {
        let mut m = Monitor::new(
            MonitorConfig::new(WindowPolicy::Static(Duration::from_micros(100))).dedup(false),
        );
        m.push(ev(0, 5));
        m.push(ev(10, 5));
        let txn = m.flush().unwrap();
        assert_eq!(txn.len(), 2);
    }

    #[test]
    fn pid_filter_drops_foreign_events() {
        let mut m = Monitor::new(
            MonitorConfig::new(WindowPolicy::Static(Duration::from_micros(100))).pid_filter([7]),
        );
        m.push(ev_pid(0, 1, 7));
        m.push(ev_pid(10, 2, 8)); // dropped
        m.push(ev_pid(20, 3, 7));
        let txn = m.flush().unwrap();
        assert_eq!(txn.len(), 2);
        assert_eq!(m.stats().filtered, 1);
        assert_eq!(m.stats().events, 3);
    }

    #[test]
    fn dynamic_window_tracks_latency() {
        let config = MonitorConfig::new(WindowPolicy::Dynamic {
            multiplier: 2.0,
            min: Duration::from_micros(10),
            max: Duration::from_millis(1),
        });
        let mut m = Monitor::new(config);
        assert_eq!(m.current_window(), Duration::from_micros(10)); // min before data
                                                                   // Feed events with 40 µs latency: the window converges to ~80 µs.
        for i in 0..50u64 {
            m.push(ev(i * 1000, i));
        }
        let w = m.current_window();
        assert!(w > Duration::from_micros(70), "window {w:?}");
        assert!(w < Duration::from_micros(90), "window {w:?}");
    }

    #[test]
    fn dynamic_window_clamps() {
        let config = MonitorConfig::new(WindowPolicy::Dynamic {
            multiplier: 2.0,
            min: Duration::from_micros(10),
            max: Duration::from_micros(50),
        });
        let mut m = Monitor::new(config);
        for i in 0..10u64 {
            // 1 ms latency would give a 2 ms window; must clamp to 50 µs.
            m.push(IoEvent::new(
                Timestamp::from_micros(i * 10_000),
                1,
                IoOp::Read,
                Extent::new(i, 1).unwrap(),
                Duration::from_millis(1),
            ));
        }
        assert_eq!(m.current_window(), Duration::from_micros(50));
    }

    #[test]
    fn into_transactions_collects_everything() {
        let events: Vec<IoEvent> = vec![ev(0, 1), ev(10, 2), ev(500, 3), ev(510, 4)];
        let txns = static_monitor(100).into_transactions(events);
        assert_eq!(txns.len(), 2);
        assert_eq!(txns[0].len(), 2);
        assert_eq!(txns[1].len(), 2);
    }

    #[test]
    fn transaction_timestamps_cover_window() {
        let mut m = static_monitor(100);
        m.push(ev(10, 1));
        m.push(ev(60, 2));
        let txn = m.flush().unwrap();
        assert_eq!(txn.start(), Timestamp::from_micros(10));
        assert_eq!(txn.end(), Timestamp::from_micros(60));
    }

    #[test]
    fn stats_count_transactions() {
        let mut m = static_monitor(100);
        m.push(ev(0, 1));
        m.push(ev(500, 2));
        m.flush();
        assert_eq!(m.stats().transactions, 2);
        assert_eq!(m.stats().events, 2);
    }
}
