//! The occupancy-driven resize controller for the elastic pipeline.
//!
//! An [`AdaptiveController`] turns the stage-pool telemetry the
//! pipeline already collects — per-shard work-ring high-water marks
//! and the per-stage busy-time split — into [`Topology`] decisions at
//! batch boundaries (ROADMAP "Adaptive stage counts", DESIGN.md §11):
//!
//! * **Shard dimension** from ring occupancy: sustained high-water
//!   near capacity means the shard stage cannot drain what the
//!   front-end routes (grow); rings that stay near-empty mean the
//!   shard pool is wider than the work (shrink).
//! * **Router dimension** from the busy-time ratio of the busiest
//!   router to the busiest shard — the live analogue of the
//!   `routing_secs` vs `slowest_shard_secs` figures in
//!   BENCH_ingest.json. A front-end burning as much CPU per window as
//!   the slowest shard is (or is about to become) the critical path:
//!   grow R. A front-end far below it wastes fan-in width: shrink R.
//!
//! Decisions are pure functions of the sampled window
//! ([`AdaptiveController::observe`]), so hysteresis is testable
//! without threads: a change of target must persist for
//! `confirm_windows` consecutive windows before it is issued, and
//! after every issued resize the controller ignores `cooldown_windows`
//! windows entirely — the re-seeded pool gets time to re-establish its
//! steady state before it is judged. Steps are a factor of two per
//! dimension per decision, clamped to the configured bounds, so the
//! controller walks the same power-of-two grid the benchmarks sweep.

use rtdac_types::Topology;

/// Tuning knobs for an [`AdaptiveController`].
#[derive(Clone, Debug, PartialEq)]
pub struct ControllerConfig {
    /// Smallest shard count the controller will shrink to.
    pub min_shards: usize,
    /// Largest shard count the controller will grow to.
    pub max_shards: usize,
    /// Smallest router count the controller will shrink to.
    pub min_routers: usize,
    /// Largest router count the controller will grow to.
    pub max_routers: usize,
    /// Batches per observation window: the pipeline samples the
    /// telemetry and calls [`AdaptiveController::observe`] once every
    /// this many dispatched batches.
    pub interval_batches: u64,
    /// Consecutive windows that must agree on the same target before a
    /// resize is issued (hysteresis against transient spikes).
    pub confirm_windows: u32,
    /// Windows ignored after an issued resize, letting the fresh pool
    /// warm up before it is judged (anti-thrash).
    pub cooldown_windows: u32,
    /// Ring-occupancy fraction (window high-water / slot count) at or
    /// above which the shard pool grows.
    pub grow_occupancy: f64,
    /// Ring-occupancy fraction at or below which the shard pool
    /// shrinks.
    pub shrink_occupancy: f64,
    /// Busiest-router / busiest-shard busy-time ratio at or above
    /// which the router pool grows (the front-end nears the critical
    /// path).
    pub grow_router_ratio: f64,
    /// Busy-time ratio at or below which the router pool shrinks.
    pub shrink_router_ratio: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            min_shards: 1,
            max_shards: 8,
            min_routers: 1,
            max_routers: 4,
            interval_batches: 32,
            confirm_windows: 2,
            cooldown_windows: 4,
            grow_occupancy: 0.75,
            shrink_occupancy: 0.15,
            grow_router_ratio: 1.0,
            shrink_router_ratio: 0.35,
        }
    }
}

impl ControllerConfig {
    /// Sets both shard bounds.
    pub fn shard_bounds(mut self, min: usize, max: usize) -> Self {
        assert!(min >= 1 && min <= max, "invalid shard bounds");
        self.min_shards = min;
        self.max_shards = max;
        self
    }

    /// Sets both router bounds.
    pub fn router_bounds(mut self, min: usize, max: usize) -> Self {
        assert!(min >= 1 && min <= max, "invalid router bounds");
        self.min_routers = min;
        self.max_routers = max;
        self
    }

    /// Sets the observation window length in batches.
    pub fn interval_batches(mut self, batches: u64) -> Self {
        assert!(batches > 0, "window must be at least one batch");
        self.interval_batches = batches;
        self
    }

    /// Sets the confirmation-window count (hysteresis).
    pub fn confirm_windows(mut self, windows: u32) -> Self {
        assert!(windows > 0, "need at least one confirming window");
        self.confirm_windows = windows;
        self
    }

    /// Sets the post-resize cooldown in windows.
    pub fn cooldown_windows(mut self, windows: u32) -> Self {
        self.cooldown_windows = windows;
        self
    }
}

/// One observation window's telemetry, sampled by the pipeline at a
/// batch boundary. High-water marks are *per window* (the atomics are
/// swapped to zero at each sample), busy times are the window's
/// deltas.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowSample {
    /// The topology the window ran under.
    pub topology: Topology,
    /// Slot count of each shard work ring (occupancy denominator).
    pub ring_slots: u64,
    /// Highest occupancy any shard's work rings reached this window.
    pub shard_ring_high: u64,
    /// Busiest single router's busy nanoseconds this window.
    pub router_busy_nanos: u64,
    /// Busiest single shard's busy nanoseconds this window.
    pub shard_busy_nanos: u64,
}

/// The controller: feed it one [`WindowSample`] per observation window
/// and apply the [`Topology`] it occasionally returns. See the module
/// docs for the decision rules.
#[derive(Clone, Debug)]
pub struct AdaptiveController {
    config: ControllerConfig,
    /// Target awaiting confirmation, with its consecutive-window count.
    pending: Option<(Topology, u32)>,
    /// Windows left to ignore after an issued resize.
    cooldown: u32,
    /// Resizes issued over the controller's lifetime.
    resizes_issued: u64,
}

impl AdaptiveController {
    /// A controller with the given knobs.
    pub fn new(config: ControllerConfig) -> Self {
        assert!(
            config.min_shards >= 1 && config.min_shards <= config.max_shards,
            "invalid shard bounds"
        );
        assert!(
            config.min_routers >= 1 && config.min_routers <= config.max_routers,
            "invalid router bounds"
        );
        assert!(
            config.shrink_occupancy < config.grow_occupancy,
            "occupancy thresholds must leave a dead band"
        );
        assert!(
            config.shrink_router_ratio < config.grow_router_ratio,
            "router-ratio thresholds must leave a dead band"
        );
        AdaptiveController {
            config,
            pending: None,
            cooldown: 0,
            resizes_issued: 0,
        }
    }

    /// The configuration the controller was built with.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Resizes issued so far.
    pub fn resizes_issued(&self) -> u64 {
        self.resizes_issued
    }

    /// Observes one window and decides. Returns the new topology to
    /// apply, or `None` to stay put. The caller must actually apply a
    /// returned topology (the controller assumes it took effect and
    /// enters cooldown).
    pub fn observe(&mut self, sample: &WindowSample) -> Option<Topology> {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return None;
        }
        let target = self.target_for(sample);
        if target == sample.topology {
            self.pending = None;
            return None;
        }
        let confirmations = match self.pending {
            Some((pending, count)) if pending == target => count + 1,
            _ => 1,
        };
        if confirmations >= self.config.confirm_windows {
            self.pending = None;
            self.cooldown = self.config.cooldown_windows;
            self.resizes_issued += 1;
            Some(target)
        } else {
            self.pending = Some((target, confirmations));
            None
        }
    }

    /// The raw (unhysteresized) target for one window's readings.
    fn target_for(&self, sample: &WindowSample) -> Topology {
        let Topology { shards, routers } = sample.topology;
        let cfg = &self.config;

        let occupancy = if sample.ring_slots == 0 {
            0.0
        } else {
            sample.shard_ring_high as f64 / sample.ring_slots as f64
        };
        let shards = if occupancy >= cfg.grow_occupancy {
            (shards * 2).min(cfg.max_shards)
        } else if occupancy <= cfg.shrink_occupancy {
            (shards / 2).max(cfg.min_shards)
        } else {
            shards
        }
        .clamp(cfg.min_shards, cfg.max_shards);

        // An idle window (no busy time recorded on either stage) gives
        // no routing signal; hold R rather than react to silence.
        let routers = if sample.shard_busy_nanos == 0 {
            routers
        } else {
            let ratio = sample.router_busy_nanos as f64 / sample.shard_busy_nanos as f64;
            if ratio >= cfg.grow_router_ratio {
                (routers * 2).min(cfg.max_routers)
            } else if ratio <= cfg.shrink_router_ratio {
                (routers / 2).max(cfg.min_routers)
            } else {
                routers
            }
        }
        .clamp(cfg.min_routers, cfg.max_routers);

        Topology { shards, routers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> AdaptiveController {
        AdaptiveController::new(ControllerConfig::default())
    }

    fn sample(topology: Topology, high: u64, router_busy: u64, shard_busy: u64) -> WindowSample {
        WindowSample {
            topology,
            ring_slots: 8,
            shard_ring_high: high,
            router_busy_nanos: router_busy,
            shard_busy_nanos: shard_busy,
        }
    }

    #[test]
    fn saturated_rings_grow_shards_after_confirmation() {
        let mut c = controller();
        let t = Topology::new(2, 1);
        let saturated = sample(t, 8, 100, 1_000);
        // First window only registers the pending target ...
        assert_eq!(c.observe(&saturated), None);
        // ... the confirming window issues the doubling.
        assert_eq!(c.observe(&saturated), Some(Topology::new(4, 1)));
        assert_eq!(c.resizes_issued(), 1);
    }

    #[test]
    fn empty_rings_shrink_shards() {
        let mut c = controller();
        let t = Topology::new(4, 1);
        let idle = sample(t, 0, 100, 1_000);
        assert_eq!(c.observe(&idle), None);
        assert_eq!(c.observe(&idle), Some(Topology::new(2, 1)));
    }

    #[test]
    fn mid_band_occupancy_holds_steady() {
        let mut c = controller();
        let t = Topology::new(4, 2);
        let comfortable = sample(t, 4, 500, 1_000);
        for _ in 0..10 {
            assert_eq!(c.observe(&comfortable), None);
        }
        assert_eq!(c.resizes_issued(), 0);
    }

    #[test]
    fn router_ratio_drives_router_dimension() {
        let mut c = controller();
        let t = Topology::new(4, 1);
        // Router as busy as the slowest shard: front-end is critical.
        let router_bound = sample(t, 4, 1_000, 1_000);
        assert_eq!(c.observe(&router_bound), None);
        assert_eq!(c.observe(&router_bound), Some(Topology::new(4, 2)));

        let mut c = controller();
        let t = Topology::new(4, 4);
        // Router nearly idle relative to shards: fan-in width wasted.
        let router_idle = sample(t, 4, 100, 1_000);
        assert_eq!(c.observe(&router_idle), None);
        assert_eq!(c.observe(&router_idle), Some(Topology::new(4, 2)));
    }

    #[test]
    fn both_dimensions_can_move_in_one_decision() {
        let mut c = controller();
        let t = Topology::new(2, 1);
        let overloaded = sample(t, 8, 2_000, 1_000);
        assert_eq!(c.observe(&overloaded), None);
        assert_eq!(c.observe(&overloaded), Some(Topology::new(4, 2)));
    }

    #[test]
    fn bounds_clamp_growth_and_shrink() {
        let mut c = AdaptiveController::new(
            ControllerConfig::default()
                .shard_bounds(2, 4)
                .router_bounds(1, 2),
        );
        let at_max = Topology::new(4, 2);
        let overloaded = sample(at_max, 8, 2_000, 1_000);
        for _ in 0..5 {
            assert_eq!(c.observe(&overloaded), None, "already at max");
        }
        let at_min = Topology::new(2, 1);
        let idle = sample(at_min, 0, 100, 1_000);
        for _ in 0..5 {
            assert_eq!(c.observe(&idle), None, "already at min");
        }
    }

    #[test]
    fn flapping_signal_never_confirms() {
        let mut c = controller();
        let t = Topology::new(4, 1);
        let high = sample(t, 8, 100, 1_000);
        let mid = sample(t, 4, 100, 1_000);
        for _ in 0..8 {
            assert_eq!(c.observe(&high), None);
            assert_eq!(c.observe(&mid), None); // resets the pending streak
        }
        assert_eq!(c.resizes_issued(), 0);
    }

    #[test]
    fn cooldown_swallows_windows_after_a_resize() {
        let mut c = controller();
        let t = Topology::new(2, 1);
        let saturated = sample(t, 8, 100, 1_000);
        c.observe(&saturated);
        assert_eq!(c.observe(&saturated), Some(Topology::new(4, 1)));
        // The next cooldown_windows samples are ignored even though
        // they would otherwise demand another grow.
        let still_saturated = sample(Topology::new(4, 1), 8, 100, 1_000);
        for _ in 0..4 {
            assert_eq!(c.observe(&still_saturated), None);
        }
        // After cooldown the streak restarts from scratch.
        assert_eq!(c.observe(&still_saturated), None);
        assert_eq!(c.observe(&still_saturated), Some(Topology::new(8, 1)));
    }

    #[test]
    fn idle_window_gives_no_router_signal() {
        let mut c = controller();
        let t = Topology::new(4, 4);
        // No shard busy time at all: router ratio is undefined; only
        // the occupancy rule may act.
        let silent = sample(t, 4, 0, 0);
        for _ in 0..5 {
            assert_eq!(c.observe(&silent), None);
        }
    }
}
