//! Multi-tenant pipeline runtime: a registry of independent
//! [`IngestPipeline`]s keyed by tenant id, with admission control and
//! an idle-tenant lifecycle.
//!
//! The paper's monitor watches one device; a production monitor host
//! serves many (one pipeline per device/VM/volume). The
//! [`TenantRuntime`] owns that fleet: it sizes every tenant's analyzer
//! from one byte budget (via [`analyzer_config_for`], the same sizing
//! the benchmarks use), refuses admission past a tenant cap, parks
//! pipelines that go idle (worker threads joined, tables drained into
//! the resize protocol's partition-invariant snapshot — the live view
//! keeps answering queries while parked) and transparently resumes
//! them on the next push.
//!
//! Locking is two-level and coarse only at the registry: the registry
//! map is held just long enough to clone a tenant's `Arc`, and each
//! tenant has its own mutex, so one tenant's ingest never contends
//! with another's queries.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rtdac_synopsis::{analyzer_config_for, AnalyzerConfig, ShardedAnalyzer};

use crate::monitor::MonitorConfig;
use crate::pipeline::{IngestPipeline, PipelineConfig};

/// Sizing and lifecycle policy shared by every tenant of a runtime.
#[derive(Clone, Debug)]
pub struct TenantRuntimeConfig {
    /// Admission cap: `open` refuses new tenants past this count.
    pub max_tenants: usize,
    /// Per-tenant memory budget in bytes; each tenant's
    /// [`AnalyzerConfig`] is derived from it with
    /// [`analyzer_config_for`].
    pub tenant_budget_bytes: usize,
    /// Slice of the budget spent on a doorkeeper admission sketch
    /// (0 = admission off).
    pub doorkeeper_bytes: usize,
    /// Monitor (windowing) configuration applied to every tenant.
    pub monitor: MonitorConfig,
    /// Pipeline topology template applied to every tenant. Must use
    /// routed dispatch (the default) for idle parking, and a non-zero
    /// `publish_interval_batches` for live queries.
    pub pipeline: PipelineConfig,
    /// Tenants idle at least this long are parked by
    /// [`TenantRuntime::park_idle`].
    pub idle_park_after: Duration,
}

impl Default for TenantRuntimeConfig {
    fn default() -> Self {
        TenantRuntimeConfig {
            max_tenants: 64,
            tenant_budget_bytes: 512 * 1024,
            doorkeeper_bytes: 0,
            monitor: MonitorConfig::default(),
            pipeline: PipelineConfig::with_shards(1).publish_interval(4),
            idle_park_after: Duration::from_secs(30),
        }
    }
}

/// Why a tenant could not be admitted or used.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TenantError {
    /// The runtime is at its tenant cap.
    Limit {
        /// The configured cap.
        max: usize,
    },
    /// The tenant was evicted while a handle to it was still held.
    Evicted,
}

impl std::fmt::Display for TenantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantError::Limit { max } => write!(f, "tenant limit reached ({max})"),
            TenantError::Evicted => write!(f, "tenant was evicted"),
        }
    }
}

impl std::error::Error for TenantError {}

/// One tenant: an [`IngestPipeline`] plus lifecycle bookkeeping.
///
/// The pipeline is reached through [`pipeline`](Tenant::pipeline),
/// which also stamps the tenant's activity clock; queries that should
/// not defer parking can use [`peek`](Tenant::peek).
pub struct Tenant {
    id: String,
    pipeline: Option<IngestPipeline>,
    last_active: Instant,
}

impl Tenant {
    fn new(id: &str, pipeline: IngestPipeline) -> Self {
        Tenant {
            id: id.to_string(),
            pipeline: Some(pipeline),
            last_active: Instant::now(),
        }
    }

    /// The tenant id this entry was registered under.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Mutable pipeline access; marks the tenant active (resetting the
    /// idle-park clock). `Err(Evicted)` after eviction.
    pub fn pipeline(&mut self) -> Result<&mut IngestPipeline, TenantError> {
        self.last_active = Instant::now();
        self.pipeline.as_mut().ok_or(TenantError::Evicted)
    }

    /// Read-only pipeline access that does **not** reset the idle
    /// clock (monitoring/introspection path).
    pub fn peek(&self) -> Result<&IngestPipeline, TenantError> {
        self.pipeline.as_ref().ok_or(TenantError::Evicted)
    }

    /// Like [`peek`](Tenant::peek) but mutable — live-view polling
    /// needs `&mut` — still without resetting the idle clock.
    pub fn peek_mut(&mut self) -> Result<&mut IngestPipeline, TenantError> {
        self.pipeline.as_mut().ok_or(TenantError::Evicted)
    }

    /// How long the tenant has been idle as of `now`.
    pub fn idle_for(&self, now: Instant) -> Duration {
        now.saturating_duration_since(self.last_active)
    }

    fn finish(&mut self) -> Option<ShardedAnalyzer> {
        self.pipeline.take().map(IngestPipeline::finish)
    }
}

/// The tenant registry: admission, lookup, idle lifecycle, shutdown.
pub struct TenantRuntime {
    config: TenantRuntimeConfig,
    analyzer_config: AnalyzerConfig,
    tenants: Mutex<HashMap<String, Arc<Mutex<Tenant>>>>,
}

impl TenantRuntime {
    /// Builds a runtime; every tenant admitted later gets an analyzer
    /// sized once here from the per-tenant byte budget.
    pub fn new(config: TenantRuntimeConfig) -> Self {
        let analyzer_config = analyzer_config_for(
            config.tenant_budget_bytes,
            config.doorkeeper_bytes,
            // With publishing enabled the live view mirrors the tables
            // on the reader side; reserve a matching slice so the
            // *total* per-tenant footprint stays within budget.
            if config.pipeline.publish_interval_batches > 0 {
                config.tenant_budget_bytes / 4
            } else {
                0
            },
        );
        TenantRuntime {
            config,
            analyzer_config,
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// The per-tenant analyzer sizing this runtime admits with —
    /// exactly what an offline oracle must use to reproduce a tenant's
    /// tables.
    pub fn analyzer_config(&self) -> &AnalyzerConfig {
        &self.analyzer_config
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &TenantRuntimeConfig {
        &self.config
    }

    /// Returns the tenant registered under `id`, admitting (and
    /// spawning a pipeline for) it first if absent. Admission fails
    /// only at the tenant cap.
    pub fn open(&self, id: &str) -> Result<Arc<Mutex<Tenant>>, TenantError> {
        let mut tenants = self.tenants.lock().expect("tenant registry poisoned");
        if let Some(tenant) = tenants.get(id) {
            return Ok(Arc::clone(tenant));
        }
        if tenants.len() >= self.config.max_tenants {
            return Err(TenantError::Limit {
                max: self.config.max_tenants,
            });
        }
        let pipeline = IngestPipeline::new(
            self.config.monitor.clone(),
            self.analyzer_config.clone(),
            self.config.pipeline.clone(),
        );
        let tenant = Arc::new(Mutex::new(Tenant::new(id, pipeline)));
        tenants.insert(id.to_string(), Arc::clone(&tenant));
        Ok(tenant)
    }

    /// Looks up a tenant without admitting.
    pub fn get(&self, id: &str) -> Option<Arc<Mutex<Tenant>>> {
        self.tenants
            .lock()
            .expect("tenant registry poisoned")
            .get(id)
            .map(Arc::clone)
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.lock().expect("tenant registry poisoned").len()
    }

    /// Whether no tenants are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registered tenant ids, sorted.
    pub fn tenant_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .tenants
            .lock()
            .expect("tenant registry poisoned")
            .keys()
            .cloned()
            .collect();
        ids.sort();
        ids
    }

    /// Evicts `id`: removes it from the registry, joins its worker
    /// threads and returns the final analyzer (`None` if the id was
    /// unknown). A connection still holding the tenant's `Arc` sees
    /// [`TenantError::Evicted`] on its next access.
    pub fn evict(&self, id: &str) -> Option<ShardedAnalyzer> {
        let tenant = self
            .tenants
            .lock()
            .expect("tenant registry poisoned")
            .remove(id)?;
        let mut tenant = tenant.lock().expect("tenant poisoned");
        tenant.finish()
    }

    /// Parks every parkable tenant idle for at least the configured
    /// threshold: worker threads join, tables drain to a snapshot, and
    /// the live view keeps answering queries at the park boundary.
    /// Tenants whose mutex is currently held are busy by definition
    /// and skipped. Returns how many tenants were parked.
    pub fn park_idle(&self) -> usize {
        let now = Instant::now();
        let tenants: Vec<Arc<Mutex<Tenant>>> = self
            .tenants
            .lock()
            .expect("tenant registry poisoned")
            .values()
            .map(Arc::clone)
            .collect();
        let mut parked = 0;
        for tenant in tenants {
            let Ok(mut tenant) = tenant.try_lock() else {
                continue;
            };
            if tenant.idle_for(now) < self.config.idle_park_after {
                continue;
            }
            let Ok(pipeline) = tenant.peek_mut() else {
                continue;
            };
            if pipeline.can_park() && !pipeline.is_parked() {
                pipeline.park();
                parked += 1;
            }
        }
        parked
    }

    /// Drives the publish cadence of every running (non-parked)
    /// tenant with an empty batch, so paused streams still reach their
    /// next epoch boundary and live views stay fresh. Does not reset
    /// idle clocks. Busy tenants are skipped.
    pub fn heartbeat_all(&self) {
        let tenants: Vec<Arc<Mutex<Tenant>>> = self
            .tenants
            .lock()
            .expect("tenant registry poisoned")
            .values()
            .map(Arc::clone)
            .collect();
        for tenant in tenants {
            let Ok(mut tenant) = tenant.try_lock() else {
                continue;
            };
            let Ok(pipeline) = tenant.peek_mut() else {
                continue;
            };
            if !pipeline.is_parked() {
                pipeline.heartbeat();
            }
        }
    }

    /// Finishes every tenant, returning `(id, final analyzer)` pairs
    /// sorted by id. The runtime is left empty.
    pub fn shutdown(&self) -> Vec<(String, ShardedAnalyzer)> {
        let tenants: Vec<(String, Arc<Mutex<Tenant>>)> = self
            .tenants
            .lock()
            .expect("tenant registry poisoned")
            .drain()
            .collect();
        let mut finished: Vec<(String, ShardedAnalyzer)> = tenants
            .into_iter()
            .filter_map(|(id, tenant)| {
                let mut tenant = tenant.lock().expect("tenant poisoned");
                tenant.finish().map(|shards| (id, shards))
            })
            .collect();
        finished.sort_by(|a, b| a.0.cmp(&b.0));
        finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtdac_synopsis::OnlineAnalyzer;
    use rtdac_types::{Extent, Timestamp, Transaction};

    fn config() -> TenantRuntimeConfig {
        TenantRuntimeConfig {
            max_tenants: 2,
            tenant_budget_bytes: 64 * 1024,
            idle_park_after: Duration::ZERO,
            pipeline: PipelineConfig::with_shards(1)
                .batch_size(4)
                .publish_interval(2),
            ..TenantRuntimeConfig::default()
        }
    }

    /// Frequent-pairs reports leave ties in table order, which differs
    /// between a sharded merge and a single oracle; a total order
    /// (tally desc, pair asc) makes them comparable.
    fn canonical(
        mut pairs: Vec<(rtdac_types::ExtentPair, u32)>,
    ) -> Vec<(rtdac_types::ExtentPair, u32)> {
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        pairs
    }

    fn txn(i: u64, salt: u64) -> Transaction {
        Transaction::from_extents(
            Timestamp::from_millis(i),
            [
                Extent::new(i % 7 + salt * 1000, 8).unwrap(),
                Extent::new(500 + i % 7 + salt * 1000, 8).unwrap(),
            ],
        )
    }

    #[test]
    fn admission_cap_is_enforced_and_open_is_get_or_create() {
        let runtime = TenantRuntime::new(config());
        let a = runtime.open("a").unwrap();
        let _b = runtime.open("b").unwrap();
        assert!(matches!(
            runtime.open("c"),
            Err(TenantError::Limit { max: 2 })
        ));
        // Re-opening an admitted tenant is a lookup, not an admission.
        let a2 = runtime.open("a").unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        assert_eq!(runtime.tenant_ids(), ["a", "b"]);
    }

    #[test]
    fn tenants_are_isolated_and_match_their_oracles() {
        let runtime = TenantRuntime::new(config());
        for salt in 0..2u64 {
            let id = salt.to_string();
            let tenant = runtime.open(&id).unwrap();
            let mut tenant = tenant.lock().unwrap();
            let pipeline = tenant.pipeline().unwrap();
            for i in 0..40 {
                pipeline.push_transaction(txn(i, salt));
            }
        }
        for (id, shards) in runtime.shutdown() {
            let salt: u64 = id.parse().unwrap();
            let mut oracle = OnlineAnalyzer::new(runtime.analyzer_config().clone());
            for i in 0..40 {
                oracle.process(&txn(i, salt));
            }
            assert_eq!(
                canonical(shards.frequent_pairs(1)),
                canonical(oracle.frequent_pairs(1))
            );
        }
        assert!(runtime.is_empty());
    }

    #[test]
    fn idle_tenants_park_and_resume_transparently() {
        let runtime = TenantRuntime::new(config());
        let tenant = runtime.open("t").unwrap();
        {
            let mut tenant = tenant.lock().unwrap();
            let pipeline = tenant.pipeline().unwrap();
            for i in 0..20 {
                pipeline.push_transaction(txn(i, 0));
            }
        }
        // Zero idle threshold: the sweep parks it immediately.
        assert_eq!(runtime.park_idle(), 1);
        assert!(tenant.lock().unwrap().peek().unwrap().is_parked());
        // Parked tenants still answer live queries.
        {
            let mut tenant = tenant.lock().unwrap();
            let view = tenant.peek_mut().unwrap().live_view_mut().unwrap();
            assert!(!view.frequent_pairs(1).is_empty());
        }
        // The next push resumes it; results stay oracle-exact.
        {
            let mut tenant = tenant.lock().unwrap();
            let pipeline = tenant.pipeline().unwrap();
            for i in 20..40 {
                pipeline.push_transaction(txn(i, 0));
            }
            assert!(!pipeline.is_parked());
        }
        let mut oracle = OnlineAnalyzer::new(runtime.analyzer_config().clone());
        for i in 0..40 {
            oracle.process(&txn(i, 0));
        }
        let (_, shards) = runtime.shutdown().pop().unwrap();
        assert_eq!(
            canonical(shards.frequent_pairs(1)),
            canonical(oracle.frequent_pairs(1))
        );
    }

    #[test]
    fn evicted_tenant_handles_report_eviction() {
        let runtime = TenantRuntime::new(config());
        let tenant = runtime.open("t").unwrap();
        {
            let mut guard = tenant.lock().unwrap();
            let pipeline = guard.pipeline().unwrap();
            for i in 0..10 {
                pipeline.push_transaction(txn(i, 0));
            }
        }
        let shards = runtime.evict("t").expect("tenant registered");
        assert!(!shards.frequent_pairs(1).is_empty());
        assert!(runtime.is_empty());
        assert!(runtime.evict("t").is_none());
        // The stale handle sees the eviction instead of panicking.
        let mut guard = tenant.lock().unwrap();
        assert!(matches!(guard.pipeline(), Err(TenantError::Evicted)));
    }

    #[test]
    fn heartbeats_reach_running_tenants_only() {
        let runtime = TenantRuntime::new(config());
        let running = runtime.open("running").unwrap();
        let parked = runtime.open("parked").unwrap();
        parked.lock().unwrap().peek_mut().unwrap().park();
        let before = running.lock().unwrap().peek().unwrap().stats().batches;
        runtime.heartbeat_all();
        assert!(running.lock().unwrap().peek().unwrap().stats().batches > before);
        assert!(parked.lock().unwrap().peek().unwrap().is_parked());
    }
}
