//! The §V automatic-optimization scenarios, asserted end to end: the
//! analyzer's correlations must actually improve the simulated SSD.

use std::time::Duration;

use rtdac::monitor::{Monitor, MonitorConfig, WindowPolicy};
use rtdac::ssdsim::{
    CorrelationPlacement, CorrelationStreams, Ftl, FtlConfig, ParallelUnitModel, SingleStream,
    StreamAssigner, StripingPlacement,
};
use rtdac::synopsis::{AnalyzerConfig, OnlineAnalyzer};
use rtdac::types::{Extent, IoEvent, IoOp, Timestamp};
use rtdac::workloads::Zipf;

/// Correlated write groups with shared death times (rewritten as units).
fn groups() -> Vec<Vec<Extent>> {
    let mut groups = Vec::new();
    let mut cursor = 0u64;
    for _ in 0..12 {
        let mut extents = Vec::new();
        for _ in 0..4 {
            extents.push(Extent::new(cursor, 16).expect("valid extent"));
            cursor += 16 + 48;
        }
        groups.push(extents);
    }
    groups
}

/// Learns write correlations by replaying group bursts through the
/// monitor + analyzer.
fn learn_write_correlations(groups: &[Vec<Extent>]) -> OnlineAnalyzer {
    let mut analyzer =
        OnlineAnalyzer::new(AnalyzerConfig::with_capacity(4096).op_filter(Some(IoOp::Write)));
    let mut monitor = Monitor::new(
        MonitorConfig::new(WindowPolicy::Static(Duration::from_micros(200))).transaction_limit(4),
    );
    let zipf = Zipf::new(groups.len(), 1.0);
    let mut state = 0x1234_5678u64;
    let mut t = Timestamp::ZERO;
    for _ in 0..600 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut r = rand_float(&mut state);
        // Inverse-transform through the zipf's CDF via rejection-free
        // rank scan (tiny n).
        let mut rank = 0;
        while rank + 1 < groups.len() && r > zipf.probability(rank) {
            r -= zipf.probability(rank);
            rank += 1;
        }
        for &extent in &groups[rank] {
            let ev = IoEvent::new(t, 1, IoOp::Write, extent, Duration::from_micros(30));
            if let Some(txn) = monitor.push(ev) {
                analyzer.process(&txn);
            }
            t += Duration::from_micros(20);
        }
        t += Duration::from_millis(3);
    }
    if let Some(txn) = monitor.flush() {
        analyzer.process(&txn);
    }
    analyzer
}

fn rand_float(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 11) as f64) / ((1u64 << 53) as f64)
}

fn run_waf(groups: &[Vec<Extent>], assigner: &mut dyn StreamAssigner, streams: usize) -> f64 {
    let config = FtlConfig {
        pages_per_eu: 64,
        erase_units: 32,
        streams,
        gc_low_watermark: streams.max(4),
    };
    let mut ftl = Ftl::new(config);
    // Initial fill.
    for group in groups {
        for extent in group {
            for block in extent.blocks() {
                ftl.write(block, assigner.assign(block));
            }
        }
    }
    // Skewed group rewrites, extents interleaved across groups.
    let zipf = Zipf::new(groups.len(), 1.0);
    let mut state = 0xdead_beefu64;
    for _ in 0..120 {
        let mut batch: Vec<Extent> = Vec::new();
        for _ in 0..6 {
            let mut r = rand_float(&mut state);
            let mut rank = 0;
            while rank + 1 < groups.len() && r > zipf.probability(rank) {
                r -= zipf.probability(rank);
                rank += 1;
            }
            batch.extend(groups[rank].iter().copied());
        }
        // Shuffle extents so groups interleave at the append point.
        for i in (1..batch.len()).rev() {
            let j = (rand_float(&mut state) * (i + 1) as f64) as usize;
            batch.swap(i, j.min(i));
        }
        for extent in batch {
            for block in extent.blocks() {
                ftl.write(block, assigner.assign(block));
            }
        }
    }
    ftl.stats().waf()
}

#[test]
fn correlation_streams_reduce_waf() {
    let groups = groups();
    let analyzer = learn_write_correlations(&groups);
    let frequent = analyzer.frequent_pairs(10);
    assert!(
        frequent.len() >= 30,
        "learned only {} write correlations",
        frequent.len()
    );

    let streams = 8;
    let pairs: Vec<_> = frequent.iter().map(|(p, _)| p).collect();
    let mut correlated = CorrelationStreams::from_pairs(pairs.iter().copied(), streams);
    let waf_single = run_waf(&groups, &mut SingleStream, 1);
    let waf_corr = run_waf(&groups, &mut correlated, streams);

    assert!(waf_single > 1.0, "baseline must show GC overhead");
    assert!(
        waf_corr < waf_single,
        "correlation streams WAF {waf_corr:.3} not below single-stream {waf_single:.3}"
    );
}

#[test]
fn correlation_placement_beats_ill_mapped_striping() {
    // Batches whose extents share a stripe: striping serializes them on
    // one PU.
    let units = 8;
    let stripe = 4096u64;
    let batches: Vec<Vec<Extent>> = (0..10u64)
        .map(|b| {
            let base = b * stripe * units as u64;
            (0..5u64)
                .map(|i| Extent::new(base + i * 700, 8).expect("valid extent"))
                .collect()
        })
        .collect();

    // Learn read correlations.
    let mut analyzer =
        OnlineAnalyzer::new(AnalyzerConfig::with_capacity(4096).op_filter(Some(IoOp::Read)));
    let mut monitor = Monitor::new(
        MonitorConfig::new(WindowPolicy::Static(Duration::from_micros(300))).transaction_limit(5),
    );
    let mut t = Timestamp::ZERO;
    for round in 0..80usize {
        let batch = &batches[round % batches.len()];
        for &extent in batch {
            let ev = IoEvent::new(t, 1, IoOp::Read, extent, Duration::from_micros(50));
            if let Some(txn) = monitor.push(ev) {
                analyzer.process(&txn);
            }
            t += Duration::from_micros(25);
        }
        t += Duration::from_millis(2);
    }
    if let Some(txn) = monitor.flush() {
        analyzer.process(&txn);
    }

    let frequent = analyzer.frequent_pairs(5);
    let pairs: Vec<_> = frequent.iter().map(|(p, _)| p).collect();
    let placement = CorrelationPlacement::from_pairs(pairs.iter().copied(), units, stripe);
    let striping = StripingPlacement::new(units, stripe);
    let bank = ParallelUnitModel::new(units, Duration::from_micros(50));

    let mut striped = Duration::ZERO;
    let mut placed = Duration::ZERO;
    for batch in &batches {
        striped += bank.batch_latency(batch, &striping);
        placed += bank.batch_latency(batch, &placement);
    }
    assert!(
        placed < striped,
        "correlation placement {placed:?} not below striping {striped:?}"
    );
    // All five extents of a batch on one stripe serialize 5×; the
    // correlation-aware layout should recover most of that.
    let speedup = striped.as_secs_f64() / placed.as_secs_f64();
    assert!(speedup > 2.0, "speedup only {speedup:.2}×");
}

#[test]
fn ftl_waf_improvement_shows_in_relocations_not_accounting_tricks() {
    // Sanity: the WAF difference must come from fewer GC relocations,
    // with identical host write counts.
    let groups = groups();
    let analyzer = learn_write_correlations(&groups);
    let pairs: Vec<_> = analyzer.frequent_pairs(10);
    let pair_refs: Vec<_> = pairs.iter().map(|(p, _)| p).collect();
    let mut correlated = CorrelationStreams::from_pairs(pair_refs.iter().copied(), 8);

    let run = |assigner: &mut dyn StreamAssigner, streams: usize| {
        let config = FtlConfig {
            pages_per_eu: 64,
            erase_units: 32,
            streams,
            gc_low_watermark: streams.max(4),
        };
        let mut ftl = Ftl::new(config);
        let mut state = 77u64;
        for _ in 0..200 {
            for group in &groups {
                if rand_float(&mut state) < 0.4 {
                    for extent in group {
                        for block in extent.blocks() {
                            ftl.write(block, assigner.assign(block));
                        }
                    }
                }
            }
        }
        ftl.stats()
    };
    let single = run(&mut SingleStream, 1);
    let corr = run(&mut correlated, 8);
    assert_eq!(single.host_writes, corr.host_writes);
    assert!(corr.relocations <= single.relocations);
}
