//! The binary blktrace path end to end: a synthesized trace written as
//! a blktrace-style stream, read back without blkparse (§III-C), and
//! analyzed — must agree with analyzing the trace directly.

use std::collections::HashSet;
use std::time::Duration;

use rtdac::monitor::{blktrace, BlktraceEventSource, Monitor, MonitorConfig, WindowPolicy};
use rtdac::synopsis::{AnalyzerConfig, OnlineAnalyzer};
use rtdac::types::{EventSource, ExtentPair, IoEvent, Trace};
use rtdac::workloads::MsrServer;

fn direct_events(trace: &Trace) -> Vec<IoEvent> {
    trace
        .iter()
        .map(|r| {
            IoEvent::new(
                r.time,
                r.pid,
                r.op,
                r.extent,
                r.latency.expect("synthesized traces record latencies"),
            )
        })
        .collect()
}

fn frequent_pairs_of(events: Vec<IoEvent>, config: MonitorConfig) -> HashSet<ExtentPair> {
    let txns = Monitor::new(config).into_transactions(events);
    let mut analyzer = OnlineAnalyzer::new(AnalyzerConfig::with_capacity(16 * 1024));
    for txn in &txns {
        analyzer.process(txn);
    }
    analyzer
        .frequent_pairs(5)
        .into_iter()
        .map(|(p, _)| p)
        .collect()
}

fn binary_round_trip(trace: &Trace) -> Vec<IoEvent> {
    let mut buf = Vec::new();
    blktrace::write_trace(trace, &mut buf).expect("in-memory write");
    blktrace::read_events(buf.as_slice(), Duration::from_micros(100)).expect("well-formed stream")
}

#[test]
fn binary_round_trip_preserves_analysis_exactly_under_static_window() {
    // With a static window the analysis depends only on timestamps and
    // geometry, both preserved exactly by the binary format.
    let trace = MsrServer::Rsrch.synthesize(10_000, 13);
    let config = || MonitorConfig::new(WindowPolicy::Static(Duration::from_micros(300)));
    let direct = frequent_pairs_of(direct_events(&trace), config());
    let events = binary_round_trip(&trace);
    assert_eq!(events.len(), trace.len());
    let via_binary = frequent_pairs_of(events, config());
    assert_eq!(direct, via_binary);
}

#[test]
fn binary_round_trip_agrees_under_dynamic_window() {
    // The dynamic window consumes recovered latencies, whose FIFO D/C
    // pairing can permute latencies of identical overlapping requests —
    // so exact equality is not guaranteed, but the analyses must agree
    // almost everywhere.
    let trace = MsrServer::Rsrch.synthesize(10_000, 13);
    let direct = frequent_pairs_of(direct_events(&trace), MonitorConfig::default());
    let via_binary = frequent_pairs_of(binary_round_trip(&trace), MonitorConfig::default());
    let common = direct.intersection(&via_binary).count();
    let union = direct.union(&via_binary).count().max(1);
    let jaccard = common as f64 / union as f64;
    assert!(jaccard > 0.9, "jaccard {jaccard:.3} between paths");
}

#[test]
fn binary_stream_latencies_drive_the_dynamic_window() {
    let trace = MsrServer::Wdev.synthesize(5_000, 14);
    let mut buf = Vec::new();
    blktrace::write_trace(&trace, &mut buf).expect("in-memory write");
    let events = blktrace::read_events(buf.as_slice(), Duration::ZERO).expect("well-formed stream");

    let mut monitor = Monitor::new(MonitorConfig::default());
    for event in events {
        monitor.push(event);
    }
    // The recovered latencies average to the trace's recorded mean
    // (HDD-era ms), so the dynamic window must saturate at its clamp.
    let avg = monitor.average_latency().expect("latencies recovered");
    let recorded = trace.stats().mean_recorded_latency.expect("recorded");
    let ratio = avg.as_secs_f64() / recorded.as_secs_f64();
    assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn streaming_reader_is_event_exact_across_chunk_boundaries() {
    // 10k requests = 20k records = ~800 KB of stream, a dozen refills at
    // the default 64 KiB chunk. The streaming reader must produce the
    // oracle's events exactly at *any* chunk size — the odd sizes
    // guarantee that no refill ever lands on the 40-byte record grid, so
    // nearly every chunk boundary splits a record in two.
    let trace = MsrServer::Src2.synthesize(10_000, 16);
    let mut buf = Vec::new();
    blktrace::write_trace(&trace, &mut buf).expect("in-memory write");
    let oracle =
        blktrace::read_events(buf.as_slice(), Duration::from_micros(100)).expect("oracle decode");
    assert_eq!(oracle.len(), trace.len());

    for chunk_bytes in [64 * 1024, 4_099, 97, 41] {
        let mut source = BlktraceEventSource::with_limits(
            buf.as_slice(),
            Duration::from_micros(100),
            chunk_bytes,
            64 * 1024,
        );
        let mut streamed = Vec::with_capacity(oracle.len());
        while let Some(event) = source.next_event().expect("well-formed stream") {
            streamed.push(event);
        }
        assert_eq!(
            streamed, oracle,
            "streaming decode diverged from the oracle at chunk size {chunk_bytes}"
        );
    }
}

#[test]
fn events_to_trace_preserves_stats() {
    let trace = MsrServer::Hm.synthesize(4_000, 15);
    let mut buf = Vec::new();
    blktrace::write_trace(&trace, &mut buf).expect("in-memory write");
    let events = blktrace::read_events(buf.as_slice(), Duration::ZERO).expect("well-formed stream");
    let rebuilt = blktrace::events_to_trace("hm", &events);
    let a = trace.stats();
    let b = rebuilt.stats();
    assert_eq!(a.requests, b.requests);
    assert_eq!(a.total_bytes, b.total_bytes);
    assert_eq!(a.unique_bytes, b.unique_bytes);
    assert_eq!(a.max_block, b.max_block);
}
