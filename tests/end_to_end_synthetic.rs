//! The paper's headline claim, end to end: "the proposed framework can
//! detect over 90% of data access correlations in real-time, using
//! limited memory" — exercised on all three synthetic workloads through
//! the full generate → replay → monitor → analyze pipeline.

use std::collections::HashSet;

use rtdac::device::{replay, NvmeSsdModel, ReplayMode};
use rtdac::fim::{count_pairs, frequent_pairs};
use rtdac::metrics::detection;
use rtdac::monitor::{Monitor, MonitorConfig};
use rtdac::synopsis::{AnalyzerConfig, OnlineAnalyzer};
use rtdac::types::{ExtentPair, Transaction};
use rtdac::workloads::{SyntheticKind, SyntheticSpec};

fn pipeline(kind: SyntheticKind, seed: u64) -> (Vec<Transaction>, OnlineAnalyzer, Vec<ExtentPair>) {
    let workload = SyntheticSpec::new(kind).events(1_500).seed(seed).generate();
    let mut ssd = NvmeSsdModel::new(seed);
    let replayed = replay(
        &workload.trace,
        &mut ssd,
        ReplayMode::Timed { speedup: 1.0 },
    );
    let txns = Monitor::new(MonitorConfig::default()).into_transactions(replayed.events);
    let mut analyzer = OnlineAnalyzer::new(AnalyzerConfig::with_capacity(8 * 1024));
    for txn in &txns {
        analyzer.process(txn);
    }
    (txns, analyzer, workload.expected_pairs())
}

#[test]
fn constructed_correlations_are_detected_in_every_kind() {
    for (i, kind) in SyntheticKind::ALL.into_iter().enumerate() {
        let (_, analyzer, expected) = pipeline(kind, 100 + i as u64);
        let detected: HashSet<ExtentPair> = analyzer
            .frequent_pairs(10)
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        let truth: HashSet<ExtentPair> = expected.into_iter().collect();
        let d = detection(&detected, &truth);
        assert!(
            d.recall >= 0.9,
            "{}: recall {:.2} below the paper's 90% headline",
            kind.name(),
            d.recall
        );
    }
}

#[test]
fn online_matches_offline_frequent_pairs() {
    // Fig. 7's comparison: offline eclat at support 10 (third column) vs
    // the online table at the same support (fourth column). The online
    // set must cover >90% of the offline frequent pairs.
    for (i, kind) in SyntheticKind::ALL.into_iter().enumerate() {
        let (txns, analyzer, _) = pipeline(kind, 200 + i as u64);
        let truth_counts = count_pairs(&txns);
        let offline: HashSet<ExtentPair> = frequent_pairs(&truth_counts, 10)
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        let online: HashSet<ExtentPair> = analyzer
            .frequent_pairs(10)
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        let d = detection(&online, &offline);
        assert!(
            d.recall > 0.9,
            "{}: online found {:.2} of offline frequent pairs",
            kind.name(),
            d.recall
        );
        // And the online tallies cannot exceed the true frequencies
        // (the synopsis only undercounts, via evictions).
        for (pair, tally) in analyzer.frequent_pairs(1) {
            let true_count = truth_counts.get(&pair).copied().unwrap_or(0);
            assert!(
                tally <= true_count,
                "{}: pair {pair} tallied {tally} > true {true_count}",
                kind.name()
            );
        }
    }
}

#[test]
fn noise_does_not_become_frequent() {
    let (_, analyzer, expected) = pipeline(SyntheticKind::OneToOne, 300);
    let truth: HashSet<ExtentPair> = expected.into_iter().collect();
    // At support 10, (almost) everything detected should be constructed:
    // noise pairs are coincidental and rarely repeat.
    let detected = analyzer.frequent_pairs(10);
    let false_positives = detected.iter().filter(|(p, _)| !truth.contains(p)).count();
    assert!(
        false_positives <= detected.len() / 5,
        "{false_positives} of {} frequent pairs are noise",
        detected.len()
    );
}

#[test]
fn memory_stays_within_configured_bound() {
    let (_, analyzer, _) = pipeline(SyntheticKind::ManyToMany, 400);
    let config = analyzer.config();
    assert!(analyzer.item_table().len() <= 2 * config.item_capacity_per_tier);
    assert!(analyzer.correlation_table().len() <= 2 * config.correlation_capacity_per_tier);
    // Paper's model: 88 bytes per capacity unit when tables are equal.
    assert_eq!(
        analyzer.memory_bytes(),
        88 * config.correlation_capacity_per_tier
    );
}

#[test]
fn detection_survives_a_tiny_table() {
    // Even a table far smaller than the workload's unique-pair count
    // keeps the four constructed (frequent) correlations: promotion to
    // T2 protects them from the noise churn in T1.
    let workload = SyntheticSpec::new(SyntheticKind::OneToOne)
        .events(1_500)
        .seed(77)
        .generate();
    let mut ssd = NvmeSsdModel::new(77);
    let replayed = replay(
        &workload.trace,
        &mut ssd,
        ReplayMode::Timed { speedup: 1.0 },
    );
    let txns = Monitor::new(MonitorConfig::default()).into_transactions(replayed.events);
    let mut analyzer = OnlineAnalyzer::new(AnalyzerConfig::with_capacity(256));
    for txn in &txns {
        analyzer.process(txn);
    }
    let detected: HashSet<ExtentPair> = analyzer
        .frequent_pairs(10)
        .into_iter()
        .map(|(p, _)| p)
        .collect();
    let truth: HashSet<ExtentPair> = workload.expected_pairs().into_iter().collect();
    let d = detection(&detected, &truth);
    assert!(
        d.recall >= 0.75,
        "tiny-table recall {:.2} collapsed entirely",
        d.recall
    );
}
