//! Online-vs-offline agreement on the MSR-like real-world workloads —
//! the Fig. 8/9 comparison as assertions: the bounded online synopsis
//! must capture a large share of what unbounded offline mining finds.

use std::collections::HashSet;

use rtdac::device::{replay, NvmeSsdModel, ReplayMode};
use rtdac::fim::{count_pairs, frequent_pairs};
use rtdac::metrics::{detection, representability, OptimalCurve};
use rtdac::monitor::{Monitor, MonitorConfig};
use rtdac::synopsis::{AnalyzerConfig, OnlineAnalyzer};
use rtdac::types::{ExtentPair, Transaction};
use rtdac::workloads::MsrServer;

fn monitored_transactions(server: MsrServer, requests: usize, seed: u64) -> Vec<Transaction> {
    let trace = server.synthesize(requests, seed);
    let speedup = server.paper_reference().replay_speedup;
    let mut ssd = NvmeSsdModel::new(seed);
    let replayed = replay(&trace, &mut ssd, ReplayMode::Timed { speedup });
    Monitor::new(MonitorConfig::default()).into_transactions(replayed.events)
}

fn analyze(txns: &[Transaction], capacity: usize) -> OnlineAnalyzer {
    let mut analyzer = OnlineAnalyzer::new(AnalyzerConfig::with_capacity(capacity));
    for txn in txns {
        analyzer.process(txn);
    }
    analyzer
}

#[test]
fn online_covers_offline_support5_pairs_on_all_servers() {
    // Fig. 8: offline support-5 pairs (middle column) vs online
    // support-5 pairs (right column).
    for server in MsrServer::ALL {
        let txns = monitored_transactions(server, 25_000, 1);
        let truth = count_pairs(&txns);
        let offline: HashSet<ExtentPair> = frequent_pairs(&truth, 5)
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        // A table large enough for this (scaled) trace.
        let analyzer = analyze(&txns, 32 * 1024);
        let online: HashSet<ExtentPair> = analyzer
            .frequent_pairs(5)
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        let d = detection(&online, &offline);
        assert!(
            d.recall > 0.9,
            "{}: online support-5 recall {:.3} ({} offline pairs)",
            server.name(),
            d.recall,
            offline.len()
        );
        assert!(
            d.precision > 0.9,
            "{}: online support-5 precision {:.3}",
            server.name(),
            d.precision
        );
    }
}

#[test]
fn representability_grows_with_table_size() {
    // Fig. 9's central trend: quality is low for a small table and
    // increases with table size, reaching ~1 when the table can store
    // every pair.
    let txns = monitored_transactions(MsrServer::Wdev, 20_000, 2);
    let truth = count_pairs(&txns);
    let mut previous = 0.0;
    let mut last = 0.0;
    for capacity in [256usize, 1024, 4096, 16 * 1024, 64 * 1024] {
        let analyzer = analyze(&txns, capacity);
        let stored = analyzer.snapshot().pair_set();
        let r = representability(&stored, &truth);
        assert!(
            r.versus_optimal >= previous - 0.1,
            "representability regressed hard at capacity {capacity}: \
             {:.3} after {:.3}",
            r.versus_optimal,
            previous
        );
        previous = r.versus_optimal;
        last = r.versus_optimal;
    }
    assert!(
        last > 0.95,
        "a table big enough for every pair must approach optimal, got {last:.3}"
    );
}

#[test]
fn most_unique_pairs_are_infrequent() {
    // Fig. 5's observation driving the whole design: "the majority of
    // unique extent pairs are infrequent ... three quarters of the
    // unique extent pairs occur only once" (wdev/src2/rsrch).
    for server in [MsrServer::Wdev, MsrServer::Src2, MsrServer::Rsrch] {
        let txns = monitored_transactions(server, 25_000, 3);
        let truth = count_pairs(&txns);
        let once = truth.values().filter(|&&c| c == 1).count();
        let fraction = once as f64 / truth.len() as f64;
        assert!(
            fraction > 0.5,
            "{}: only {:.2} of unique pairs have support 1",
            server.name(),
            fraction
        );
    }
}

#[test]
fn a_small_table_represents_a_large_weighted_share() {
    // Fig. 6's point: a small number of top pairs covers a large
    // fraction of total frequency ("roughly 40% ... using a small table
    // size").
    let txns = monitored_transactions(MsrServer::Rsrch, 25_000, 4);
    let truth = count_pairs(&txns);
    let curve = OptimalCurve::from_counts(&truth);
    let small = curve.unique_pairs() / 20; // 5% of unique pairs
    assert!(
        curve.optimal_fraction(small.max(1)) > 0.3,
        "top 5% of pairs cover only {:.3} of occurrences",
        curve.optimal_fraction(small.max(1))
    );
}

#[test]
fn online_tallies_never_exceed_truth_on_real_workloads() {
    let txns = monitored_transactions(MsrServer::Hm, 15_000, 5);
    let truth = count_pairs(&txns);
    let analyzer = analyze(&txns, 16 * 1024);
    for (pair, tally) in analyzer.frequent_pairs(1) {
        let true_count = truth.get(&pair).copied().unwrap_or(0);
        assert!(
            tally <= true_count,
            "pair {pair}: online {tally} > offline {true_count}"
        );
    }
}

#[test]
fn stg_needs_a_bigger_table_than_wdev() {
    // Fig. 9's stg discussion: with its order-of-magnitude larger number
    // space and majority-infrequent pairs, a very small correlation
    // table does relatively worse on stg than on wdev.
    let capacity = 512;
    let mut scores = Vec::new();
    for server in [MsrServer::Wdev, MsrServer::Stg] {
        let txns = monitored_transactions(server, 25_000, 6);
        let truth = count_pairs(&txns);
        let analyzer = analyze(&txns, capacity);
        let stored = analyzer.snapshot().pair_set();
        scores.push(representability(&stored, &truth).versus_optimal);
    }
    assert!(
        scores[0] > scores[1],
        "wdev ({:.3}) should beat stg ({:.3}) at a tiny table",
        scores[0],
        scores[1]
    );
}
