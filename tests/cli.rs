//! End-to-end tests of the `rtdac` command-line binary: synth → stats →
//! analyze → convert → mine over both trace formats.

use std::path::PathBuf;
use std::process::{Command, Output};

fn rtdac(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rtdac"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(output: &Output) -> String {
    assert!(
        output.status.success(),
        "command failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rtdac_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

#[test]
fn synth_stats_analyze_pipeline() {
    let blk = temp_path("wdev.blk");
    let out = stdout(&rtdac(&[
        "synth",
        "wdev",
        blk.to_str().unwrap(),
        "--requests",
        "5000",
        "--seed",
        "3",
    ]));
    assert!(out.contains("5000 requests"));

    let stats = stdout(&rtdac(&["stats", blk.to_str().unwrap()]));
    assert!(stats.contains("requests:             5000"));
    assert!(stats.contains("reuse ratio"));
    assert!(stats.contains("mean recorded latency"));

    let analysis = stdout(&rtdac(&[
        "analyze",
        blk.to_str().unwrap(),
        "--support",
        "5",
        "--top",
        "3",
    ]));
    assert!(analysis.contains("transactions"));
    assert!(analysis.contains("correlations with support >= 5"));
    assert!(analysis.contains('~'), "should print at least one pair");
}

#[test]
fn convert_round_trips_between_formats() {
    let blk = temp_path("rt.blk");
    let csv = temp_path("rt.csv");
    let blk2 = temp_path("rt2.blk");
    stdout(&rtdac(&[
        "synth",
        "rsrch",
        blk.to_str().unwrap(),
        "--requests",
        "2000",
    ]));
    stdout(&rtdac(&[
        "convert",
        blk.to_str().unwrap(),
        csv.to_str().unwrap(),
    ]));
    stdout(&rtdac(&[
        "convert",
        csv.to_str().unwrap(),
        blk2.to_str().unwrap(),
    ]));

    // Stats agree across the round trip (latency excepted: the MSR CSV
    // format stores response times in 100 ns ticks, truncating
    // nanoseconds).
    let a = stdout(&rtdac(&["stats", blk.to_str().unwrap()]));
    let b = stdout(&rtdac(&["stats", blk2.to_str().unwrap()]));
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.starts_with("trace:") && !l.starts_with("mean recorded latency"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&a), strip(&b));
}

#[test]
fn mine_agrees_with_analyze_on_top_pair() {
    let blk = temp_path("mine.blk");
    stdout(&rtdac(&[
        "synth",
        "one-to-one",
        blk.to_str().unwrap(),
        "--requests",
        "500",
    ]));
    let analyze = stdout(&rtdac(&[
        "analyze",
        blk.to_str().unwrap(),
        "--support",
        "10",
        "--top",
        "1",
        "--window",
        "200",
    ]));
    let mine = stdout(&rtdac(&[
        "mine",
        blk.to_str().unwrap(),
        "--support",
        "10",
        "--window",
        "200",
    ]));
    // The first pair line ("<tally>x  <a> ~ <b>") of both outputs names
    // the same most-frequent pair.
    let top = |s: &str| {
        s.lines()
            .find(|l| l.contains('~'))
            .map(str::trim)
            .map(String::from)
    };
    let top_analyze = top(&analyze).expect("analyze printed a pair");
    let top_mine = top(&mine).expect("mine printed a pair");
    assert_eq!(top_analyze, top_mine);
}

#[test]
fn bad_usage_fails_with_help() {
    let out = rtdac(&["frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
    assert!(err.contains("usage:"));

    let out = rtdac(&[]);
    assert!(!out.status.success());

    let out = rtdac(&["analyze", "/nonexistent/path.csv"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));
}

#[test]
fn unknown_extensions_are_rejected_not_guessed() {
    let trace_convert = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_trace_convert"))
            .args(args)
            .output()
            .expect("binary runs")
    };
    let blk = temp_path("ext.blk");
    stdout(&rtdac(&[
        "synth",
        "wdev",
        blk.to_str().unwrap(),
        "--requests",
        "500",
    ]));

    // Unknown input extension: both CLIs refuse instead of silently
    // parsing the bytes as blktrace.
    for out in [
        rtdac(&["stats", "/nonexistent/trace.dat"]),
        rtdac(&["analyze", "/nonexistent/trace.dat"]),
        trace_convert(&["/nonexistent/trace.dat", "/tmp/out.csv"]),
    ] {
        assert!(!out.status.success());
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("unknown trace extension"),
            "expected extension error, got: {err}"
        );
    }

    // Unknown output extension: rejected before any file is created.
    let bad_out = temp_path("out.dat");
    for out in [
        rtdac(&["convert", blk.to_str().unwrap(), bad_out.to_str().unwrap()]),
        trace_convert(&[blk.to_str().unwrap(), bad_out.to_str().unwrap()]),
    ] {
        assert!(!out.status.success());
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("unknown trace extension"), "got: {err}");
        assert!(!bad_out.exists(), "output file must not be created");
    }

    // Unreadable input with a known extension still reports cleanly.
    let out = trace_convert(&["/nonexistent/trace.blk", "/tmp/out.csv"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("cannot open") || err.contains("cannot stat"),
        "got: {err}"
    );

    // The .blktrace alias works end to end.
    let alias = temp_path("alias.blktrace");
    stdout(&rtdac(&[
        "convert",
        blk.to_str().unwrap(),
        alias.to_str().unwrap(),
    ]));
    assert!(stdout(&rtdac(&["stats", alias.to_str().unwrap()])).contains("requests:"));
}

#[test]
fn ops_filter_restricts_analysis() {
    let blk = temp_path("ops.blk");
    stdout(&rtdac(&[
        "synth",
        "wdev",
        blk.to_str().unwrap(),
        "--requests",
        "3000",
    ]));
    let all = stdout(&rtdac(&["analyze", blk.to_str().unwrap(), "--ops", "all"]));
    let writes = stdout(&rtdac(&[
        "analyze",
        blk.to_str().unwrap(),
        "--ops",
        "write",
    ]));
    let count = |s: &str| -> usize {
        s.lines()
            .find_map(|l| l.split(" correlations").next()?.trim().parse().ok())
            .unwrap_or(0)
    };
    assert!(count(&writes) <= count(&all));
    let bad = rtdac(&["analyze", blk.to_str().unwrap(), "--ops", "sideways"]);
    assert!(!bad.status.success());
}
