//! End-to-end tests of the `rtdacd` service loop over loopback TCP:
//! multi-tenant bit-exactness against the offline reference, and
//! protocol-error containment at the socket boundary.

use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

use rtdac::monitor::{blktrace, serve, BlktraceEventSource, Monitor, ServiceConfig, TenantRuntime};
use rtdac::synopsis::ReferenceAnalyzer;
use rtdac::types::wire::{read_frame, write_frame, FrameKind, WireClient, WireError, WIRE_MAGIC};
use rtdac::types::{EventSource, ExtentPair};
use rtdac::workloads::MsrServer;

/// Matches the daemon's unmatched-issue latency.
const DEFAULT_LATENCY: Duration = Duration::from_micros(100);

fn service_config() -> ServiceConfig {
    let mut config = ServiceConfig::default();
    config.runtime.tenant_budget_bytes = 64 * 1024;
    config.runtime.max_tenants = 4;
    config
}

/// Spawns a daemon on an ephemeral loopback port; returns its address
/// and the serve-loop handle (joined after a `Shutdown` frame).
fn spawn_daemon(config: ServiceConfig) -> (std::net::SocketAddr, thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let handle = thread::spawn(move || serve(listener, config).expect("serve"));
    (addr, handle)
}

fn connect(addr: std::net::SocketAddr) -> WireClient<TcpStream> {
    WireClient::new(TcpStream::connect(addr).expect("connect"))
}

/// A synthesized trace in its blktrace-binary (= wire ingest) form.
fn trace_bytes(server: MsrServer, requests: usize, seed: u64) -> Vec<u8> {
    let trace = server.synthesize(requests, seed);
    let mut bytes = Vec::new();
    blktrace::write_trace(&trace, &mut bytes).expect("encode");
    bytes
}

/// What the daemon must report for `bytes`: the offline reference run
/// with the daemon's own tenant sizing, ties totally ordered the way
/// the live view orders them.
fn oracle_pairs(bytes: &[u8], config: &ServiceConfig) -> Vec<(ExtentPair, u32)> {
    let runtime = TenantRuntime::new(config.runtime.clone());
    let mut source = BlktraceEventSource::new(BufReader::new(bytes), DEFAULT_LATENCY);
    let mut monitor = Monitor::new(config.runtime.monitor.clone());
    let mut analyzer = ReferenceAnalyzer::new(runtime.analyzer_config().clone());
    while let Some(event) = source.next_event().expect("decode") {
        if let Some(txn) = monitor.push(event) {
            analyzer.process(&txn);
        }
    }
    if let Some(txn) = monitor.flush() {
        analyzer.process(&txn);
    }
    let mut pairs = analyzer.frequent_pairs(1);
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    pairs
}

#[test]
fn two_concurrent_tenants_are_bit_exact_and_isolated() {
    let config = service_config();
    let (addr, daemon) = spawn_daemon(config.clone());
    let tenants = [
        ("wdev", trace_bytes(MsrServer::Wdev, 3_000, 11)),
        ("stg", trace_bytes(MsrServer::Stg, 3_000, 12)),
    ];

    // Stream both tenants concurrently, interleaved in small chunks.
    let streamers: Vec<_> = tenants
        .iter()
        .map(|(id, bytes)| {
            let (id, bytes) = (id.to_string(), bytes.clone());
            thread::spawn(move || {
                let mut client = connect(addr);
                client.open(&id).expect("open");
                for chunk in bytes.chunks(4096) {
                    client.ingest(chunk).expect("ingest");
                }
                client.end_ingest().expect("end ingest")
            })
        })
        .collect();
    for streamer in streamers {
        assert!(streamer.join().expect("streamer") > 0);
    }

    // Each tenant's report equals its own oracle — no cross-talk.
    let mut client = connect(addr);
    for (id, bytes) in &tenants {
        let oracle = oracle_pairs(bytes, &config);
        client.open(id).expect("open");
        let top = client.top_k(oracle.len() as u32).expect("top-k");
        assert_eq!(top, oracle, "tenant {id} diverged from its oracle");
        let frequent = client.frequent_pairs(2).expect("frequent");
        let expected: Vec<_> = oracle.iter().copied().filter(|&(_, t)| t >= 2).collect();
        assert_eq!(frequent, expected);
        // Point queries agree with the report.
        if let Some(&(pair, tally)) = oracle.first() {
            assert_eq!(client.pair_tally(pair).expect("point"), Some(tally));
        }
        let stats = client.stats().expect("stats");
        assert!(stats.events > 0 && stats.transactions > 0);
    }
    assert_eq!(client.tenants().expect("list"), ["stg", "wdev"]);
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon exits");
}

#[test]
fn tenant_cap_is_reported_in_band() {
    let mut config = service_config();
    config.runtime.max_tenants = 1;
    let (addr, daemon) = spawn_daemon(config);
    let mut client = connect(addr);
    client.open("only").expect("first tenant admitted");
    match client.open("too-many") {
        Err(WireError::Remote(message)) => assert!(message.contains("limit")),
        other => panic!("expected remote admission error, got {other:?}"),
    }
    // The connection survives the command error.
    client.open("only").expect("rebind");
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon exits");
}

/// Expects the server to answer one `Error` frame and then close.
fn assert_error_then_close(mut stream: TcpStream) {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let frame = read_frame(&mut stream).expect("error frame");
    assert_eq!(frame.kind, FrameKind::Error, "got {frame:?}");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("read to close");
    assert!(rest.is_empty(), "server wrote past the error frame");
}

#[test]
fn malformed_wire_input_drops_only_the_offending_connection() {
    let config = service_config();
    let (addr, daemon) = spawn_daemon(config.clone());

    // A healthy tenant ingests first; it must be unaffected throughout.
    let bytes = trace_bytes(MsrServer::Wdev, 1_000, 3);
    let mut healthy = connect(addr);
    healthy.open("healthy").expect("open");
    healthy.ingest(&bytes).expect("ingest");
    healthy.end_ingest().expect("end");
    let oracle = oracle_pairs(&bytes, &config);

    // Case 1: truncated blktrace record mid-frame — the decoder holds
    // the partial tail across frames, so the truncation only surfaces
    // (and kills the connection) at IngestEnd.
    {
        let mut client = connect(addr);
        client.open("victim").expect("open");
        client
            .ingest(&bytes[..blktrace::RECORD_BYTES + 7])
            .expect("partial record parks in the decoder");
        let mut stream = client.into_inner();
        write_frame(&mut stream, FrameKind::IngestEnd, &[]).expect("send end");
        assert_error_then_close(stream);
    }

    // Case 2: bad frame magic.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut header = Vec::new();
        header.extend_from_slice(&(WIRE_MAGIC ^ 0xdead).to_le_bytes());
        header.push(2);
        header.extend_from_slice(&0u32.to_le_bytes());
        stream.write_all(&header).expect("send garbage");
        assert_error_then_close(stream);
    }

    // Case 3: oversized frame length — rejected before any payload
    // buffering.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut header = Vec::new();
        header.extend_from_slice(&WIRE_MAGIC.to_le_bytes());
        header.push(2);
        header.extend_from_slice(&u32::MAX.to_le_bytes());
        stream.write_all(&header).expect("send oversized");
        assert_error_then_close(stream);
    }

    // Case 4: unknown frame kind.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut header = Vec::new();
        header.extend_from_slice(&WIRE_MAGIC.to_le_bytes());
        header.push(250);
        header.extend_from_slice(&0u32.to_le_bytes());
        stream.write_all(&header).expect("send unknown kind");
        assert_error_then_close(stream);
    }

    // The healthy tenant still answers, bit-exact; the victim tenant's
    // pipeline absorbed a valid prefix (zero full transactions here)
    // and can be re-opened and streamed cleanly.
    let mut client = connect(addr);
    client.open("healthy").expect("reopen");
    assert_eq!(
        client.top_k(oracle.len() as u32).expect("top-k"),
        oracle,
        "healthy tenant was disturbed by another connection's garbage"
    );
    client.open("victim").expect("victim is re-openable");
    client.ingest(&bytes).expect("fresh session ingests");
    client.end_ingest().expect("end");
    assert!(!client.top_k(5).expect("victim answers").is_empty());
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon exits");
}

#[test]
fn queries_without_a_bound_tenant_are_command_errors() {
    let (addr, daemon) = spawn_daemon(service_config());
    let mut client = connect(addr);
    match client.top_k(5) {
        Err(WireError::Remote(message)) => assert!(message.contains("Open")),
        other => panic!("expected remote error, got {other:?}"),
    }
    // Still usable afterwards.
    client.open("t").expect("open");
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon exits");
}
