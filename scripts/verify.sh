#!/usr/bin/env bash
# Tier-1 verification: everything here must pass with no network and an
# empty cargo registry (the workspace is std-only by design; see
# DESIGN.md §6).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ingestion throughput harness (smoke mode, incl. resize gate)"
# Smoke mode: tiny stream, one repetition; write the JSON to a scratch
# path so CI never dirties the committed BENCH_ingest.json. The harness
# exits nonzero when acceptance fails — under --smoke only the
# correctness criteria gate: exact frequent pairs under hot-pair
# splitting, under a scripted mid-stream grow + shrink of the elastic
# stage pools, and under the adaptive controller's own resizes; the
# from_disk sweep's streaming-reader event-exactness (blktrace at
# default and odd chunk sizes, columnar, CSV — all vs the
# materializing oracles) and the columnar <= 0.5x blktrace size
# ceiling; and the admission sweep's correctness half — defaulted
# config bit-exact with explicit Admission::Off, doorkeeper and
# ungated contenders at byte parity, and the doorkeeper actually
# rejecting; and the query_load sweep's correctness half — the live
# view bit-exact with a quiesced snapshot at every sampled epoch
# boundary, zero allocations on the publish and query paths, and
# tables + live-view structures at equal-memory byte parity; and the
# service sweep's correctness half — every tenant in the tenants x
# events/s capacity grid bit-exact against its offline oracle. Timing
# criteria (including adaptive convergence, the
# columnar-decode-outpaces-pipeline gate, the admission sweep's
# equal-memory recall-beats-unfiltered + throughput-holds gate, the
# query_load stage-CPU-retention and epoch-lag gates, and the service
# sweep's aggregate-throughput-retention floor) apply
# in full runs only (cargo run --release -p rtdac-bench --bin
# ingest_throughput) because a tiny stream on a shared CI core
# measures noise. set -e turns that exit into a build failure.
RTDAC_BENCH_OUT="${TMPDIR:-/tmp}/BENCH_ingest_smoke.json" \
    cargo run --release --offline -p rtdac-bench --bin ingest_throughput -- --smoke

echo "==> trace_convert transcoding smoke (synth -> rtdac -> blk -> csv)"
# The streaming transcoder across every format edge, at small scale:
# synthesize a fitted workload as columnar, transcode columnar ->
# blktrace -> CSV, and land back on columnar. Each hop decodes the
# previous hop's writer output, so one pass covers all readers and
# writers; `rtdac stats` on first and last proves the round trip parses.
SMOKE_DIR="${TMPDIR:-/tmp}/rtdac_convert_smoke"
mkdir -p "$SMOKE_DIR"
./target/release/trace_convert synth src2 "$SMOKE_DIR/a.rtdac" --requests 5000 --seed 7
./target/release/trace_convert "$SMOKE_DIR/a.rtdac" "$SMOKE_DIR/b.blk"
./target/release/trace_convert "$SMOKE_DIR/b.blk" "$SMOKE_DIR/c.csv"
./target/release/trace_convert "$SMOKE_DIR/c.csv" "$SMOKE_DIR/d.rtdac"
./target/release/rtdac stats "$SMOKE_DIR/a.rtdac" > /dev/null
./target/release/rtdac stats "$SMOKE_DIR/d.rtdac" > /dev/null
rm -rf "$SMOKE_DIR"

echo "==> offline mining throughput harness (smoke mode)"
# Same contract as above for the FIM engines: under --smoke only the
# correctness criteria gate — generic, dense, and pool-parallel miners
# must return bit-exact FimResults on all three workload shapes, the
# pair kernels identical maps, and the incremental sliding window
# identical counts. Dense-vs-generic timing gates apply in full runs
# only (cargo run --release -p rtdac-bench --bin fim_throughput).
RTDAC_BENCH_OUT="${TMPDIR:-/tmp}/BENCH_fim_smoke.json" \
    cargo run --release --offline -p rtdac-bench --bin fim_throughput -- --smoke

echo "==> concurrent evaluation runner (smoke subset)"
# Reduced experiment subset at small scale: proves the pooled runner,
# the shared ground-truth cache, and every experiment binary's report
# path stay alive. RTDAC_OUT redirects the CSVs so the smoke-scale run
# never overwrites the committed full-scale results/.
RTDAC_OUT="${TMPDIR:-/tmp}/rtdac_smoke_results" \
    cargo run --release --offline -p rtdac-bench --bin exp_all -- --smoke

echo "==> daemon service smoke (rtdacd + two tenants over loopback)"
# End-to-end wire-service check: spawn the daemon on an ephemeral
# loopback port, stream two different fitted traces into two tenants
# concurrently over the framed protocol, then diff each tenant's live
# top-k report against the offline oracle (`rtdacctl oracle` — same
# decode, same budget-derived analyzer sizing, no daemon involved).
# Bit-exact output proves the TCP framing, the blktrace wire codec,
# the tenant runtime, and the live-view query path end to end; the
# Shutdown frame then drains every tenant and the daemon must exit 0.
SVC_DIR="${TMPDIR:-/tmp}/rtdac_service_smoke"
rm -rf "$SVC_DIR"
mkdir -p "$SVC_DIR"
./target/release/rtdac synth wdev "$SVC_DIR/wdev.blk" --requests 4000 --seed 11 > /dev/null
./target/release/rtdac synth stg "$SVC_DIR/stg.blk" --requests 4000 --seed 12 > /dev/null
./target/release/rtdacd --port-file "$SVC_DIR/port" > /dev/null &
RTDACD_PID=$!
trap 'kill "$RTDACD_PID" 2> /dev/null || true' EXIT
for _ in $(seq 1 100); do
    [ -s "$SVC_DIR/port" ] && break
    sleep 0.1
done
[ -s "$SVC_DIR/port" ] || { echo "rtdacd never published its port" >&2; exit 1; }
ADDR="127.0.0.1:$(tr -d '[:space:]' < "$SVC_DIR/port")"
./target/release/rtdacctl --addr "$ADDR" stream wdev "$SVC_DIR/wdev.blk" > /dev/null &
STREAM_WDEV=$!
./target/release/rtdacctl --addr "$ADDR" stream stg "$SVC_DIR/stg.blk" > /dev/null &
STREAM_STG=$!
wait "$STREAM_WDEV"
wait "$STREAM_STG"
for TENANT in wdev stg; do
    ./target/release/rtdacctl --addr "$ADDR" top "$TENANT" --k 20 > "$SVC_DIR/$TENANT.live"
    ./target/release/rtdacctl oracle "$SVC_DIR/$TENANT.blk" --k 20 > "$SVC_DIR/$TENANT.oracle"
    diff "$SVC_DIR/$TENANT.live" "$SVC_DIR/$TENANT.oracle"
done
./target/release/rtdacctl --addr "$ADDR" shutdown > /dev/null
wait "$RTDACD_PID"
trap - EXIT
rm -rf "$SVC_DIR"

echo "==> verify OK"
