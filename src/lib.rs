//! # rtdac — Real-Time Characterization of Data Access Correlations
//!
//! A from-scratch Rust reproduction of *Real-Time Characterization of
//! Data Access Correlations* (Harris, Marzullo & Altiparmak, ISPASS
//! 2021): an online framework that watches block-layer I/O, groups
//! requests into transaction windows, and maintains a bounded-memory
//! two-tier synopsis of frequently correlated extents — plus every
//! substrate the paper's evaluation rests on (offline FIM baselines,
//! workload generators, a replay testbed, and the SSD simulators behind
//! its automatic-optimization scenarios).
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here as a module.
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`types`] | `rtdac-types` | extents, requests, transactions, traces |
//! | [`synopsis`] | `rtdac-synopsis` | the two-tier tables + online analyzer (the paper's contribution) |
//! | [`monitor`] | `rtdac-monitor` | transaction windowing, dedup, PID filtering |
//! | [`fim`] | `rtdac-fim` | apriori / eclat / fp-growth / streaming baselines |
//! | [`workloads`] | `rtdac-workloads` | synthetic + MSR-like generators |
//! | [`device`] | `rtdac-device` | SSD/HDD latency models, trace replay |
//! | [`ssdsim`] | `rtdac-ssdsim` | FTL, multi-stream GC, parallel units (§V) |
//! | [`cache`] | `rtdac-cache` | LRU/LFU/ARC caches + correlation prefetching (§V) |
//! | [`sketch`] | `rtdac-sketch` | Count-Min / Space-Saving sketch synopses (comparison family) |
//! | [`metrics`] | `rtdac-metrics` | CDFs, optimal curves, representability, heat maps, drift |
//!
//! # Examples
//!
//! The complete paper pipeline — generate, replay, monitor, analyze:
//!
//! ```
//! use rtdac::device::{replay, NvmeSsdModel, ReplayMode};
//! use rtdac::monitor::{Monitor, MonitorConfig};
//! use rtdac::synopsis::{AnalyzerConfig, OnlineAnalyzer};
//! use rtdac::workloads::{SyntheticKind, SyntheticSpec};
//!
//! // 1. A workload with four constructed one-to-one correlations.
//! let workload = SyntheticSpec::new(SyntheticKind::OneToOne)
//!     .events(300)
//!     .seed(7)
//!     .generate();
//!
//! // 2. Replay it against a simulated NVMe SSD to get issue events.
//! let mut ssd = NvmeSsdModel::new(7);
//! let replayed = replay(&workload.trace, &mut ssd,
//!                       ReplayMode::Timed { speedup: 1.0 });
//!
//! // 3. Group events into transactions (dynamic 2× latency window).
//! let txns = Monitor::new(MonitorConfig::default())
//!     .into_transactions(replayed.events);
//!
//! // 4. Run the online analysis and ask for frequent correlations.
//! let mut analyzer = OnlineAnalyzer::new(AnalyzerConfig::with_capacity(4096));
//! for txn in &txns {
//!     analyzer.process(txn);
//! }
//! let frequent = analyzer.frequent_pairs(10);
//! assert!(!frequent.is_empty());
//! ```

pub use rtdac_cache as cache;
pub use rtdac_device as device;
pub use rtdac_fim as fim;
pub use rtdac_metrics as metrics;
pub use rtdac_monitor as monitor;
pub use rtdac_sketch as sketch;
pub use rtdac_ssdsim as ssdsim;
pub use rtdac_synopsis as synopsis;
pub use rtdac_types as types;
pub use rtdac_workloads as workloads;
