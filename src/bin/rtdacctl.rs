//! `rtdacctl` — client CLI for the `rtdacd` daemon.
//!
//! ```text
//! rtdacctl --addr HOST:PORT stream <tenant> <trace.blk>
//! rtdacctl --addr HOST:PORT top <tenant> [--k N]
//! rtdacctl --addr HOST:PORT frequent <tenant> [--min N]
//! rtdacctl --addr HOST:PORT pair <tenant> <start1> <len1> <start2> <len2>
//! rtdacctl --addr HOST:PORT stats <tenant>
//! rtdacctl --addr HOST:PORT tenants
//! rtdacctl --addr HOST:PORT evict <tenant>
//! rtdacctl --addr HOST:PORT shutdown
//! rtdacctl oracle <trace.blk> [--k N] [--budget BYTES] [--doorkeeper BYTES]
//! ```
//!
//! `stream` sends a blktrace-binary trace as ingest frames (the trace
//! format is the wire format — no re-encoding) and ends the ingest
//! session, so subsequent queries see every event. `oracle` runs the
//! same trace through the offline reference analyzer with the daemon's
//! default tenant sizing and prints the same top-k report — `diff`
//! against `top` is the end-to-end bit-exactness check.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

use rtdac::monitor::{BlktraceEventSource, Monitor, TenantRuntime, TenantRuntimeConfig};
use rtdac::synopsis::ReferenceAnalyzer;
use rtdac::types::wire::{WireClient, WireStats};
use rtdac::types::{EventSource, Extent, ExtentPair};

/// Latency for unmatched blktrace issues, matching the daemon.
const DEFAULT_LATENCY: Duration = Duration::from_micros(100);

const USAGE: &str = "usage:
  rtdacctl --addr HOST:PORT stream <tenant> <trace.blk>
  rtdacctl --addr HOST:PORT top <tenant> [--k N]
  rtdacctl --addr HOST:PORT frequent <tenant> [--min N]
  rtdacctl --addr HOST:PORT pair <tenant> <start1> <len1> <start2> <len2>
  rtdacctl --addr HOST:PORT stats <tenant>
  rtdacctl --addr HOST:PORT tenants
  rtdacctl --addr HOST:PORT evict <tenant>
  rtdacctl --addr HOST:PORT shutdown
  rtdacctl oracle <trace.blk> [--k N] [--budget BYTES] [--doorkeeper BYTES]

`oracle` needs no daemon: it replays the trace through the offline
reference analyzer with the daemon's default tenant sizing and prints
the report `top` would give for the same trace.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn parse_flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad value `{v}` for --{name}")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut positional = Vec::new();
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.insert(name.to_string(), value.clone());
        } else {
            positional.push(arg.clone());
        }
    }
    let command = positional.first().map(String::as_str);
    if command == Some("oracle") {
        return oracle(
            positional.get(1).ok_or("oracle needs a trace path")?,
            &flags,
        );
    }

    let addr = flags
        .get("addr")
        .ok_or("--addr HOST:PORT is required (see rtdacd's stdout)")?;
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut client = WireClient::new(stream);
    let tenant_arg = |index: usize| -> Result<&String, String> {
        positional
            .get(index)
            .ok_or_else(|| "command needs a tenant id".to_string())
    };
    match command {
        None => Err("no command given".to_string()),
        Some("stream") => {
            let tenant = tenant_arg(1)?;
            let path = positional.get(2).ok_or("stream needs a trace path")?;
            let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            client.open(tenant).map_err(|e| e.to_string())?;
            client.ingest(&bytes).map_err(|e| e.to_string())?;
            let events = client.end_ingest().map_err(|e| e.to_string())?;
            println!("streamed {events} events to tenant {tenant}");
            Ok(())
        }
        Some("top") => {
            let tenant = tenant_arg(1)?;
            let k: u32 = parse_flag(&flags, "k", 20)?;
            client.open(tenant).map_err(|e| e.to_string())?;
            print_pairs(&client.top_k(k).map_err(|e| e.to_string())?);
            Ok(())
        }
        Some("frequent") => {
            let tenant = tenant_arg(1)?;
            let min: u32 = parse_flag(&flags, "min", 5)?;
            client.open(tenant).map_err(|e| e.to_string())?;
            print_pairs(&client.frequent_pairs(min).map_err(|e| e.to_string())?);
            Ok(())
        }
        Some("pair") => {
            let tenant = tenant_arg(1)?;
            let nums: Vec<u64> = positional[2..]
                .iter()
                .map(|s| s.parse().map_err(|_| format!("bad number `{s}`")))
                .collect::<Result<_, _>>()?;
            let [s1, l1, s2, l2] = nums[..] else {
                return Err("pair needs <start1> <len1> <start2> <len2>".to_string());
            };
            let extent = |start: u64, len: u64| {
                Extent::new(start, u32::try_from(len).map_err(|_| "length too large")?)
                    .map_err(|e| e.to_string())
            };
            let pair =
                ExtentPair::new(extent(s1, l1)?, extent(s2, l2)?).map_err(|e| e.to_string())?;
            client.open(tenant).map_err(|e| e.to_string())?;
            match client.pair_tally(pair).map_err(|e| e.to_string())? {
                Some(tally) => println!("{pair}\t{tally}"),
                None => println!("{pair}\tuntracked"),
            }
            Ok(())
        }
        Some("stats") => {
            let tenant = tenant_arg(1)?;
            client.open(tenant).map_err(|e| e.to_string())?;
            let WireStats {
                events,
                transactions,
                batches,
                view_epoch,
                parked,
            } = client.stats().map_err(|e| e.to_string())?;
            println!(
                "tenant {tenant}: {events} events, {transactions} transactions, \
                 {batches} batches, view at epoch {view_epoch}{}",
                if parked { ", parked" } else { "" }
            );
            Ok(())
        }
        Some("tenants") => {
            for id in client.tenants().map_err(|e| e.to_string())? {
                println!("{id}");
            }
            Ok(())
        }
        Some("evict") => {
            let tenant = tenant_arg(1)?;
            client.evict(tenant).map_err(|e| e.to_string())?;
            println!("evicted {tenant}");
            Ok(())
        }
        Some("shutdown") => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("daemon stopping");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

fn print_pairs(pairs: &[(ExtentPair, u32)]) {
    for (pair, tally) in pairs {
        println!("{pair}\t{tally}");
    }
}

/// Offline reference run with the daemon's tenant sizing: the same
/// event decode (blktrace D/C pairing, same default latency), the same
/// monitor windowing, the same analyzer config derivation — so its
/// report is the ground truth a daemon-side `top` must equal.
fn oracle(path: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    let k: usize = parse_flag(flags, "k", 20)?;
    let runtime = TenantRuntime::new(TenantRuntimeConfig {
        tenant_budget_bytes: parse_flag(flags, "budget", 512 * 1024usize)?,
        doorkeeper_bytes: parse_flag(flags, "doorkeeper", 0usize)?,
        ..TenantRuntimeConfig::default()
    });
    let config = runtime.analyzer_config().clone();
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut source = BlktraceEventSource::new(BufReader::new(file), DEFAULT_LATENCY);
    let mut monitor = Monitor::default();
    let mut analyzer = ReferenceAnalyzer::new(config);
    while let Some(event) = source
        .next_event()
        .map_err(|e| format!("cannot read {path}: {e}"))?
    {
        if let Some(txn) = monitor.push(event) {
            analyzer.process(&txn);
        }
    }
    if let Some(txn) = monitor.flush() {
        analyzer.process(&txn);
    }
    // The daemon's live view totally orders ties (tally desc, pair
    // asc); the reference leaves ties in insertion order. Re-sort so
    // the reports are diffable.
    let mut pairs = analyzer.frequent_pairs(1);
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    pairs.truncate(k);
    print_pairs(&pairs);
    Ok(())
}
