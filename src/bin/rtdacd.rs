//! `rtdacd` — the multi-tenant correlation-monitoring daemon.
//!
//! Binds a TCP listener and serves the framed wire protocol
//! (`rtdac::types::wire`): each connection binds to a tenant, streams
//! blktrace-codec bytes as ingest, and queries the tenant's live view
//! without quiescing its pipeline. One pipeline per tenant; admission
//! is capped and every tenant's analyzer is sized from the same byte
//! budget. Idle tenants are parked (worker threads joined, tables
//! snapshotted) and resume transparently on their next event.
//!
//! ```text
//! rtdacd [--addr HOST:PORT] [--port-file PATH] [--max-tenants N]
//!        [--budget BYTES] [--doorkeeper BYTES] [--shards N]
//!        [--idle-park-ms MS]
//! ```
//!
//! `--addr 127.0.0.1:0` (the default) picks an ephemeral port; the
//! bound address is printed on stdout and, with `--port-file`, the
//! port alone is written there for scripts to pick up. Stop the
//! daemon with `rtdacctl shutdown` (every tenant is drained cleanly).

use std::collections::HashMap;
use std::net::TcpListener;
use std::process::ExitCode;
use std::time::Duration;

use rtdac::monitor::{serve, PipelineConfig, ServiceConfig};

const USAGE: &str = "usage:
  rtdacd [--addr HOST:PORT] [--port-file PATH] [--max-tenants N]
         [--budget BYTES] [--doorkeeper BYTES] [--shards N]
         [--idle-park-ms MS]

defaults: --addr 127.0.0.1:0 (ephemeral port, printed on stdout),
--max-tenants 64, --budget 524288 bytes per tenant, --doorkeeper 0,
--shards 1, --idle-park-ms 30000.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn parse_flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad value `{v}` for --{name}")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let name = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument `{arg}`"))?;
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    for name in flags.keys() {
        if ![
            "addr",
            "port-file",
            "max-tenants",
            "budget",
            "doorkeeper",
            "shards",
            "idle-park-ms",
        ]
        .contains(&name.as_str())
        {
            return Err(format!("unknown flag --{name}"));
        }
    }

    let addr = flags
        .get("addr")
        .map_or("127.0.0.1:0", String::as_str)
        .to_string();
    let mut config = ServiceConfig::default();
    config.runtime.max_tenants = parse_flag(&flags, "max-tenants", 64usize)?;
    config.runtime.tenant_budget_bytes = parse_flag(&flags, "budget", 512 * 1024usize)?;
    config.runtime.doorkeeper_bytes = parse_flag(&flags, "doorkeeper", 0usize)?;
    let shards: usize = parse_flag(&flags, "shards", 1)?;
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    config.runtime.pipeline = PipelineConfig::with_shards(shards).publish_interval(4);
    config.runtime.idle_park_after =
        Duration::from_millis(parse_flag(&flags, "idle-park-ms", 30_000u64)?);

    let listener = TcpListener::bind(&addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    println!(
        "rtdacd listening on {local} (max {} tenants, {} KiB/tenant)",
        config.runtime.max_tenants,
        config.runtime.tenant_budget_bytes / 1024
    );
    if let Some(path) = flags.get("port-file") {
        std::fs::write(path, format!("{}\n", local.port()))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    serve(listener, config).map_err(|e| format!("serve failed: {e}"))
}
