//! `rtdac` — command-line front end to the framework.
//!
//! Point it at a block trace (MSR Cambridge CSV or the blktrace-style
//! binary this workspace writes) and it runs the paper's pipeline:
//! transaction windowing, online analysis, and frequent-correlation
//! reporting; or offline mining, trace statistics, format conversion and
//! workload synthesis.
//!
//! ```text
//! rtdac stats    <trace>
//! rtdac analyze  <trace> [--support N] [--capacity C] [--window US|dynamic]
//!                        [--limit N] [--top K] [--ops read|write|all]
//! rtdac mine     <trace> [--support N] [--algorithm eclat|apriori|fpgrowth]
//! rtdac convert  <in> <out>
//! rtdac synth    <wdev|src2|rsrch|stg|hm|one-to-one|one-to-many|many-to-many>
//!                <out> [--requests N] [--seed S]
//! ```
//!
//! Trace formats are chosen by extension: `.csv` = MSR Cambridge CSV,
//! `.rtdac` = the columnar format, `.blk`/`.blktrace` = the binary
//! blktrace-style stream. Any other extension is an error — a silent
//! fallback would misparse a mistyped path as blktrace bytes.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;
use std::time::Duration;

use rtdac::fim::{count_pairs, Apriori, Eclat, FpGrowth, TransactionDb};
use rtdac::monitor::{blktrace, Monitor, MonitorConfig, WindowPolicy};
use rtdac::synopsis::{AnalyzerConfig, OnlineAnalyzer};
use rtdac::types::{read_trace_columnar, write_trace_columnar, IoEvent, IoOp, Trace};
use rtdac::workloads::{MsrServer, SyntheticKind, SyntheticSpec};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  rtdac stats    <trace>
  rtdac analyze  <trace> [--support N] [--capacity C] [--window US|dynamic]
                         [--limit N] [--top K] [--ops read|write|all]
  rtdac mine     <trace> [--support N] [--algorithm eclat|apriori|fpgrowth]
  rtdac convert  <in> <out>
  rtdac synth    <wdev|src2|rsrch|stg|hm|one-to-one|one-to-many|many-to-many>
                 <out> [--requests N] [--seed S]

trace format by extension: .csv = MSR Cambridge CSV, .rtdac = the
columnar format, .blk/.blktrace = the blktrace-style binary stream
written by `rtdac convert`/`rtdac synth`.";

/// The error for a path whose extension maps to no known format.
fn unknown_extension(path: &str) -> String {
    format!(
        "unknown trace extension for `{path}` \
         (expected .csv, .rtdac, or .blk/.blktrace)"
    )
}

fn is_blktrace(path: &str) -> bool {
    path.ends_with(".blk") || path.ends_with(".blktrace")
}

fn run(args: &[String]) -> Result<(), String> {
    let mut positional = Vec::new();
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.insert(name.to_string(), value.clone());
        } else {
            positional.push(arg.clone());
        }
    }
    let command = positional
        .first()
        .ok_or_else(|| "no command given".to_string())?;

    match command.as_str() {
        "stats" => stats(positional.get(1).ok_or("stats needs a trace path")?),
        "analyze" => analyze(
            positional.get(1).ok_or("analyze needs a trace path")?,
            &flags,
        ),
        "mine" => mine(positional.get(1).ok_or("mine needs a trace path")?, &flags),
        "convert" => convert(
            positional.get(1).ok_or("convert needs an input path")?,
            positional.get(2).ok_or("convert needs an output path")?,
        ),
        "synth" => synth(
            positional.get(1).ok_or("synth needs a workload name")?,
            positional.get(2).ok_or("synth needs an output path")?,
            &flags,
        ),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn parse_flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad value `{v}` for --{name}")),
    }
}

/// Loads a trace by extension; unknown extensions are an error before
/// the file is even opened.
fn load_trace(path: &str) -> Result<Trace, String> {
    if !path.ends_with(".csv") && !path.ends_with(".rtdac") && !is_blktrace(path) {
        return Err(unknown_extension(path));
    }
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    if path.ends_with(".csv") {
        Trace::read_msr_csv(path, BufReader::new(file)).map_err(|e| e.to_string())
    } else if path.ends_with(".rtdac") {
        read_trace_columnar(path, BufReader::new(file))
            .map_err(|e| format!("cannot parse {path}: {e}"))
    } else {
        let events = blktrace::read_events(BufReader::new(file), Duration::from_micros(100))
            .map_err(|e| format!("cannot parse {path}: {e}"))?;
        Ok(blktrace::events_to_trace(path, &events))
    }
}

/// Issue events straight from the trace (timestamps and recorded
/// latencies as captured).
fn trace_events(trace: &Trace) -> Vec<IoEvent> {
    trace
        .iter()
        .map(|r| {
            IoEvent::new(
                r.time,
                r.pid,
                r.op,
                r.extent,
                r.latency.unwrap_or(Duration::from_micros(100)),
            )
        })
        .collect()
}

fn stats(path: &str) -> Result<(), String> {
    let trace = load_trace(path)?;
    let s = trace.stats();
    println!("trace:                {path}");
    println!(
        "requests:             {} ({} reads, {} writes)",
        s.requests, s.reads, s.writes
    );
    println!("total data accessed:  {:.3} GB", s.total_gb());
    println!("unique data accessed: {:.3} GB", s.unique_gb());
    println!("reuse ratio:          {:.2}x", s.reuse_ratio());
    println!(
        "interarrival < 100us: {:.1}%",
        s.fast_interarrival_fraction * 100.0
    );
    match s.mean_recorded_latency {
        Some(latency) => println!("mean recorded latency: {latency:?}"),
        None => println!("mean recorded latency: (none recorded)"),
    }
    println!("duration:             {:.3} s", s.duration.as_secs_f64());
    println!("number space:         {} blocks", s.max_block);
    Ok(())
}

fn monitor_config(flags: &HashMap<String, String>) -> Result<MonitorConfig, String> {
    let window = match flags.get("window").map(String::as_str) {
        None | Some("dynamic") => WindowPolicy::paper_dynamic(),
        Some(us) => WindowPolicy::Static(Duration::from_micros(
            us.parse().map_err(|_| format!("bad window `{us}`"))?,
        )),
    };
    let limit: usize = parse_flag(flags, "limit", 8)?;
    Ok(MonitorConfig::new(window).transaction_limit(limit))
}

fn analyze(path: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    let trace = load_trace(path)?;
    let support: u32 = parse_flag(flags, "support", 5)?;
    let capacity: usize = parse_flag(flags, "capacity", 16 * 1024)?;
    let top: usize = parse_flag(flags, "top", 20)?;
    let op_filter = match flags.get("ops").map(String::as_str) {
        None | Some("all") => None,
        Some("read") => Some(IoOp::Read),
        Some("write") => Some(IoOp::Write),
        Some(other) => return Err(format!("bad value `{other}` for --ops")),
    };

    let mut monitor = Monitor::new(monitor_config(flags)?);
    let mut analyzer =
        OnlineAnalyzer::new(AnalyzerConfig::with_capacity(capacity).op_filter(op_filter));
    for event in trace_events(&trace) {
        if let Some(txn) = monitor.push(event) {
            analyzer.process(&txn);
        }
    }
    if let Some(txn) = monitor.flush() {
        analyzer.process(&txn);
    }

    let mstats = monitor.stats();
    println!(
        "monitored {} events into {} transactions (window now {:?}, {} limit splits)",
        mstats.events,
        mstats.transactions,
        monitor.current_window(),
        mstats.limit_splits
    );
    println!(
        "synopsis: {} items, {} pairs resident; {:.2} MB under the paper's model",
        analyzer.item_table().len(),
        analyzer.correlation_table().len(),
        analyzer.memory_bytes() as f64 / 1e6
    );
    let frequent = analyzer.frequent_pairs(support);
    println!(
        "\n{} correlations with support >= {support}; top {}:",
        frequent.len(),
        top.min(frequent.len())
    );
    for (pair, tally) in frequent.iter().take(top) {
        println!("  {tally:>8}x  {pair}");
    }
    Ok(())
}

fn mine(path: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    let trace = load_trace(path)?;
    let support: u32 = parse_flag(flags, "support", 5)?;
    let algorithm = flags
        .get("algorithm")
        .cloned()
        .unwrap_or_else(|| "eclat".to_string());

    let monitor = Monitor::new(monitor_config(flags)?);
    let txns = monitor.into_transactions(trace_events(&trace));
    println!(
        "{} transactions formed; mining with {algorithm} at support {support}",
        txns.len()
    );

    let db = TransactionDb::from_transactions(&txns);
    let result = match algorithm.as_str() {
        "eclat" => Eclat::new(support).max_len(2).mine(&db),
        "apriori" => Apriori::new(support).max_len(2).mine(&db),
        "fpgrowth" => FpGrowth::new(support).max_len(2).mine(&db),
        other => return Err(format!("unknown algorithm `{other}`")),
    };
    let total_pairs = count_pairs(&txns).len();
    let frequent: Vec<_> = result.of_len(2).collect();
    println!(
        "{} unique pairs total, {} frequent at support {support}:",
        total_pairs,
        frequent.len()
    );
    let mut sorted = frequent;
    sorted.sort_by_key(|(_, support)| std::cmp::Reverse(*support));
    for (set, sup) in sorted.iter().take(20) {
        println!("  {sup:>8}x  {} ~ {}", set[0], set[1]);
    }
    Ok(())
}

/// Writes a trace by extension (see [`load_trace`] for the mapping);
/// an unknown extension errors before the output file is created.
fn save_trace(trace: &Trace, output: &str) -> Result<(), String> {
    use std::io::Write;
    if !output.ends_with(".csv") && !output.ends_with(".rtdac") && !is_blktrace(output) {
        return Err(unknown_extension(output));
    }
    let file = File::create(output).map_err(|e| format!("cannot create {output}: {e}"))?;
    let mut writer = BufWriter::new(file);
    if output.ends_with(".csv") {
        trace
            .write_msr_csv(&mut writer)
            .map_err(|e| e.to_string())?;
    } else if output.ends_with(".rtdac") {
        write_trace_columnar(trace, &mut writer).map_err(|e| e.to_string())?;
    } else {
        blktrace::write_trace(trace, &mut writer).map_err(|e| e.to_string())?;
    }
    writer.flush().map_err(|e| e.to_string())
}

fn convert(input: &str, output: &str) -> Result<(), String> {
    let trace = load_trace(input)?;
    save_trace(&trace, output)?;
    println!("converted {} requests: {input} -> {output}", trace.len());
    Ok(())
}

fn synth(name: &str, output: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    let requests: usize = parse_flag(flags, "requests", 50_000)?;
    let seed: u64 = parse_flag(flags, "seed", 7)?;
    let trace = match name {
        "wdev" => MsrServer::Wdev.synthesize(requests, seed),
        "src2" => MsrServer::Src2.synthesize(requests, seed),
        "rsrch" => MsrServer::Rsrch.synthesize(requests, seed),
        "stg" => MsrServer::Stg.synthesize(requests, seed),
        "hm" => MsrServer::Hm.synthesize(requests, seed),
        "one-to-one" | "one-to-many" | "many-to-many" => {
            let kind = match name {
                "one-to-one" => SyntheticKind::OneToOne,
                "one-to-many" => SyntheticKind::OneToMany,
                _ => SyntheticKind::ManyToMany,
            };
            // `requests` governs correlated events here; the trace adds
            // noise on top.
            SyntheticSpec::new(kind)
                .events(requests)
                .seed(seed)
                .generate()
                .trace
        }
        other => return Err(format!("unknown workload `{other}`")),
    };
    save_trace(&trace, output)?;
    println!("wrote {} requests of `{name}` to {output}", trace.len());
    Ok(())
}
