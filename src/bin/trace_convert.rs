//! `trace_convert` — streaming transcoder between the workspace's three
//! trace formats, built on the zero-copy readers so multi-GB inputs
//! never materialize in memory (except when writing the blktrace binary
//! format, whose writer performs a global record sort).
//!
//! ```text
//! trace_convert <in> <out>
//! trace_convert synth <wdev|src2|rsrch|stg|hm|one-to-one|one-to-many|many-to-many>
//!                     <out> [--requests N] [--seed S]
//! trace_convert fit   <in> <out> [--requests N] [--seed S]
//! ```
//!
//! Formats are chosen by extension: `.csv` = MSR Cambridge CSV,
//! `.rtdac` = the columnar format, `.blk`/`.blktrace` = the
//! blktrace-style binary stream; any other extension is an error (a
//! silent fallback would misparse a mistyped path as blktrace bytes).
//! Every conversion prints a size report: records, bytes per record on
//! each side, and the compression ratio against the blktrace-binary
//! equivalent of the same stream.

use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;
use std::time::Duration;

use rtdac::monitor::{blktrace, BlktraceEventSource};
use rtdac::types::{
    write_msr_csv_line, ColumnarReader, ColumnarWriter, EventSource, IoRequest, MsrCsvReader,
    RequestSource, Trace, TraceSource,
};
use rtdac::workloads::{MsrServer, SyntheticKind, SyntheticSpec, WorkloadFit};

/// Latency assigned to blktrace issues with no matching completion,
/// mirroring `rtdac`'s loader.
const DEFAULT_LATENCY: Duration = Duration::from_micros(100);

/// Blktrace-binary cost of one request: a 40-byte issue record plus a
/// 40-byte completion when a latency is recorded.
const ISSUE_BYTES: u64 = blktrace::RECORD_BYTES as u64;

const USAGE: &str = "usage:
  trace_convert <in> <out>
  trace_convert synth <wdev|src2|rsrch|stg|hm|one-to-one|one-to-many|many-to-many>
                      <out> [--requests N] [--seed S]
  trace_convert fit   <in> <out> [--requests N] [--seed S]

trace format by extension: .csv = MSR Cambridge CSV, .rtdac = the
columnar format, .blk/.blktrace = the binary blktrace-style stream.
`synth` writes a synthetic workload; `fit` learns a generator from an
existing trace and writes a lookalike stream of any length.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut positional = Vec::new();
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.insert(name.to_string(), value.clone());
        } else {
            positional.push(arg.clone());
        }
    }

    match positional.first().map(String::as_str) {
        None => Err("no input given".to_string()),
        Some("synth") => synth(
            positional.get(1).ok_or("synth needs a workload name")?,
            positional.get(2).ok_or("synth needs an output path")?,
            &flags,
        ),
        Some("fit") => fit(
            positional.get(1).ok_or("fit needs an input path")?,
            positional.get(2).ok_or("fit needs an output path")?,
            &flags,
        ),
        Some(input) => convert(
            input,
            positional.get(1).ok_or("convert needs an output path")?,
        ),
    }
}

fn parse_flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad value `{v}` for --{name}")),
    }
}

/// The three on-disk formats, chosen by extension.
#[derive(Copy, Clone, PartialEq)]
enum Format {
    MsrCsv,
    Columnar,
    Blktrace,
}

impl Format {
    /// Detects a path's format from its extension; unknown extensions
    /// are an error rather than a silent blktrace fallback.
    fn of(path: &str) -> Result<Format, String> {
        if path.ends_with(".csv") {
            Ok(Format::MsrCsv)
        } else if path.ends_with(".rtdac") {
            Ok(Format::Columnar)
        } else if path.ends_with(".blk") || path.ends_with(".blktrace") {
            Ok(Format::Blktrace)
        } else {
            Err(format!(
                "unknown trace extension for `{path}` \
                 (expected .csv, .rtdac, or .blk/.blktrace)"
            ))
        }
    }

    fn name(self) -> &'static str {
        match self {
            Format::MsrCsv => "msr-csv",
            Format::Columnar => "columnar",
            Format::Blktrace => "blktrace",
        }
    }
}

/// Adapts the streaming blktrace event source (issue/complete pairing
/// and all) into a request stream: each issue event becomes a request
/// with its recovered latency recorded.
struct BlktraceRequests<R: std::io::Read>(BlktraceEventSource<R>);

impl<R: std::io::Read> RequestSource for BlktraceRequests<R> {
    fn next_request(&mut self) -> std::io::Result<Option<IoRequest>> {
        Ok(self.0.next_event()?.map(|event| {
            IoRequest::new(event.timestamp, event.pid, event.op, event.extent)
                .with_latency(event.latency)
        }))
    }
}

/// Opens `path` as a pull-based request stream in its extension's
/// format.
fn open_source(path: &str) -> Result<Box<dyn RequestSource>, String> {
    let format = Format::of(path)?;
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let reader = BufReader::new(file);
    Ok(match format {
        Format::MsrCsv => Box::new(MsrCsvReader::new(reader)),
        Format::Columnar => Box::new(ColumnarReader::new(reader)),
        Format::Blktrace => Box::new(BlktraceRequests(BlktraceEventSource::new(
            reader,
            DEFAULT_LATENCY,
        ))),
    })
}

/// Drains `source` into `output`, streaming for CSV and columnar sinks;
/// the blktrace sink materializes a [`Trace`] because its writer sorts
/// issue and completion records globally by time. Returns
/// `(records, records_with_latency)`.
fn write_stream(
    source: &mut dyn RequestSource,
    output: &str,
    name: &str,
) -> Result<(u64, u64), String> {
    let format = Format::of(output)?;
    let file = File::create(output).map_err(|e| format!("cannot create {output}: {e}"))?;
    let mut writer = BufWriter::new(file);
    let mut records = 0u64;
    let mut with_latency = 0u64;
    let fail = |e: std::io::Error| format!("cannot write {output}: {e}");
    let read_fail = |e: std::io::Error| format!("cannot read input: {e}");
    match format {
        Format::Columnar => {
            let mut columnar = ColumnarWriter::new(writer);
            while let Some(request) = source.next_request().map_err(read_fail)? {
                records += 1;
                with_latency += u64::from(request.latency.is_some());
                columnar.push(&request).map_err(fail)?;
            }
            let (mut writer, _) = columnar.finish().map_err(fail)?;
            writer.flush().map_err(fail)?;
        }
        Format::MsrCsv => {
            while let Some(request) = source.next_request().map_err(read_fail)? {
                records += 1;
                with_latency += u64::from(request.latency.is_some());
                write_msr_csv_line(&mut writer, name, &request).map_err(fail)?;
            }
            writer.flush().map_err(fail)?;
        }
        Format::Blktrace => {
            let trace = source.collect_trace_dyn(name).map_err(read_fail)?;
            records = trace.len() as u64;
            with_latency = trace.iter().filter(|r| r.latency.is_some()).count() as u64;
            blktrace::write_trace(&trace, &mut writer).map_err(fail)?;
            writer.flush().map_err(fail)?;
        }
    }
    Ok((records, with_latency))
}

/// Object-safe `collect_trace` (the trait method requires `Sized`).
trait CollectDyn {
    fn collect_trace_dyn(&mut self, name: &str) -> std::io::Result<Trace>;
}

impl CollectDyn for dyn RequestSource + '_ {
    fn collect_trace_dyn(&mut self, name: &str) -> std::io::Result<Trace> {
        let mut trace = Trace::new(name);
        while let Some(request) = self.next_request()? {
            trace.push(request);
        }
        Ok(trace)
    }
}

fn file_len(path: &str) -> Result<u64, String> {
    fs::metadata(path)
        .map(|m| m.len())
        .map_err(|e| format!("cannot stat {path}: {e}"))
}

fn megabytes(bytes: u64) -> f64 {
    bytes as f64 / 1e6
}

/// Format name for a path already validated by [`Format::of`].
fn format_name(path: &str) -> &'static str {
    Format::of(path).map(Format::name).unwrap_or("unknown")
}

/// Prints the size report every command ends with.
fn report(records: u64, with_latency: u64, input: Option<(&str, u64)>, output: &str) {
    let out_bytes = fs::metadata(output).map(|m| m.len()).unwrap_or(0);
    let per = |bytes: u64| bytes as f64 / records.max(1) as f64;
    if let Some((path, bytes)) = input {
        println!(
            "transcoded {records} requests: {path} ({:.2} MB, {}) -> {output} ({:.2} MB, {})",
            megabytes(bytes),
            format_name(path),
            megabytes(out_bytes),
            format_name(output),
        );
        println!(
            "  bytes/request: {:.2} in, {:.2} out; compression vs input {:.2}x",
            per(bytes),
            per(out_bytes),
            bytes as f64 / out_bytes.max(1) as f64
        );
    } else {
        println!(
            "wrote {records} requests to {output} ({:.2} MB, {}; {:.2} bytes/request)",
            megabytes(out_bytes),
            format_name(output),
            per(out_bytes),
        );
    }
    // The paper's capture format is the blktrace binary stream: one
    // 40-byte issue plus a 40-byte completion per measured request.
    let blk_equiv = records * ISSUE_BYTES + with_latency * ISSUE_BYTES;
    println!(
        "  blktrace-equivalent: {:.2} MB; this file is {:.2}x its size",
        megabytes(blk_equiv),
        out_bytes as f64 / blk_equiv.max(1) as f64
    );
}

fn stem(path: &str) -> &str {
    std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("trace")
}

fn convert(input: &str, output: &str) -> Result<(), String> {
    // Validate both extensions before touching the filesystem, so a
    // mistyped path fails on the actual mistake.
    Format::of(input)?;
    Format::of(output)?;
    let in_bytes = file_len(input)?;
    let mut source = open_source(input)?;
    let (records, with_latency) = write_stream(source.as_mut(), output, stem(input))?;
    report(records, with_latency, Some((input, in_bytes)), output);
    Ok(())
}

fn write_trace_reporting(trace: &Trace, output: &str) -> Result<(), String> {
    let mut source = TraceSource::new(trace);
    let (records, with_latency) = write_stream(&mut source, output, trace.name())?;
    report(records, with_latency, None, output);
    Ok(())
}

fn synthesize(name: &str, requests: usize, seed: u64) -> Result<Trace, String> {
    Ok(match name {
        "wdev" => MsrServer::Wdev.synthesize(requests, seed),
        "src2" => MsrServer::Src2.synthesize(requests, seed),
        "rsrch" => MsrServer::Rsrch.synthesize(requests, seed),
        "stg" => MsrServer::Stg.synthesize(requests, seed),
        "hm" => MsrServer::Hm.synthesize(requests, seed),
        "one-to-one" | "one-to-many" | "many-to-many" => {
            let kind = match name {
                "one-to-one" => SyntheticKind::OneToOne,
                "one-to-many" => SyntheticKind::OneToMany,
                _ => SyntheticKind::ManyToMany,
            };
            SyntheticSpec::new(kind)
                .events(requests)
                .seed(seed)
                .generate()
                .trace
        }
        other => return Err(format!("unknown workload `{other}`")),
    })
}

fn synth(name: &str, output: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    let requests: usize = parse_flag(flags, "requests", 50_000)?;
    let seed: u64 = parse_flag(flags, "seed", 7)?;
    let trace = synthesize(name, requests, seed)?;
    write_trace_reporting(&trace, output)
}

fn fit(input: &str, output: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    let mut source = open_source(input)?;
    let sample = source
        .collect_trace_dyn(stem(input))
        .map_err(|e| format!("cannot read {input}: {e}"))?;
    if sample.is_empty() {
        return Err(format!("{input} is empty; nothing to fit"));
    }
    let fitted = WorkloadFit::from_trace(&sample);
    let requests: usize = parse_flag(flags, "requests", sample.len())?;
    let seed: u64 = parse_flag(flags, "seed", 7)?;
    println!(
        "fitted {} requests: {:.0}% reads, extent band [{}, {}] blocks, \
         {} hot groups, {:.0}% one-off, number space {} blocks",
        fitted.requests_analyzed,
        fitted.profile.read_fraction * 100.0,
        fitted.profile.extent_len.0,
        fitted.profile.extent_len.1,
        fitted.profile.hot_groups,
        fitted.profile.one_off_fraction * 100.0,
        fitted.profile.number_space,
    );
    let lookalike = fitted.synthesize(requests, seed);
    write_trace_reporting(&lookalike, output)
}
