//! Fig. 10's concept-drift experiment as a runnable demo: the bounded
//! synopsis learns a new access pattern and forgets the old one.
//!
//! Replays wdev-like requests, then hm-like requests (a temporary drift
//! in concept), then wdev again, snapshotting the correlation table at
//! the three phase boundaries and reporting how much of each phase's
//! pattern the synopsis holds — plus ASCII correlation maps to eyeball
//! the drift, mirroring the lower half of Fig. 10.
//!
//! Run with: `cargo run --release --example concept_drift`

use rtdac::device::{replay, NvmeSsdModel, ReplayMode};
use rtdac::fim::count_pairs;
use rtdac::metrics::{phase_affinity, Heatmap};
use rtdac::monitor::{Monitor, MonitorConfig};
use rtdac::synopsis::{AnalyzerConfig, OnlineAnalyzer, Snapshot};
use rtdac::types::{ExtentPair, Transaction};
use rtdac::workloads::MsrServer;
use std::collections::HashSet;

const REQUESTS_PER_PHASE: usize = 30_000;

fn transactions_of(server: MsrServer, skip: usize) -> Vec<Transaction> {
    // Synthesize enough requests to cover the slice, replay at the
    // trace's Table II speedup, monitor into transactions.
    let trace = server
        .synthesize(skip + REQUESTS_PER_PHASE, 17)
        .slice(skip, skip + REQUESTS_PER_PHASE);
    let speedup = server.paper_reference().replay_speedup;
    let mut ssd = NvmeSsdModel::new(17);
    let result = replay(&trace, &mut ssd, ReplayMode::Timed { speedup });
    Monitor::new(MonitorConfig::default()).into_transactions(result.events)
}

fn pattern_of(txns: &[Transaction]) -> HashSet<ExtentPair> {
    // A phase's "pattern" is its recurring correlations (support >= 3).
    count_pairs(txns)
        .into_iter()
        .filter(|&(_, c)| c >= 3)
        .map(|(p, _)| p)
        .collect()
}

fn render(snapshot: &Snapshot, span: u64, label: &str) {
    let pairs: Vec<ExtentPair> = snapshot.pairs.iter().map(|(p, _, _)| *p).collect();
    let map = Heatmap::from_pairs(pairs.iter(), span, 48, 24);
    println!("{label} ({} pairs stored):", pairs.len());
    print!("{}", map.to_ascii());
}

fn main() {
    // Fig. 10 uses a correlation table of C = 32 K entries, deliberately
    // too small to hold both workloads' patterns; our traces are scaled
    // ~8× down, so scale the table likewise.
    let mut analyzer = OnlineAnalyzer::new(AnalyzerConfig::with_capacity(4 * 1024));

    let phases = [
        ("wdev #1", transactions_of(MsrServer::Wdev, 0)),
        ("hm (temporary drift)", transactions_of(MsrServer::Hm, 0)),
        (
            "wdev #2",
            transactions_of(MsrServer::Wdev, REQUESTS_PER_PHASE),
        ),
    ];
    let wdev_pattern = pattern_of(&phases[0].1);
    let hm_pattern = pattern_of(&phases[1].1);
    println!(
        "phase patterns: wdev {} recurring pairs, hm {} recurring pairs\n",
        wdev_pattern.len(),
        hm_pattern.len()
    );

    let span = MsrServer::Hm.profile().number_space; // larger of the two
    let mut affinities = Vec::new();
    for (label, txns) in &phases {
        for txn in txns {
            analyzer.process(txn);
        }
        let snapshot = analyzer.snapshot();
        let wdev_aff = phase_affinity(&snapshot, &wdev_pattern);
        let hm_aff = phase_affinity(&snapshot, &hm_pattern);
        println!(
            "after {label}: snapshot share — wdev {:.0}%, hm {:.0}%",
            wdev_aff.snapshot_share * 100.0,
            hm_aff.snapshot_share * 100.0
        );
        render(&snapshot, span, label);
        println!();
        affinities.push((wdev_aff.snapshot_share, hm_aff.snapshot_share));
    }

    // The Fig. 10 narrative, asserted:
    let (wdev_1, hm_1) = affinities[0];
    let (wdev_2, hm_2) = affinities[1];
    let (wdev_3, hm_3) = affinities[2];
    assert!(
        wdev_1 > hm_1,
        "after phase 1 the snapshot is a wdev pattern"
    );
    assert!(hm_2 > hm_1, "the hm pattern forms during the drift");
    assert!(
        wdev_2 < wdev_1,
        "the wdev pattern is displaced during the drift"
    );
    assert!(wdev_3 > wdev_2, "the wdev pattern re-forms after the drift");
    assert!(hm_3 < hm_2, "the hm pattern fades after the drift");
    println!(
        "drift narrative confirmed: wdev {:.2} → {:.2} → {:.2}, \
         hm {:.2} → {:.2} → {:.2}",
        wdev_1, wdev_2, wdev_3, hm_1, hm_2, hm_3
    );
}
