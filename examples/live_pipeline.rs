//! Live pipeline: monitoring and analysis running concurrently with the
//! workload, as the paper's framework does in production (Fig. 3).
//!
//! Three stages connected by channels, mirroring the paper's
//! architecture:
//!
//! * a *replayer* thread plays an MSR-like trace against the simulated
//!   SSD and emits block-layer issue events (the blktrace role);
//! * a *monitor* thread groups events into transactions with the dynamic
//!   2×-latency window;
//! * an *analyzer* thread feeds the shared `OnlineAnalyzer`, which the
//!   main thread queries live — correlations are available while the
//!   workload is still running, with no trace stored to disk.
//!
//! Run with: `cargo run --example live_pipeline`

use std::sync::Arc;
use std::thread;

use crossbeam::channel;
use parking_lot::Mutex;
use rtdac::device::{replay, NvmeSsdModel, ReplayMode};
use rtdac::monitor::{Monitor, MonitorConfig};
use rtdac::synopsis::{AnalyzerConfig, OnlineAnalyzer};
use rtdac::types::{IoEvent, Transaction};
use rtdac::workloads::MsrServer;

fn main() {
    let analyzer = Arc::new(Mutex::new(OnlineAnalyzer::new(
        AnalyzerConfig::with_capacity(8 * 1024),
    )));

    let (event_tx, event_rx) = channel::bounded::<IoEvent>(1024);
    let (txn_tx, txn_rx) = channel::bounded::<Transaction>(256);

    // Stage 1: replayer ("fio" + blktrace). The trace is accelerated by
    // its Table II speedup so the whole demo runs instantly; event
    // *timestamps* carry the replay clock, so downstream windowing is
    // identical to wall-clock operation.
    let replayer = thread::spawn(move || {
        let trace = MsrServer::Wdev.synthesize(60_000, 1);
        let speedup = MsrServer::Wdev.paper_reference().replay_speedup;
        let mut ssd = NvmeSsdModel::new(1);
        let result = replay(&trace, &mut ssd, ReplayMode::Timed { speedup });
        let n = result.events.len();
        for event in result.events {
            if event_tx.send(event).is_err() {
                return 0;
            }
        }
        n
    });

    // Stage 2: monitor thread — events in, transactions out.
    let monitor_thread = thread::spawn(move || {
        let mut monitor = Monitor::new(MonitorConfig::default());
        for event in event_rx {
            if let Some(txn) = monitor.push(event) {
                if txn_tx.send(txn).is_err() {
                    return monitor.stats();
                }
            }
        }
        if let Some(txn) = monitor.flush() {
            let _ = txn_tx.send(txn);
        }
        monitor.stats()
    });

    // Stage 3: analyzer thread — transactions into the shared synopsis.
    let analyzer_for_thread = Arc::clone(&analyzer);
    let analyzer_thread = thread::spawn(move || {
        let mut processed = 0u64;
        for txn in txn_rx {
            analyzer_for_thread.lock().process(&txn);
            processed += 1;
        }
        processed
    });

    // Main thread: query the analyzer while the pipeline runs, exactly
    // what an automatic optimization module would do.
    let mut probes = 0;
    loop {
        thread::sleep(std::time::Duration::from_millis(20));
        let snapshot = analyzer.lock().snapshot();
        let frequent = snapshot.frequent_pairs(5);
        println!(
            "live probe {probes}: {} pairs stored, {} with support >= 5",
            snapshot.pairs.len(),
            frequent.len()
        );
        probes += 1;
        if analyzer_thread.is_finished() || probes >= 50 {
            break;
        }
    }

    let events = replayer.join().expect("replayer thread");
    let monitor_stats = monitor_thread.join().expect("monitor thread");
    let transactions = analyzer_thread.join().expect("analyzer thread");

    println!("\npipeline complete:");
    println!("  events replayed:        {events}");
    println!("  transactions formed:    {}", monitor_stats.transactions);
    println!("  transactions analyzed:  {transactions}");
    println!("  limit splits:           {}", monitor_stats.limit_splits);

    let analyzer = analyzer.lock();
    let top = analyzer.frequent_pairs(5);
    println!("  frequent pairs (support >= 5): {}", top.len());
    for (pair, tally) in top.iter().take(5) {
        println!("    {pair}  ×{tally}");
    }
    assert!(
        !top.is_empty(),
        "a wdev-like workload must surface frequent correlations"
    );
}
