//! Live pipeline: monitoring and analysis running concurrently with the
//! workload, as the paper's framework does in production (Fig. 3) —
//! with the elastic stage pools resizing themselves mid-stream.
//!
//! The stages mirror the paper's architecture, built entirely on the
//! workspace's own std-only machinery (no external channel crates):
//!
//! * a *replayer* thread plays an MSR-like trace against the simulated
//!   SSD and emits block-layer issue events (the blktrace role) over an
//!   [`rtdac::monitor::spsc`] ring;
//! * the main thread drives an [`IngestPipeline`]: its monitor front-end
//!   groups events into transactions with the dynamic 2×-latency window,
//!   batches them, and deals the batches round-robin to the router
//!   workers; each router dedups and pair-hashes its slice of the
//!   stream once and ships every shard its per-batch work list over
//!   further SPSC rings (the shards merge the router rings in sequence
//!   order, so the result is bit-exact regardless of router count);
//! * each shard worker owns one partition of the correlation synopsis
//!   and replays only the work routed to it, so the sharded result
//!   merges to exactly the single-threaded analyzer's answer;
//! * an [`AdaptiveController`] watches the work-ring high-water marks
//!   and the router-vs-shard busy split once per observation window.
//!   The pipeline starts *deliberately undersized* — one shard, one
//!   router, tiny rings — and the controller grows the stage pools at
//!   batch boundaries (quiesce → snapshot → re-seed, DESIGN.md §11)
//!   while the replayer keeps streaming. Tallies are unaffected:
//!   re-seeding reproduces the exact synopsis state at every step.
//!
//! Whether a resize actually fires depends on host timing (an idle
//! multicore box may drain the undersized pool without ever
//! saturating it), so the demo prints the controller's decision log
//! rather than asserting on it.
//!
//! The demo also *queries the pipeline while it runs*: publishing is
//! enabled (`publish_interval`), so every few thousand events the main
//! thread polls the epoch-published [`LiveView`] and prints the live
//! top pairs next to the controller's current topology — no quiesce,
//! no locks, and the shard workers never wait on the reader. Resizes
//! land between those polls without disturbing them: the view is
//! re-primed across a re-seed, so querying during a resize is safe by
//! construction.
//!
//! [`LiveView`]: rtdac::synopsis::LiveView
//!
//! Run with: `cargo run --example live_pipeline`

use std::thread;

use rtdac::device::{replay, NvmeSsdModel, ReplayMode};
use rtdac::monitor::{spsc, ControllerConfig, IngestPipeline, MonitorConfig, PipelineConfig};
use rtdac::synopsis::AnalyzerConfig;
use rtdac::types::{Epoch, ExtentPair, IoEvent};
use rtdac::workloads::MsrServer;

fn main() {
    // Deliberately undersized: one shard, one router, 8-slot rings.
    // Eager controller knobs (short windows, single confirmation) so
    // the demo reacts within a short trace.
    let controller = ControllerConfig::default()
        .shard_bounds(1, 8)
        .router_bounds(1, 2)
        .interval_batches(8)
        .confirm_windows(1)
        .cooldown_windows(2);
    let mut pipeline = IngestPipeline::new(
        MonitorConfig::default(),
        AnalyzerConfig::with_capacity(8 * 1024),
        PipelineConfig::with_shards(1)
            .routers(1)
            .batch_size(64)
            .ring_capacity(8)
            .publish_interval(8)
            .adaptive(controller),
    );
    let before = pipeline.topology();

    // Stage 1: replayer ("fio" + blktrace). The trace is accelerated by
    // its Table II speedup so the whole demo runs instantly; event
    // *timestamps* carry the replay clock, so downstream windowing is
    // identical to wall-clock operation.
    let (event_tx, event_rx) = spsc::channel::<IoEvent>(1024);
    let replayer = thread::spawn(move || {
        let trace = MsrServer::Wdev.synthesize(60_000, 1);
        let speedup = MsrServer::Wdev.paper_reference().replay_speedup;
        let mut ssd = NvmeSsdModel::new(1);
        let result = replay(&trace, &mut ssd, ReplayMode::Timed { speedup });
        let n = result.events.len();
        for event in result.events {
            if event_tx.send(event).is_err() {
                return 0;
            }
        }
        n
    });

    // Stage 2 + 3: the ingestion pipeline. The monitor windows events
    // into transactions and the stage pools absorb them concurrently
    // while the replayer is still producing — resizing themselves when
    // the controller says the topology no longer fits the load.
    //
    // Every few thousand events the main thread also acts as a *live
    // reader*: it folds whatever epoch deltas the shards have published
    // into the merged view and prints the current top pairs alongside
    // the controller's topology — mid-stream, quiesce-free, and safe
    // across any resize the controller fires in between.
    let mut live_top: Vec<(ExtentPair, u32)> = Vec::with_capacity(8);
    let mut last_epoch: Option<Epoch> = None;
    let mut received = 0u64;
    println!("live queries (polled mid-stream, no quiesce):");
    while let Some(event) = event_rx.recv() {
        pipeline.push(event);
        received += 1;
        if received.is_multiple_of(5_000) {
            let epoch = pipeline.poll_live().expect("publishing enabled");
            if last_epoch != Some(epoch) {
                last_epoch = Some(epoch);
                let view = pipeline.live_view_mut().expect("publishing enabled");
                view.top_pairs_into(8, &mut live_top);
                let line: Vec<String> = live_top
                    .iter()
                    .map(|(pair, tally)| format!("{pair}×{tally}"))
                    .collect();
                println!(
                    "  @{received:>6} events  epoch {epoch}  topology {}  top: {}",
                    pipeline.topology(),
                    line.join("  ")
                );
            }
        }
    }

    let events = replayer.join().expect("replayer thread");
    let after = pipeline.topology();
    let resizes = pipeline.resize_events().to_vec();
    let front_end = pipeline.stats();
    let monitor_stats = pipeline.monitor().stats();
    let analyzer = pipeline.finish();

    println!("pipeline complete (started {before}, finished {after}):");
    println!("  events replayed:        {events}");
    println!("  transactions formed:    {}", monitor_stats.transactions);
    println!(
        "  transactions analyzed:  {}",
        analyzer.stats().transactions
    );
    println!("  batches routed:         {}", front_end.batches);
    println!("  limit splits:           {}", monitor_stats.limit_splits);
    println!(
        "  ring high-water:        {:?} of {} slots",
        front_end.shard_ring_highwater, front_end.ring_slots
    );

    println!("  controller decisions:   {}", resizes.len());
    for event in &resizes {
        println!(
            "    batch {:>5}: {} -> {}  ({:.1} ms quiesce{})",
            event.batch,
            event.from,
            event.to,
            event.nanos as f64 / 1e6,
            if event.reseeded {
                ", tables re-seeded"
            } else {
                ", router-only"
            }
        );
    }
    if resizes.is_empty() {
        println!("    (none — this host drained the undersized pool without saturating it)");
    }

    let top = analyzer.frequent_pairs(5);
    println!("  frequent pairs (support >= 5): {}", top.len());
    for (pair, tally) in top.iter().take(5) {
        println!("    {pair}  ×{tally}");
    }
    assert!(
        !top.is_empty(),
        "a wdev-like workload must surface frequent correlations"
    );
}
