//! Live pipeline: monitoring and analysis running concurrently with the
//! workload, as the paper's framework does in production (Fig. 3).
//!
//! The stages mirror the paper's architecture, built entirely on the
//! workspace's own std-only machinery (no external channel crates):
//!
//! * a *replayer* thread plays an MSR-like trace against the simulated
//!   SSD and emits block-layer issue events (the blktrace role) over an
//!   [`rtdac::monitor::spsc`] ring;
//! * the main thread drives an [`IngestPipeline`]: its monitor front-end
//!   groups events into transactions with the dynamic 2×-latency window,
//!   batches them, and deals the batches round-robin to two parallel
//!   router workers; each router dedups and pair-hashes its slice of
//!   the stream once and ships every shard its per-batch work list over
//!   further SPSC rings (the shards merge the router rings in sequence
//!   order, so the result is bit-exact regardless of router count);
//! * each shard worker owns one partition of the correlation synopsis
//!   and replays only the work routed to it, so the sharded result
//!   merges to exactly the single-threaded analyzer's answer —
//!   correlations are available moments after the workload finishes,
//!   with no trace stored to disk.
//!
//! Run with: `cargo run --example live_pipeline`

use std::thread;

use rtdac::device::{replay, NvmeSsdModel, ReplayMode};
use rtdac::monitor::{spsc, IngestPipeline, MonitorConfig, PipelineConfig};
use rtdac::synopsis::AnalyzerConfig;
use rtdac::types::IoEvent;
use rtdac::workloads::MsrServer;

fn main() {
    let shard_count = 4;
    let router_count = 2;
    let mut pipeline = IngestPipeline::new(
        MonitorConfig::default(),
        AnalyzerConfig::with_capacity(8 * 1024),
        PipelineConfig::with_shards(shard_count)
            .routers(router_count)
            .batch_size(64)
            .ring_capacity(32),
    );

    // Stage 1: replayer ("fio" + blktrace). The trace is accelerated by
    // its Table II speedup so the whole demo runs instantly; event
    // *timestamps* carry the replay clock, so downstream windowing is
    // identical to wall-clock operation.
    let (event_tx, event_rx) = spsc::channel::<IoEvent>(1024);
    let replayer = thread::spawn(move || {
        let trace = MsrServer::Wdev.synthesize(60_000, 1);
        let speedup = MsrServer::Wdev.paper_reference().replay_speedup;
        let mut ssd = NvmeSsdModel::new(1);
        let result = replay(&trace, &mut ssd, ReplayMode::Timed { speedup });
        let n = result.events.len();
        for event in result.events {
            if event_tx.send(event).is_err() {
                return 0;
            }
        }
        n
    });

    // Stage 2 + 3: the ingestion pipeline. The monitor windows events
    // into transactions and the shard workers absorb them concurrently
    // while the replayer is still producing.
    while let Some(event) = event_rx.recv() {
        pipeline.push(event);
    }

    let events = replayer.join().expect("replayer thread");
    let front_end = pipeline.stats();
    let monitor_stats = pipeline.monitor().stats();
    let analyzer = pipeline.finish();

    println!("pipeline complete ({shard_count} shards, {router_count} routers):");
    println!("  events replayed:        {events}");
    println!("  transactions formed:    {}", monitor_stats.transactions);
    println!(
        "  transactions analyzed:  {}",
        analyzer.stats().transactions
    );
    println!("  batches routed:         {}", front_end.batches);
    println!("  limit splits:           {}", monitor_stats.limit_splits);

    let top = analyzer.frequent_pairs(5);
    println!("  frequent pairs (support >= 5): {}", top.len());
    for (pair, tally) in top.iter().take(5) {
        println!("    {pair}  ×{tally}");
    }
    assert!(
        !top.is_empty(),
        "a wdev-like workload must surface frequent correlations"
    );
}
