//! Correlation-informed caching — the first optimization on the paper's
//! list (§I: "caching, prefetching, …").
//!
//! Runs an hm-like workload through the full pipeline twice: once with a
//! plain cache and once with the same cache fed prefetch admissions from
//! the online analyzer's correlations, comparing demand hit rates for
//! LRU and for ARC (the FAST '03 algorithm the paper's synopsis design
//! is modeled on).
//!
//! Run with: `cargo run --release --example cache_prefetch`

use rtdac::cache::{run_workload, ArcCache, Cache, CacheStats, LruCache, PrefetchConfig};
use rtdac::device::{replay, NvmeSsdModel, ReplayMode};
use rtdac::monitor::{Monitor, MonitorConfig};
use rtdac::synopsis::{AnalyzerConfig, OnlineAnalyzer};
use rtdac::types::{Extent, Transaction};
use rtdac::workloads::MsrServer;

const CACHE_EXTENTS: usize = 256;

fn transactions() -> Vec<Transaction> {
    let server = MsrServer::Hm;
    let trace = server.synthesize(30_000, 5);
    let mut ssd = NvmeSsdModel::new(5);
    let result = replay(
        &trace,
        &mut ssd,
        ReplayMode::Timed {
            speedup: server.paper_reference().replay_speedup,
        },
    );
    Monitor::new(MonitorConfig::default()).into_transactions(result.events)
}

fn run<C: Cache<Extent>>(mut cache: C, txns: &[Transaction], prefetch: bool) -> CacheStats {
    let mut analyzer = OnlineAnalyzer::new(AnalyzerConfig::with_capacity(16 * 1024));
    run_workload(
        &mut cache,
        &mut analyzer,
        txns,
        prefetch.then(PrefetchConfig::default),
    )
}

fn main() {
    let txns = transactions();
    let accesses: usize = txns.iter().map(Transaction::len).sum();
    println!(
        "hm-like workload: {} transactions, {} extent accesses, cache of {} extents\n",
        txns.len(),
        accesses,
        CACHE_EXTENTS
    );

    let lru = run(LruCache::new(CACHE_EXTENTS), &txns, false);
    let lru_pf = run(LruCache::new(CACHE_EXTENTS), &txns, true);
    let arc = run(ArcCache::new(CACHE_EXTENTS), &txns, false);
    let arc_pf = run(ArcCache::new(CACHE_EXTENTS), &txns, true);

    println!(
        "{:<26} {:>10} {:>16} {:>16}",
        "policy", "hit rate", "prefetch inserts", "prefetched hits"
    );
    for (name, stats) in [
        ("LRU", lru),
        ("LRU + correlations", lru_pf),
        ("ARC", arc),
        ("ARC + correlations", arc_pf),
    ] {
        println!(
            "{:<26} {:>9.1}% {:>16} {:>16}",
            name,
            stats.hit_rate() * 100.0,
            stats.prefetch_inserts,
            stats.prefetched_hits
        );
    }

    println!(
        "\ncorrelation prefetching lifted LRU by {:.1} points and ARC by {:.1} points",
        (lru_pf.hit_rate() - lru.hit_rate()) * 100.0,
        (arc_pf.hit_rate() - arc.hit_rate()) * 100.0
    );
    assert!(
        lru_pf.hit_rate() >= lru.hit_rate(),
        "prefetching must not hurt LRU on a correlated workload"
    );
    assert!(
        arc_pf.hit_rate() >= arc.hit_rate(),
        "prefetching must not hurt ARC on a correlated workload"
    );
}
