//! §V-1 scenario: automatic garbage-collection optimization in
//! multi-stream SSDs.
//!
//! The paper's death-time heuristic: "if two or more data chunks were
//! frequently written together in the past, then there is a high chance
//! that their death times will be similar" — so the framework's
//! correlated *writes* should share a stream, landing in the same erase
//! units and making garbage collection cheap.
//!
//! This example builds a write workload of correlated groups that are
//! rewritten (i.e. die) together, learns the correlations online with
//! the real monitor + analyzer pipeline, and compares the write
//! amplification factor (WAF) of three placements on the simulated FTL:
//! single-stream (conventional), hash streams (blind separation), and
//! correlation-informed streams.
//!
//! Run with: `cargo run --release --example gc_multistream`

use std::time::Duration;

use rtdac::monitor::{Monitor, MonitorConfig, WindowPolicy};
use rtdac::ssdsim::{CorrelationStreams, Ftl, FtlConfig, HashStream, SingleStream, StreamAssigner};
use rtdac::synopsis::{AnalyzerConfig, OnlineAnalyzer};
use rtdac::types::{Extent, IoEvent, IoOp, Timestamp};
use rtdac::workloads::Pcg32;

const GROUPS: usize = 16;
const EXTENTS_PER_GROUP: usize = 4;
const EXTENT_BLOCKS: u32 = 16;
const ROUNDS: usize = 150;
const REWRITES_PER_ROUND: usize = 8;

/// The workload: GROUPS groups of extents; each round rewrites a random
/// subset of groups *as whole groups* (their pages die together), in
/// random interleaved order across groups — which is exactly what makes
/// single-append-point placement mix unrelated death times.
struct GroupWorkload {
    groups: Vec<Vec<Extent>>,
}

impl GroupWorkload {
    fn new(rng: &mut Pcg32) -> Self {
        let mut groups = Vec::new();
        let mut cursor = 0u64;
        for _ in 0..GROUPS {
            let mut extents = Vec::new();
            for _ in 0..EXTENTS_PER_GROUP {
                extents.push(Extent::new(cursor, EXTENT_BLOCKS).expect("valid extent"));
                cursor += u64::from(EXTENT_BLOCKS) + 64; // gaps: not sequential
            }
            groups.push(extents);
        }
        let _ = rng;
        GroupWorkload { groups }
    }

    /// One round: a Zipf-skewed sample of groups is rewritten (hot
    /// groups die often, cold groups linger), with the extents fully
    /// shuffled so unrelated groups interleave at the device — the mix
    /// of death times that hurts a single append point.
    fn round(&self, rng: &mut Pcg32, zipf: &rtdac::workloads::Zipf) -> Vec<(usize, Extent)> {
        let mut picked: Vec<usize> = (0..REWRITES_PER_ROUND).map(|_| zipf.sample(rng)).collect();
        picked.sort_unstable();
        picked.dedup();
        let mut writes: Vec<(usize, Extent)> = picked
            .into_iter()
            .flat_map(|g| self.groups[g].iter().map(move |&e| (g, e)))
            .collect();
        for i in (1..writes.len()).rev() {
            writes.swap(i, rng.gen_range(0..=i));
        }
        writes
    }
}

fn run_ftl(
    workload: &GroupWorkload,
    assigner: &mut dyn StreamAssigner,
    streams: usize,
    seed: u64,
) -> f64 {
    // Live set: 16 groups × 4 extents × 16 blocks = 1024 pages. A
    // 36-EU × 64-page device gives ~44% utilization, so GC runs steadily.
    let config = FtlConfig {
        pages_per_eu: 64,
        erase_units: 36,
        streams,
        gc_low_watermark: streams.max(4),
    };
    let mut ftl = Ftl::new(config);
    let mut rng = Pcg32::seed_from_u64(seed);
    let zipf = rtdac::workloads::Zipf::new(GROUPS, 1.0);
    // Initial fill: every group written once.
    for group in &workload.groups {
        for extent in group {
            for block in extent.blocks() {
                ftl.write(block, assigner.assign(block));
            }
        }
    }
    for _ in 0..ROUNDS {
        for (_, extent) in workload.round(&mut rng, &zipf) {
            for block in extent.blocks() {
                ftl.write(block, assigner.assign(block));
            }
        }
    }
    ftl.stats().waf()
}

fn main() {
    let mut rng = Pcg32::seed_from_u64(99);
    let workload = GroupWorkload::new(&mut rng);

    // Phase 1: learn write correlations online. The workload is played
    // as block-layer write events (each group's extents issued within
    // microseconds — one transaction window), through the real monitor
    // and analyzer, restricted to writes as §V-1 prescribes.
    let mut analyzer =
        OnlineAnalyzer::new(AnalyzerConfig::with_capacity(4096).op_filter(Some(IoOp::Write)));
    let mut monitor = Monitor::new(
        MonitorConfig::new(WindowPolicy::Static(Duration::from_micros(200)))
            .transaction_limit(EXTENTS_PER_GROUP),
    );
    // For learning, play each group's extents as a burst (one window):
    // this is how the correlated writes arrive at the block layer.
    let mut t = Timestamp::ZERO;
    let mut learn_rng = Pcg32::seed_from_u64(7);
    let zipf = rtdac::workloads::Zipf::new(GROUPS, 1.0);
    for _ in 0..400 {
        let group = &workload.groups[zipf.sample(&mut learn_rng)];
        for &extent in group {
            let event = IoEvent::new(t, 1, IoOp::Write, extent, Duration::from_micros(30));
            if let Some(txn) = monitor.push(event) {
                analyzer.process(&txn);
            }
            t += Duration::from_micros(20);
        }
        t += Duration::from_millis(5); // inter-group gap closes the window
    }
    if let Some(txn) = monitor.flush() {
        analyzer.process(&txn);
    }

    let frequent = analyzer.frequent_pairs(10);
    println!(
        "learned {} frequent write correlations (support >= 10)",
        frequent.len()
    );

    // Phase 2: drive the FTL under each stream-assignment policy.
    let streams = GROUPS.min(8) + 1; // +1 for the uncorrelated/GC stream
    let pairs: Vec<_> = frequent.iter().map(|(p, _)| p).collect();
    let mut correlation = CorrelationStreams::from_pairs(pairs.iter().copied(), streams);
    println!(
        "correlation assigner: {} clusters over {} streams\n",
        correlation.clusters(),
        correlation.streams()
    );

    let waf_single = run_ftl(&workload, &mut SingleStream, 1, 5);
    let waf_hash = run_ftl(&workload, &mut HashStream::new(streams), streams, 5);
    let waf_corr = run_ftl(&workload, &mut correlation, streams, 5);

    println!("write amplification factor (lower is better):");
    println!("  single-stream (baseline):     {waf_single:.3}");
    println!("  hash streams (blind):         {waf_hash:.3}");
    println!("  correlation streams (paper):  {waf_corr:.3}");
    println!(
        "\ncorrelation-informed placement reduces WAF by {:.1}% vs single-stream",
        (1.0 - waf_corr / waf_single) * 100.0
    );

    assert!(
        waf_corr < waf_single,
        "correlation-informed streams must beat single-stream WAF \
         ({waf_corr:.3} vs {waf_single:.3})"
    );
}
