//! Quickstart: the complete rtdac pipeline on a synthetic workload.
//!
//! Generates the paper's one-to-one synthetic workload (four constructed
//! correlations + noise, §IV-B1), replays it against a simulated NVMe
//! SSD, monitors the issue events into transactions, runs the online
//! analysis, and checks the detected correlations against the known
//! ground truth.
//!
//! Run with: `cargo run --example quickstart`

use rtdac::device::{replay, NvmeSsdModel, ReplayMode};
use rtdac::metrics::detection;
use rtdac::monitor::{Monitor, MonitorConfig};
use rtdac::synopsis::{AnalyzerConfig, OnlineAnalyzer};
use rtdac::types::{Extent, ExtentPair};
use rtdac::workloads::{SyntheticKind, SyntheticSpec};
use std::collections::HashSet;

fn main() {
    // First, the paper's Fig. 2 worked example: one transaction holding
    // requests 100+4 and 200+3.
    let a = Extent::new(100, 4).expect("valid extent");
    let b = Extent::new(200, 3).expect("valid extent");
    let pair = ExtentPair::new(a, b).expect("distinct extents");
    println!("Fig. 2 worked example:");
    println!(
        "  extents {a} and {b}: {} intra + {} inter block correlations,",
        a.intra_block_pairs() + b.intra_block_pairs(),
        pair.inter_block_pairs()
    );
    println!("  but only ONE extent correlation: {pair}\n");

    // 1. Generate the one-to-one synthetic workload.
    let workload = SyntheticSpec::new(SyntheticKind::OneToOne)
        .events(2_000)
        .seed(42)
        .generate();
    println!(
        "workload: {} requests, 4 constructed correlations (48/24/16/12%)",
        workload.trace.len()
    );

    // 2. Replay against a simulated NVMe SSD (the paper's 960 EVO role).
    let mut ssd = NvmeSsdModel::new(42);
    let replayed = replay(
        &workload.trace,
        &mut ssd,
        ReplayMode::Timed { speedup: 1.0 },
    );
    println!(
        "replayed on {:?}: mean read latency {:?}",
        "nvme-ssd",
        replayed.mean_read_latency.expect("reads present")
    );

    // 3. Monitor: dynamic transaction window (2× average latency),
    //    transaction limit 8, dedup on — the paper's configuration.
    let monitor = Monitor::new(MonitorConfig::default());
    let txns = monitor.into_transactions(replayed.events);
    println!("monitor produced {} transactions", txns.len());

    // 4. Online analysis with a small synopsis.
    let mut analyzer = OnlineAnalyzer::new(AnalyzerConfig::with_capacity(4 * 1024));
    for txn in &txns {
        analyzer.process(txn);
    }
    println!(
        "synopsis memory (paper's model): {:.2} MB",
        analyzer.memory_bytes() as f64 / 1e6
    );

    // 5. Compare detected frequent pairs with the constructed truth.
    let detected: HashSet<ExtentPair> = analyzer
        .frequent_pairs(10)
        .into_iter()
        .map(|(p, _)| p)
        .collect();
    let truth: HashSet<ExtentPair> = workload.expected_pairs().into_iter().collect();
    let result = detection(&detected, &truth);
    println!(
        "\ndetection vs ground truth: recall {:.0}%, precision {:.0}% \
         ({} of {} constructed pairs found, {} detected total)",
        result.recall * 100.0,
        result.precision * 100.0,
        result.hits,
        result.truth_size,
        result.detected_size
    );

    println!("\ntop detected correlations:");
    for (pair, tally) in analyzer.frequent_pairs(10).iter().take(6) {
        let constructed = truth.contains(pair);
        println!(
            "  {pair}  ×{tally}{}",
            if constructed { "   [constructed]" } else { "" }
        );
    }
}
