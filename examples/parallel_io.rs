//! §V-2 scenario: automatic parallel I/O optimization in open-channel
//! SSDs.
//!
//! The paper's parallel-I/O heuristic: "if two or more data chunks were
//! frequently read together in the past, then there is a high chance
//! that they will be read together in the near future" — so correlated
//! *reads* should be placed on different parallel units (PUs), where
//! accesses are fully independent.
//!
//! This example builds a read workload of correlated batches whose
//! extents happen to fall into the same RAID-0 stripe (the ill-mapped
//! layout the paper cites as causing up to 4.2× higher latency), learns
//! the correlations online, and compares mean batch latency under
//! striping vs correlation-aware placement.
//!
//! Run with: `cargo run --example parallel_io`

use std::time::Duration;

use rtdac::monitor::{Monitor, MonitorConfig, WindowPolicy};
use rtdac::ssdsim::{CorrelationPlacement, ParallelUnitModel, StripingPlacement};
use rtdac::synopsis::{AnalyzerConfig, OnlineAnalyzer};
use rtdac::types::{Extent, IoEvent, IoOp, Timestamp};
use rtdac::workloads::Pcg32;

const UNITS: usize = 8;
const STRIPE_BLOCKS: u64 = 4096;
const BATCHES: usize = 24;
const EXTENTS_PER_BATCH: usize = 6;

fn main() {
    let mut rng = Pcg32::seed_from_u64(31);

    // Correlated read batches. Each batch's extents are semantically
    // related (web resource + DB table, say) and — as happens after
    // out-of-place updates skew the initial layout — all land in one
    // stripe, i.e. one PU under striping.
    let batches: Vec<Vec<Extent>> = (0..BATCHES as u64)
        .map(|b| {
            let stripe_base = b * STRIPE_BLOCKS * UNITS as u64; // stripe 0 of row b
            (0..EXTENTS_PER_BATCH as u64)
                .map(|i| {
                    let offset = i * 512 + rng.gen_range(0..128u64);
                    Extent::new(stripe_base + offset, 8).expect("valid extent")
                })
                .collect()
        })
        .collect();

    // Learn the read correlations online through the real pipeline.
    let mut analyzer =
        OnlineAnalyzer::new(AnalyzerConfig::with_capacity(4096).op_filter(Some(IoOp::Read)));
    let mut monitor = Monitor::new(
        MonitorConfig::new(WindowPolicy::Static(Duration::from_micros(300)))
            .transaction_limit(EXTENTS_PER_BATCH),
    );
    let mut t = Timestamp::ZERO;
    for _ in 0..200 {
        let batch = &batches[rng.gen_range(0..batches.len())];
        for &extent in batch {
            let ev = IoEvent::new(t, 1, IoOp::Read, extent, Duration::from_micros(50));
            if let Some(txn) = monitor.push(ev) {
                analyzer.process(&txn);
            }
            t += Duration::from_micros(25);
        }
        t += Duration::from_millis(2);
    }
    if let Some(txn) = monitor.flush() {
        analyzer.process(&txn);
    }

    let frequent = analyzer.frequent_pairs(3);
    println!(
        "learned {} frequent read correlations (support >= 3)",
        frequent.len()
    );

    // Build both placements and measure batch latency on the PU bank.
    let bank = ParallelUnitModel::new(UNITS, Duration::from_micros(50));
    let striping = StripingPlacement::new(UNITS, STRIPE_BLOCKS);
    let pairs: Vec<_> = frequent.iter().map(|(p, _)| p).collect();
    let correlation = CorrelationPlacement::from_pairs(pairs.iter().copied(), UNITS, STRIPE_BLOCKS);
    println!(
        "correlation placement covers {} extents\n",
        correlation.assigned_extents()
    );

    let mut striped_total = Duration::ZERO;
    let mut placed_total = Duration::ZERO;
    for batch in &batches {
        striped_total += bank.batch_latency(batch, &striping);
        placed_total += bank.batch_latency(batch, &correlation);
    }
    let striped_mean = striped_total / BATCHES as u32;
    let placed_mean = placed_total / BATCHES as u32;

    println!("mean correlated-batch read latency over {UNITS} parallel units:");
    println!("  RAID-0 striping (ill-mapped): {striped_mean:?}");
    println!("  correlation-aware placement:  {placed_mean:?}");
    println!(
        "\nspeedup: {:.1}× (the paper cites up to 4.2× latency penalty \
         for ill-mapped layouts)",
        striped_mean.as_secs_f64() / placed_mean.as_secs_f64()
    );

    assert!(
        placed_mean < striped_mean,
        "correlation-aware placement must beat the ill-mapped striping"
    );
}
